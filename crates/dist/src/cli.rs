//! CLI entry points: `fsa coordinate`, `fsa work`, and the engine
//! behind `fsa explore --distributed`.
//!
//! These commands are intercepted by the one-shot `fsa` binary before
//! [`fsa_serve::cli::dispatch`] (they are long-running networked
//! processes, not request/response runners); the binary also calls
//! [`register`] at startup so `fsa explore --distributed` can find the
//! local driver.

use crate::coord::{CoordConfig, Coordinator};
use crate::local::{explore_distributed, LocalConfig, WorkerMode};
use crate::worker::{run_worker, WorkerConfig};
use fsa_core::explore::{Exploration, ExploreOptions};
use fsa_core::service::{Rendered, ServiceCtx};
use fsa_serve::cli::{emit, render_exploration, Flag, Flags, ObsOutputs};
use std::path::PathBuf;

const COORDINATE_USAGE: &str = "usage:
  fsa coordinate --listen HOST:PORT [--max-vehicles N] [--shards N] [--lease-ms N] [--state F]

Serve shard leases to `fsa work` processes until the instance universe
is fully explored, then print the merged exploration — byte-identical
to the single-process `fsa explore`. The first stdout line is
`listening on HOST:PORT` (with the resolved port for `:0`).
  --listen HOST:PORT   bind address; port 0 picks an ephemeral port
  --max-vehicles N     universe bound (default 2)
  --shards N           contiguous shards to partition the vector
                       space into (default 8)
  --lease-ms N         shard lease before a silent worker's shard is
                       re-issued (default 2000)
  --state F            store-and-forward state file: completed shards
                       are persisted to F (atomic, checksummed,
                       fsynced before each shard is acknowledged) and
                       a compatible existing F is resumed from
  --max-conns N        accept-side connection cap (default 256);
                       excess workers are told to retry and closed
  --budget N           global candidate budget across all shards
  --all                keep disconnected compositions too
  --stats              print merged engine statistics
  --stats-json F       write span/counter statistics (fsa-obs/v1) to F
                       (includes the dist.* lease/merge counters)
  --trace-json F       write a chrome://tracing view of the run to F";

const WORK_USAGE: &str = "usage:
  fsa work --connect HOST:PORT [--state-dir D] [--threads N]
           [--seed N] [--reconnect N]

Connect to an `fsa coordinate` process and work shard leases until the
universe is done. Each shard checkpoints to its own file under the
state directory, so a killed worker's successor resumes the shard
instead of restarting it. A lost coordinator connection is retried
with jittered backoff and a fresh handshake (the lease is re-acquired
and the shard resumes from its checkpoint), so a coordinator restart
costs a pause, not the run.
  --connect HOST:PORT  coordinator address
  --state-dir D        directory for shard checkpoint files (default .)
  --threads N          worker threads for candidate building (default 1)
  --seed N             backoff jitter seed (default: derived from the
                       process id; give fleet members distinct seeds)
  --reconnect N        consecutive failed connection attempts before
                       the worker gives up (default 8); any successful
                       handshake refills the budget";

fn wants_help(args: &[String]) -> bool {
    args.iter()
        .any(|a| matches!(a.as_str(), "--help" | "-h" | "help"))
}

fn help(usage: &str) -> Rendered {
    Rendered {
        stdout: format!("{usage}\n"),
        ..Rendered::default()
    }
}

/// The engine handed to [`fsa_serve::cli::register_distributed_engine`]:
/// a local coordinator plus `fsa work` child processes re-invoking the
/// current executable.
fn process_engine(req: &fsa_serve::cli::DistributedRequest) -> Result<Exploration, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let config = LocalConfig {
        max_vehicles: req.max_vehicles,
        workers: req.workers,
        shards: req.shards,
        lease_ms: req.lease_ms,
        state_dir: req.state_dir.as_ref().map(PathBuf::from),
        max_candidates: req
            .budget
            .unwrap_or(ExploreOptions::default().max_candidates),
        require_connected: req.require_connected,
        threads: req.threads,
        obs: req.obs.clone(),
        ..LocalConfig::default()
    };
    explore_distributed(&config, &WorkerMode::Processes { exe }).map_err(|e| e.to_string())
}

/// Registers the process-spawning local driver as the engine behind
/// `fsa explore --distributed`. Call once at binary startup.
pub fn register() {
    fsa_serve::cli::register_distributed_engine(process_engine);
}

/// `fsa coordinate` — run a coordinator to completion and print the
/// merged exploration. Returns the process exit code.
#[must_use]
pub fn coordinate_command(args: &[String]) -> u8 {
    if wants_help(args) {
        return emit(&help(COORDINATE_USAGE));
    }
    let mut listen: Option<String> = None;
    let mut max_vehicles = 2usize;
    let mut shards = 8usize;
    let mut lease_ms = 2000u64;
    let mut state: Option<String> = None;
    let mut max_conns = 256usize;
    let mut budget: Option<usize> = None;
    let mut all = false;
    let mut stats = false;
    let mut outputs = ObsOutputs::default();
    let mut flags = Flags::new(args, COORDINATE_USAGE);
    while let Some(flag) = flags.next_flag() {
        let flag = match flag {
            Ok(f) => f,
            Err(r) => return emit(&r),
        };
        let (name, inline) = match flag {
            Flag::Named(n, v) => (n, v),
            Flag::Positional(p) => return emit(&flags.positional(&p)),
        };
        match name.as_str() {
            "listen" => match flags.value("listen", inline) {
                Ok(v) => listen = Some(v),
                Err(r) => return emit(&r),
            },
            "max-vehicles" => match flags.positive("max-vehicles", inline) {
                Ok(n) => max_vehicles = n,
                Err(r) => return emit(&r),
            },
            "shards" => match flags.positive("shards", inline) {
                Ok(n) => shards = n,
                Err(r) => return emit(&r),
            },
            "lease-ms" => match flags.positive("lease-ms", inline) {
                Ok(n) => lease_ms = n as u64,
                Err(r) => return emit(&r),
            },
            "state" => match flags.value("state", inline) {
                Ok(v) => state = Some(v),
                Err(r) => return emit(&r),
            },
            "max-conns" => match flags.positive("max-conns", inline) {
                Ok(n) => max_conns = n,
                Err(r) => return emit(&r),
            },
            "budget" => match flags.positive("budget", inline) {
                Ok(n) => budget = Some(n),
                Err(r) => return emit(&r),
            },
            "all" => all = true,
            "stats" => stats = true,
            "stats-json" => match flags.value("stats-json", inline) {
                Ok(v) => outputs.stats_json = Some(v),
                Err(r) => return emit(&r),
            },
            "trace-json" => match flags.value("trace-json", inline) {
                Ok(v) => outputs.trace_json = Some(v),
                Err(r) => return emit(&r),
            },
            other => return emit(&flags.unknown(other)),
        }
    }
    let Some(listen) = listen else {
        return emit(&Rendered::usage_error(
            "--listen is required",
            COORDINATE_USAGE,
        ));
    };
    let obs = outputs.obs(&ServiceCtx::one_shot());
    let config = CoordConfig {
        max_vehicles,
        shards,
        lease_ms,
        max_candidates: budget.unwrap_or(ExploreOptions::default().max_candidates),
        require_connected: !all,
        state_path: state.map(PathBuf::from),
        max_conns,
        obs: obs.clone(),
    };
    let coordinator = match Coordinator::bind(&listen, config) {
        Ok(c) => c,
        Err(e) => return emit(&Rendered::failure(&e.to_string())),
    };
    let addr = match coordinator.addr() {
        Ok(a) => a,
        Err(e) => return emit(&Rendered::failure(&e.to_string())),
    };
    // Announce the resolved address immediately (workers and test
    // harnesses parse this line to find an ephemeral port).
    {
        use std::io::Write as _;
        println!("listening on {addr}");
        let _ = std::io::stdout().flush();
    }
    match coordinator.run() {
        Ok(exploration) => {
            let mut r = render_exploration(&exploration, max_vehicles, all, stats, 1);
            outputs.collect(&obs, &mut r);
            emit(&r)
        }
        Err(e) => emit(&Rendered::failure(&e.to_string())),
    }
}

/// `fsa work` — connect to a coordinator and work shard leases until
/// the universe is done. Returns the process exit code.
#[must_use]
pub fn work_command(args: &[String]) -> u8 {
    if wants_help(args) {
        return emit(&help(WORK_USAGE));
    }
    let mut connect: Option<String> = None;
    let mut state_dir = String::from(".");
    let mut threads = 1usize;
    // Distinct default jitter seeds per process keep an un-configured
    // fleet from re-synchronising its backoff sleeps.
    let mut seed = u64::from(std::process::id());
    let mut reconnect = 8usize;
    let mut flags = Flags::new(args, WORK_USAGE);
    while let Some(flag) = flags.next_flag() {
        let flag = match flag {
            Ok(f) => f,
            Err(r) => return emit(&r),
        };
        let (name, inline) = match flag {
            Flag::Named(n, v) => (n, v),
            Flag::Positional(p) => return emit(&flags.positional(&p)),
        };
        match name.as_str() {
            "connect" => match flags.value("connect", inline) {
                Ok(v) => connect = Some(v),
                Err(r) => return emit(&r),
            },
            "state-dir" => match flags.value("state-dir", inline) {
                Ok(v) => state_dir = v,
                Err(r) => return emit(&r),
            },
            "threads" => match flags.positive("threads", inline) {
                Ok(n) => threads = n,
                Err(r) => return emit(&r),
            },
            "seed" => match flags.seed("seed", inline) {
                Ok(n) => seed = n,
                Err(r) => return emit(&r),
            },
            "reconnect" => match flags.positive("reconnect", inline) {
                Ok(n) => reconnect = n,
                Err(r) => return emit(&r),
            },
            other => return emit(&flags.unknown(other)),
        }
    }
    let Some(connect) = connect else {
        return emit(&Rendered::usage_error("--connect is required", WORK_USAGE));
    };
    let config = WorkerConfig {
        state_dir: PathBuf::from(state_dir),
        threads,
        seed,
        reconnect,
        ..WorkerConfig::default()
    };
    match run_worker(&connect, &config) {
        Ok(()) => 0,
        Err(e) => emit(&Rendered::failure(&e.to_string())),
    }
}
