//! The worker: lease → explore → report, with durable checkpoints
//! and a reconnecting transport.
//!
//! A worker connects to a coordinator, handshakes, and then loops
//! requesting shard leases. Each leased shard runs through the
//! supervised explore engine restricted to the shard's
//! [`ShardRange`], with its own [`ExploreCheckpoint`] file under the
//! worker's state directory — so a `SIGKILL`ed worker (or its
//! replacement picking up the re-issued lease) resumes the shard
//! from the last checkpoint instead of from scratch. Checkpoint
//! files are pid-suffixed (`shard-<start>-<end>.<pid>.fsas`):
//! [`fsa_exec::Snapshot::write_atomic`] stages through a fixed
//! `<path>.tmp`, so two workers sharing one file name could race on
//! the staging file; distinct names keep every writer exclusive
//! while resume still finds a predecessor's newest file by prefix.
//!
//! The exploration deadline is set to ¾ of the lease: the engine
//! parks at a batch boundary before the lease expires, the worker
//! renews (the coordinator re-grants the same shard to the holder),
//! and the run resumes from its own checkpoint. Only a worker that
//! stops renewing — dead, wedged, partitioned — loses its lease.
//!
//! **Connection loss is not the end of the run.** A dropped, stalled,
//! or corrupted coordinator connection ends the *session*, not the
//! worker: the worker sleeps a seeded decorrelated-jitter backoff
//! ([`crate::backoff`]), reconnects, re-handshakes, and asks for a
//! lease again — the coordinator re-grants an interrupted shard to
//! whoever asks (the durable checkpoint makes resumption cheap), so a
//! restarted coordinator or a flaky link costs one backoff, not the
//! shard. Only after [`WorkerConfig::reconnect`] consecutive failed
//! *connection attempts* does the worker give up — cleanly when it
//! ever worked a session (its checkpoints are safe on disk and the
//! coordinator is simply gone, presumably finished), with an error
//! when the coordinator was never reachable at all.
//!
//! [`ExploreCheckpoint`]: fsa_core::checkpoint::ExploreCheckpoint

use crate::backoff::{Backoff, BackoffKind};
use crate::error::DistError;
use crate::proto::{
    decode_to_worker, encode_to_coordinator, HelloConfig, ToCoordinator, ToWorker, MAX_FRAME,
};
use fsa_core::checkpoint::CheckpointCounters;
use fsa_core::explore::{
    enumerate_instances_supervised, CheckpointSpec, ExecOptions, ExploreOptions, ShardRange,
};
use fsa_core::FsaError;
use fsa_exec::{CancelToken, Supervisor};
use fsa_obs::Obs;
use fsa_serve::wire::{self, FrameEvent, ReadLimits, WireError};
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How long the worker waits for the coordinator's reply to any
/// single request before declaring the session lost. Replies are
/// cheap (the most expensive is a shard-result ack, which fsyncs the
/// coordinator state file), so this is generous.
const REPLY_DEADLINE_MS: u64 = 5_000;

/// Socket-level read/write timeout; the polling granularity under
/// the frame deadlines, not a protocol timeout of its own.
const SOCKET_TIMEOUT_MS: u64 = 100;

/// First delay of a reconnect streak.
const RECONNECT_BASE_MS: u64 = 25;

/// Ceiling of a reconnect streak.
const RECONNECT_CAP_MS: u64 = 1_000;

/// First delay of a lease-contention streak (the coordinator's
/// `retry` hint can only raise individual draws, never the floor).
const RETRY_BASE_MS: u64 = 10;

/// Ceiling of a lease-contention streak.
const RETRY_CAP_MS: u64 = 2_000;

/// Configuration of one worker process (or thread).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Directory for the worker's shard checkpoint files.
    pub state_dir: PathBuf,
    /// Worker threads for candidate building inside a shard.
    pub threads: usize,
    /// Seed for this worker's jittered backoff streams. Give each
    /// worker of a fleet a distinct seed or they re-synchronise.
    pub seed: u64,
    /// How many *consecutive* failed connection attempts end the
    /// worker. Any session that reaches a handshake refills the
    /// budget, so a long run tolerates any number of transient drops.
    pub reconnect: usize,
    /// Delay policy for the retry and reconnect sleeps
    /// ([`BackoffKind::Fixed`] exists for the before/after bench).
    pub backoff: BackoffKind,
    /// Observability handle (workers run with it disabled by default;
    /// the coordinator owns the run's `dist.*` counters).
    pub obs: Obs,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            state_dir: PathBuf::from("."),
            threads: 1,
            seed: 0,
            reconnect: 8,
            backoff: BackoffKind::Decorrelated,
            obs: Obs::disabled(),
        }
    }
}

/// One protocol round-trip, with transport trouble folded into a
/// dedicated outcome: a coordinator that goes away, stalls past the
/// reply deadline, or ships a frame that no longer decodes is not an
/// error for the worker — its checkpoints are durable and the
/// reconnect loop decides what happens next.
enum Step {
    Frame(ToWorker),
    Gone,
}

fn roundtrip(
    reader: &mut TcpStream,
    writer: &mut TcpStream,
    frame: &ToCoordinator,
) -> Result<Step, DistError> {
    let deadline = Duration::from_millis(REPLY_DEADLINE_MS);
    match wire::write_frame_deadline(writer, &encode_to_coordinator(frame), Some(deadline)) {
        Ok(()) => {}
        // Our own frame exceeding the cap is a bug, not weather.
        Err(e @ WireError::Oversize { .. }) => return Err(e.into()),
        Err(_) => return Ok(Step::Gone),
    }
    let limits = ReadLimits {
        max_frame: MAX_FRAME,
        frame_deadline: Some(deadline),
        idle_deadline: Some(Instant::now() + deadline),
    };
    match wire::read_frame_event(reader, &limits, &|| false) {
        Ok(FrameEvent::Frame(payload)) => match decode_to_worker(&payload) {
            Ok(frame) => Ok(Step::Frame(frame)),
            // A frame that does not decode means the stream is
            // corrupt; nothing after it can be trusted either.
            Err(_) => Ok(Step::Gone),
        },
        // Eof: closed between frames. Idle: reply never started.
        Ok(FrameEvent::Eof | FrameEvent::Idle) => Ok(Step::Gone),
        // Truncated/Stalled mid-frame, a garbled length prefix
        // (Oversize), invalid UTF-8, socket errors: all transport
        // damage, all survivable.
        Err(_) => Ok(Step::Gone),
    }
}

/// The worker's own checkpoint file for a shard.
fn own_checkpoint(state_dir: &Path, shard: ShardRange) -> PathBuf {
    state_dir.join(format!(
        "shard-{}-{}.{}.fsas",
        shard.start,
        shard.end,
        std::process::id()
    ))
}

/// The newest checkpoint file any worker left for this shard, by
/// modification time.
fn newest_checkpoint(state_dir: &Path, shard: ShardRange) -> Option<PathBuf> {
    let prefix = format!("shard-{}-{}.", shard.start, shard.end);
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in fs::read_dir(state_dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(&prefix) || !name.ends_with(".fsas") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let Ok(mtime) = meta.modified() else { continue };
        if best.as_ref().is_none_or(|(t, _)| mtime >= *t) {
            best = Some((mtime, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

/// A fully explored shard: the accepted `(ordinal, mask)` log plus
/// the engine counters to ship in the `shard-result` frame.
type ShardOutcome = (Vec<(u64, u64)>, CheckpointCounters);

/// Runs one leased shard to completion or to the lease-renewal
/// deadline. Returns `None` when the run parked at the deadline (the
/// caller renews the lease and calls again) and `Some(result)` when
/// the shard is fully explored.
fn run_shard(
    cfg: &HelloConfig,
    worker: &WorkerConfig,
    shard: ShardRange,
    lease_ms: u64,
) -> Result<Option<ShardOutcome>, DistError> {
    let (models, rules) = vanet::exploration::scenario_universe(cfg.max_vehicles as usize);
    let max_candidates = usize::try_from(cfg.max_candidates).unwrap_or(usize::MAX);
    let options = ExploreOptions {
        require_connected: cfg.require_connected,
        max_candidates,
        threads: worker.threads.max(1),
        shard: Some(shard),
        ..ExploreOptions::default()
    };
    let own = own_checkpoint(&worker.state_dir, shard);
    let mut resume = newest_checkpoint(&worker.state_dir, shard);
    loop {
        let deadline = Duration::from_millis((lease_ms.saturating_mul(3) / 4).max(50));
        let exec = ExecOptions {
            supervisor: Supervisor::new().with_cancel(CancelToken::with_deadline(deadline)),
            batch: 32,
            checkpoint: Some(CheckpointSpec {
                path: own.clone(),
                every: 8,
            }),
            resume: resume.clone(),
        };
        match enumerate_instances_supervised(&models, &rules, &options, &exec) {
            Ok(expl) if expl.stats.cancelled => return Ok(None),
            Ok(expl) => {
                let counters = CheckpointCounters {
                    multiplicity_vectors: expl.stats.multiplicity_vectors,
                    subsets_total: expl.stats.subsets_total,
                    orbits_skipped: expl.stats.orbits_skipped,
                    candidates: expl.stats.candidates,
                    candidates_built: expl.stats.candidates_built,
                    disconnected_skipped: expl.stats.disconnected_skipped,
                    certificate_hits: expl.stats.certificate_hits,
                    exact_iso_fallbacks: expl.stats.exact_iso_fallbacks,
                    truncated: expl.stats.truncated,
                    vectors_completed: expl.stats.vectors_completed,
                    failures: expl.stats.failures,
                    retries: expl.stats.retries,
                };
                return Ok(Some((expl.accepted, counters)));
            }
            // A stale or foreign checkpoint (e.g. written under a
            // different configuration) fails closed; drop it and run
            // the shard from scratch once.
            Err(FsaError::CorruptCheckpoint { .. }) if resume.is_some() => {
                if let Some(path) = resume.take() {
                    let _ = fs::remove_file(path);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// How one connected session ended.
enum SessionEnd {
    /// The coordinator reported the universe complete.
    Done,
    /// The connection was lost (or corrupted) *after* a successful
    /// handshake; reconnect with a refreshed attempt budget.
    Lost,
    /// No session was established: connect failed, the coordinator
    /// closed or stalled during the handshake, or it answered the
    /// handshake with `retry` (connection cap). Counts against the
    /// consecutive-attempt budget.
    Unreachable,
}

/// Runs one connection's worth of work: connect, handshake, then
/// lease → explore → report until the universe is done or the
/// connection dies.
fn work_session(
    addr: &str,
    config: &WorkerConfig,
    contention: &mut Backoff,
) -> Result<SessionEnd, DistError> {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Ok(SessionEnd::Unreachable);
    };
    stream.set_nodelay(true).ok();
    let timeout = Some(Duration::from_millis(SOCKET_TIMEOUT_MS));
    stream
        .set_read_timeout(timeout)
        .map_err(|e| DistError::Io(e.to_string()))?;
    stream
        .set_write_timeout(timeout)
        .map_err(|e| DistError::Io(e.to_string()))?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| DistError::Io(e.to_string()))?;
    let mut writer = stream;
    let cfg = match roundtrip(&mut reader, &mut writer, &ToCoordinator::Hello)? {
        Step::Frame(ToWorker::Hello(cfg)) => cfg,
        // The coordinator is at its connection cap: back off like any
        // other contention and try again (without refilling the
        // attempt budget — a permanently saturated coordinator must
        // not pin the worker forever).
        Step::Frame(ToWorker::Retry { retry_ms }) => {
            std::thread::sleep(contention.next_delay(retry_ms));
            return Ok(SessionEnd::Unreachable);
        }
        Step::Frame(ToWorker::Error { message }) => return Err(DistError::Worker(message)),
        Step::Frame(other) => {
            return Err(DistError::Proto(format!(
                "expected `hello` reply, got {other:?}"
            )))
        }
        Step::Gone => return Ok(SessionEnd::Unreachable),
    };
    config.obs.counter_add("dist.worker_sessions", 1);
    loop {
        let grant = match roundtrip(&mut reader, &mut writer, &ToCoordinator::Lease)? {
            Step::Frame(frame) => frame,
            Step::Gone => return Ok(SessionEnd::Lost),
        };
        match grant {
            ToWorker::Grant {
                start,
                end,
                lease_ms,
            } => {
                contention.reset();
                let shard = ShardRange { start, end };
                let span = config.obs.span("dist.shard");
                let outcome = run_shard(&cfg, config, shard, lease_ms)?;
                span.finish();
                let Some((accepted, counters)) = outcome else {
                    // Parked at the lease deadline: renew (the
                    // coordinator re-grants the holder's shard) and
                    // resume from our checkpoint.
                    continue;
                };
                let ack = roundtrip(
                    &mut reader,
                    &mut writer,
                    &ToCoordinator::ShardResult {
                        start,
                        end,
                        accepted,
                        counters,
                    },
                )?;
                match ack {
                    Step::Frame(ToWorker::ShardDone { .. }) => {
                        config.obs.counter_add("dist.worker_shards", 1);
                        // Acknowledged — and the ack is only sent
                        // after the coordinator fsynced the result
                        // into its state file — so our checkpoint for
                        // the range is garbage now.
                        let _ = fs::remove_file(own_checkpoint(&config.state_dir, shard));
                    }
                    Step::Frame(ToWorker::Error { message }) => {
                        return Err(DistError::Worker(message))
                    }
                    // Desynchronised pairing (a duplicated reply):
                    // reconnect and resubmit — the checkpoint is
                    // still on disk and the ack path is idempotent.
                    Step::Frame(_) => {
                        config.obs.counter_add("dist.worker_desync", 1);
                        return Ok(SessionEnd::Lost);
                    }
                    // The result may or may not have landed; the
                    // checkpoint stays so this worker (after its
                    // reconnect) or a successor can resume cheaply.
                    Step::Gone => return Ok(SessionEnd::Lost),
                }
            }
            ToWorker::Retry { retry_ms } => {
                std::thread::sleep(contention.next_delay(retry_ms));
            }
            ToWorker::Done => {
                let _ = wire::write_frame_deadline(
                    &mut writer,
                    &encode_to_coordinator(&ToCoordinator::Bye),
                    Some(Duration::from_millis(REPLY_DEADLINE_MS)),
                );
                return Ok(SessionEnd::Done);
            }
            ToWorker::Error { message } => return Err(DistError::Worker(message)),
            // A frame that decodes but does not answer our request —
            // a duplicated or replayed reply on a damaged transport.
            // The pairing is unrecoverable mid-stream, but a fresh
            // session re-pairs from the handshake; the coordinator's
            // handshake, grant and ack paths are all idempotent.
            _ => {
                config.obs.counter_add("dist.worker_desync", 1);
                return Ok(SessionEnd::Lost);
            }
        }
    }
}

/// Connects to a coordinator and works shards until the coordinator
/// reports the universe done, reconnecting through transient drops.
///
/// A lost connection (including a coordinator restart — its state
/// file preserves completed shards, and re-leasing the interrupted
/// one is cheap thanks to the worker's checkpoint) costs a jittered
/// backoff and a new handshake. The worker only stops on
/// [`WorkerConfig::reconnect`] *consecutive* failed attempts: that is
/// a clean exit when some session was worked before (the coordinator
/// has presumably finished and gone away), and an error when the
/// coordinator was never reachable.
///
/// # Errors
///
/// [`DistError::Io`] when the coordinator was never reachable,
/// [`DistError::Proto`] on protocol violations,
/// [`DistError::Worker`] when the coordinator rejects this worker,
/// and [`DistError::Fsa`] when a shard fails analytically (e.g. the
/// per-worker candidate budget).
pub fn run_worker(addr: &str, config: &WorkerConfig) -> Result<(), DistError> {
    fs::create_dir_all(&config.state_dir)
        .map_err(|e| DistError::Io(format!("state dir {}: {e}", config.state_dir.display())))?;
    let budget = config.reconnect.max(1);
    let mut attempts = budget;
    let mut connected_once = false;
    // Independent seeded streams: reconnect pacing and lease
    // contention are separate streaks (losing a connection should not
    // inherit a grown lease-contention delay, and vice versa).
    let mut reconnect = Backoff::new(
        config.backoff,
        RECONNECT_BASE_MS,
        RECONNECT_CAP_MS,
        config.seed ^ 0xA076_1D64_78BD_642F,
    );
    let mut contention = Backoff::new(
        config.backoff,
        RETRY_BASE_MS,
        RETRY_CAP_MS,
        config.seed ^ 0xE703_7ED1_A0B4_28DB,
    );
    loop {
        match work_session(addr, config, &mut contention)? {
            SessionEnd::Done => return Ok(()),
            SessionEnd::Lost => {
                connected_once = true;
                attempts = budget;
                reconnect.reset();
                config.obs.counter_add("dist.worker_reconnects", 1);
            }
            SessionEnd::Unreachable => {}
        }
        attempts -= 1;
        if attempts == 0 {
            if connected_once {
                // We worked at least one session and now the
                // coordinator is gone for good — it finished (our
                // `done` grant was lost with the connection) or an
                // operator took it down. Every result we hold is
                // either acked or durable in a checkpoint; this is a
                // clean exit, mirroring the pre-reconnect contract
                // that a vanished coordinator is not a worker error.
                return Ok(());
            }
            return Err(DistError::Io(format!(
                "coordinator at {addr} unreachable after {budget} attempts"
            )));
        }
        std::thread::sleep(reconnect.next_delay(RECONNECT_BASE_MS));
    }
}
