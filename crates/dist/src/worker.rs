//! The worker: lease → explore → report, with durable checkpoints.
//!
//! A worker connects to a coordinator, handshakes, and then loops
//! requesting shard leases. Each leased shard runs through the
//! supervised explore engine restricted to the shard's
//! [`ShardRange`], with its own [`ExploreCheckpoint`] file under the
//! worker's state directory — so a `SIGKILL`ed worker (or its
//! replacement picking up the re-issued lease) resumes the shard
//! from the last checkpoint instead of from scratch. Checkpoint
//! files are pid-suffixed (`shard-<start>-<end>.<pid>.fsas`):
//! [`fsa_exec::Snapshot::write_atomic`] stages through a fixed
//! `<path>.tmp`, so two workers sharing one file name could race on
//! the staging file; distinct names keep every writer exclusive
//! while resume still finds a predecessor's newest file by prefix.
//!
//! The exploration deadline is set to ¾ of the lease: the engine
//! parks at a batch boundary before the lease expires, the worker
//! renews (the coordinator re-grants the same shard to the holder),
//! and the run resumes from its own checkpoint. Only a worker that
//! stops renewing — dead, wedged, partitioned — loses its lease.
//!
//! [`ExploreCheckpoint`]: fsa_core::checkpoint::ExploreCheckpoint

use crate::error::DistError;
use crate::proto::{
    decode_to_worker, encode_to_coordinator, HelloConfig, ToCoordinator, ToWorker, MAX_FRAME,
};
use fsa_core::checkpoint::CheckpointCounters;
use fsa_core::explore::{
    enumerate_instances_supervised, CheckpointSpec, ExecOptions, ExploreOptions, ShardRange,
};
use fsa_core::FsaError;
use fsa_exec::{CancelToken, Supervisor};
use fsa_obs::Obs;
use fsa_serve::wire::{self, WireError};
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Configuration of one worker process (or thread).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Directory for the worker's shard checkpoint files.
    pub state_dir: PathBuf,
    /// Worker threads for candidate building inside a shard.
    pub threads: usize,
    /// Observability handle (workers run with it disabled by default;
    /// the coordinator owns the run's `dist.*` counters).
    pub obs: Obs,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            state_dir: PathBuf::from("."),
            threads: 1,
            obs: Obs::disabled(),
        }
    }
}

/// One protocol round-trip, with connection loss folded into a
/// dedicated outcome: a coordinator that goes away between frames is
/// not an error for the worker — its checkpoints are durable and the
/// driver (or operator) decides what the overall run did.
enum Step {
    Frame(ToWorker),
    Gone,
}

fn roundtrip(
    reader: &mut TcpStream,
    writer: &mut TcpStream,
    frame: &ToCoordinator,
) -> Result<Step, DistError> {
    match wire::write_frame(writer, &encode_to_coordinator(frame)) {
        Ok(()) => {}
        Err(WireError::Io(_) | WireError::Truncated) => return Ok(Step::Gone),
        Err(e) => return Err(e.into()),
    }
    match wire::read_frame(reader, MAX_FRAME) {
        Ok(Some(payload)) => Ok(Step::Frame(decode_to_worker(&payload)?)),
        Ok(None) => Ok(Step::Gone),
        Err(WireError::Io(_) | WireError::Truncated) => Ok(Step::Gone),
        Err(e) => Err(e.into()),
    }
}

/// The worker's own checkpoint file for a shard.
fn own_checkpoint(state_dir: &Path, shard: ShardRange) -> PathBuf {
    state_dir.join(format!(
        "shard-{}-{}.{}.fsas",
        shard.start,
        shard.end,
        std::process::id()
    ))
}

/// The newest checkpoint file any worker left for this shard, by
/// modification time.
fn newest_checkpoint(state_dir: &Path, shard: ShardRange) -> Option<PathBuf> {
    let prefix = format!("shard-{}-{}.", shard.start, shard.end);
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in fs::read_dir(state_dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(&prefix) || !name.ends_with(".fsas") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let Ok(mtime) = meta.modified() else { continue };
        if best.as_ref().is_none_or(|(t, _)| mtime >= *t) {
            best = Some((mtime, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

/// A fully explored shard: the accepted `(ordinal, mask)` log plus
/// the engine counters to ship in the `shard-result` frame.
type ShardOutcome = (Vec<(u64, u64)>, CheckpointCounters);

/// Runs one leased shard to completion or to the lease-renewal
/// deadline. Returns `None` when the run parked at the deadline (the
/// caller renews the lease and calls again) and `Some(result)` when
/// the shard is fully explored.
fn run_shard(
    cfg: &HelloConfig,
    worker: &WorkerConfig,
    shard: ShardRange,
    lease_ms: u64,
) -> Result<Option<ShardOutcome>, DistError> {
    let (models, rules) = vanet::exploration::scenario_universe(cfg.max_vehicles as usize);
    let max_candidates = usize::try_from(cfg.max_candidates).unwrap_or(usize::MAX);
    let options = ExploreOptions {
        require_connected: cfg.require_connected,
        max_candidates,
        threads: worker.threads.max(1),
        shard: Some(shard),
        ..ExploreOptions::default()
    };
    let own = own_checkpoint(&worker.state_dir, shard);
    let mut resume = newest_checkpoint(&worker.state_dir, shard);
    loop {
        let deadline = Duration::from_millis((lease_ms.saturating_mul(3) / 4).max(50));
        let exec = ExecOptions {
            supervisor: Supervisor::new().with_cancel(CancelToken::with_deadline(deadline)),
            batch: 32,
            checkpoint: Some(CheckpointSpec {
                path: own.clone(),
                every: 8,
            }),
            resume: resume.clone(),
        };
        match enumerate_instances_supervised(&models, &rules, &options, &exec) {
            Ok(expl) if expl.stats.cancelled => return Ok(None),
            Ok(expl) => {
                let counters = CheckpointCounters {
                    multiplicity_vectors: expl.stats.multiplicity_vectors,
                    subsets_total: expl.stats.subsets_total,
                    orbits_skipped: expl.stats.orbits_skipped,
                    candidates: expl.stats.candidates,
                    candidates_built: expl.stats.candidates_built,
                    disconnected_skipped: expl.stats.disconnected_skipped,
                    certificate_hits: expl.stats.certificate_hits,
                    exact_iso_fallbacks: expl.stats.exact_iso_fallbacks,
                    truncated: expl.stats.truncated,
                    vectors_completed: expl.stats.vectors_completed,
                    failures: expl.stats.failures,
                    retries: expl.stats.retries,
                };
                return Ok(Some((expl.accepted, counters)));
            }
            // A stale or foreign checkpoint (e.g. written under a
            // different configuration) fails closed; drop it and run
            // the shard from scratch once.
            Err(FsaError::CorruptCheckpoint { .. }) if resume.is_some() => {
                if let Some(path) = resume.take() {
                    let _ = fs::remove_file(path);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Connects to a coordinator and works shards until the coordinator
/// reports the universe done (or goes away).
///
/// # Errors
///
/// [`DistError::Io`] when the coordinator cannot be reached at all,
/// [`DistError::Proto`] on protocol violations,
/// [`DistError::Worker`] when the coordinator rejects this worker,
/// and [`DistError::Fsa`] when a shard fails analytically (e.g. the
/// per-worker candidate budget).
pub fn run_worker(addr: &str, config: &WorkerConfig) -> Result<(), DistError> {
    fs::create_dir_all(&config.state_dir)
        .map_err(|e| DistError::Io(format!("state dir {}: {e}", config.state_dir.display())))?;
    let stream =
        TcpStream::connect(addr).map_err(|e| DistError::Io(format!("connect {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut reader = stream
        .try_clone()
        .map_err(|e| DistError::Io(e.to_string()))?;
    let mut writer = stream;
    let cfg = match roundtrip(&mut reader, &mut writer, &ToCoordinator::Hello)? {
        Step::Frame(ToWorker::Hello(cfg)) => cfg,
        Step::Frame(ToWorker::Error { message }) => return Err(DistError::Worker(message)),
        Step::Frame(other) => {
            return Err(DistError::Proto(format!(
                "expected `hello` reply, got {other:?}"
            )))
        }
        Step::Gone => {
            return Err(DistError::Io(format!(
                "coordinator at {addr} closed during the handshake"
            )))
        }
    };
    loop {
        let grant = match roundtrip(&mut reader, &mut writer, &ToCoordinator::Lease)? {
            Step::Frame(frame) => frame,
            Step::Gone => return Ok(()),
        };
        match grant {
            ToWorker::Grant {
                start,
                end,
                lease_ms,
            } => {
                let shard = ShardRange { start, end };
                let span = config.obs.span("dist.shard");
                let outcome = run_shard(&cfg, config, shard, lease_ms)?;
                span.finish();
                let Some((accepted, counters)) = outcome else {
                    // Parked at the lease deadline: renew (the
                    // coordinator re-grants the holder's shard) and
                    // resume from our checkpoint.
                    continue;
                };
                let ack = roundtrip(
                    &mut reader,
                    &mut writer,
                    &ToCoordinator::ShardResult {
                        start,
                        end,
                        accepted,
                        counters,
                    },
                )?;
                match ack {
                    Step::Frame(ToWorker::ShardDone { .. }) => {
                        config.obs.counter_add("dist.worker_shards", 1);
                        // Acknowledged and durable coordinator-side:
                        // our checkpoint for the range is garbage now.
                        let _ = fs::remove_file(own_checkpoint(&config.state_dir, shard));
                    }
                    Step::Frame(ToWorker::Error { message }) => {
                        return Err(DistError::Worker(message))
                    }
                    Step::Frame(other) => {
                        return Err(DistError::Proto(format!(
                            "expected `shard-done`, got {other:?}"
                        )))
                    }
                    // The result may or may not have landed; the
                    // checkpoint stays so a successor can resume.
                    Step::Gone => return Ok(()),
                }
            }
            ToWorker::Retry { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 2000)));
            }
            ToWorker::Done => {
                let _ = wire::write_frame(&mut writer, &encode_to_coordinator(&ToCoordinator::Bye));
                return Ok(());
            }
            ToWorker::Error { message } => return Err(DistError::Worker(message)),
            other => {
                return Err(DistError::Proto(format!(
                    "expected a lease grant, got {other:?}"
                )))
            }
        }
    }
}
