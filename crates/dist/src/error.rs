//! Error type of the distributed exploration subsystem.

use fsa_core::FsaError;
use fsa_serve::wire::WireError;
use std::fmt;

/// Failures of the coordinator, the workers, or the local driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistError {
    /// Transport-level failure (bind, connect, spawn).
    Io(String),
    /// Framing-layer failure on the `fsa-wire/v1` transport.
    Wire(WireError),
    /// A syntactically valid frame that violates the `fsa-dist/v1`
    /// protocol (wrong type, missing field, protocol skew).
    Proto(String),
    /// The coordinator's store-and-forward state file is unusable:
    /// corrupt, version-skewed, or written under a different
    /// configuration.
    State(String),
    /// An analysis-layer failure (model validation, budget, merge).
    Fsa(FsaError),
    /// Worker-side failure surfaced to the driver (all workers dead,
    /// coordinator rejected a result).
    Worker(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Proto(e) => write!(f, "protocol error: {e}"),
            DistError::State(e) => write!(f, "coordinator state error: {e}"),
            DistError::Fsa(e) => write!(f, "{e}"),
            DistError::Worker(e) => write!(f, "worker error: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Wire(e) => Some(e),
            DistError::Fsa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<FsaError> for DistError {
    fn from(e: FsaError) -> Self {
        DistError::Fsa(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = DistError::Proto("unexpected frame `bye`".to_owned());
        assert!(e.to_string().contains("protocol error"));
        let e = DistError::Wire(WireError::Truncated);
        assert!(e.source().is_some());
        let e = DistError::Fsa(FsaError::BudgetExceeded { limit: 9 });
        assert!(e.to_string().contains('9'));
        let e = DistError::State("fingerprint mismatch".to_owned());
        assert!(e.to_string().contains("state"));
        let e = DistError::Worker("all workers exited".to_owned());
        assert!(e.to_string().contains("worker"));
        let e: DistError = std::io::Error::other("boom").into();
        assert!(matches!(e, DistError::Io(_)));
    }
}
