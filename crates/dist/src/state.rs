//! Store-and-forward coordinator state.
//!
//! The coordinator's work/result queue is not kept only in memory: each
//! time a shard result is accepted it is appended to a versioned state
//! file in the same checkpoint envelope the supervised engine uses
//! (`FSAS` magic + version + length + FNV-1a checksum, written via
//! atomic tmp+rename — see [`fsa_exec::Snapshot`]). A coordinator that
//! is killed mid-universe therefore resumes from the file: completed
//! shards are seeded as done, and only the remaining ranges are
//! re-leased to workers.
//!
//! The file embeds the `fsa-explore-config/v3` fingerprint of the
//! *unsharded* configuration plus the shard layout, and loading fails
//! closed with [`DistError::State`] when either disagrees with the
//! coordinator's current configuration.

use crate::error::DistError;
use fsa_core::checkpoint::CheckpointCounters;
use fsa_core::explore::ShardRange;
use fsa_exec::{Snapshot, SnapshotReader};
use std::path::Path;

/// Snapshot payload version of the coordinator state file.
pub const STATE_VERSION: u32 = 1;

/// One shard's durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// The shard's global ordinal range.
    pub range: ShardRange,
    /// `Some((accepted, counters))` once the shard's result has been
    /// accepted; `None` while the shard is still outstanding.
    pub done: Option<(Vec<(u64, u64)>, CheckpointCounters)>,
}

/// The coordinator's durable state: configuration header + per-shard
/// completion records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordState {
    /// `fsa-explore-config/v3` fingerprint of the unsharded run.
    pub fingerprint: u64,
    /// `--max-vehicles` of the run.
    pub max_vehicles: u64,
    /// Global candidate budget.
    pub max_candidates: u64,
    /// Whether disconnected candidates are skipped.
    pub require_connected: bool,
    /// All shards of the universe, in ascending range order.
    pub shards: Vec<ShardRecord>,
}

impl CoordState {
    /// How many shards have durably completed.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.shards.iter().filter(|s| s.done.is_some()).count()
    }

    /// Serialises the state into a checksummed snapshot and writes it
    /// atomically (tmp + fsync + rename + directory fsync) to `path`.
    ///
    /// Durability, not just atomicity, is load-bearing here: the
    /// coordinator acknowledges a `shard-result` only after this
    /// returns, and the worker deletes its own checkpoint on that
    /// ack. If the ack could outrun the disk, a machine crash would
    /// leave *neither* side holding the shard's result.
    ///
    /// # Errors
    ///
    /// [`DistError::State`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), DistError> {
        let mut snap = Snapshot::new(STATE_VERSION);
        snap.put_u64(self.fingerprint);
        snap.put_u64(self.max_vehicles);
        snap.put_u64(self.max_candidates);
        snap.put_bool(self.require_connected);
        snap.put_usize(self.shards.len());
        for shard in &self.shards {
            snap.put_u64(shard.range.start);
            snap.put_u64(shard.range.end);
            snap.put_bool(shard.done.is_some());
            if let Some((accepted, c)) = &shard.done {
                snap.put_usize(accepted.len());
                for (ordinal, mask) in accepted {
                    snap.put_u64(*ordinal);
                    snap.put_u64(*mask);
                }
                snap.put_usize(c.multiplicity_vectors);
                snap.put_usize(c.subsets_total);
                snap.put_usize(c.orbits_skipped);
                snap.put_usize(c.candidates);
                snap.put_usize(c.candidates_built);
                snap.put_usize(c.disconnected_skipped);
                snap.put_usize(c.certificate_hits);
                snap.put_usize(c.exact_iso_fallbacks);
                snap.put_bool(c.truncated);
                snap.put_usize(c.vectors_completed);
                snap.put_usize(c.failures);
                snap.put_u64(c.retries);
            }
        }
        snap.write_atomic(path)
            .map_err(|e| DistError::State(format!("cannot write {}: {e}", path.display())))
    }

    /// Loads and checksum-validates a state file.
    ///
    /// # Errors
    ///
    /// [`DistError::State`] when the file is unreadable, corrupt,
    /// version-skewed, or structurally invalid (unsorted shard
    /// ranges, gaps, overlaps).
    pub fn load(path: &Path) -> Result<CoordState, DistError> {
        let bad = |e: &dyn std::fmt::Display| {
            DistError::State(format!("cannot load {}: {e}", path.display()))
        };
        let mut r = SnapshotReader::read(path, STATE_VERSION).map_err(|e| bad(&e))?;
        let mut read = || -> Result<CoordState, fsa_exec::SnapshotError> {
            let fingerprint = r.u64()?;
            let max_vehicles = r.u64()?;
            let max_candidates = r.u64()?;
            let require_connected = r.bool()?;
            let count = r.usize()?;
            let mut shards = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let start = r.u64()?;
                let end = r.u64()?;
                let done = if r.bool()? {
                    let n = r.usize()?;
                    let mut accepted = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        let ordinal = r.u64()?;
                        let mask = r.u64()?;
                        accepted.push((ordinal, mask));
                    }
                    let counters = CheckpointCounters {
                        multiplicity_vectors: r.usize()?,
                        subsets_total: r.usize()?,
                        orbits_skipped: r.usize()?,
                        candidates: r.usize()?,
                        candidates_built: r.usize()?,
                        disconnected_skipped: r.usize()?,
                        certificate_hits: r.usize()?,
                        exact_iso_fallbacks: r.usize()?,
                        truncated: r.bool()?,
                        vectors_completed: r.usize()?,
                        failures: r.usize()?,
                        retries: r.u64()?,
                    };
                    Some((accepted, counters))
                } else {
                    None
                };
                shards.push(ShardRecord {
                    range: ShardRange { start, end },
                    done,
                });
            }
            Ok(CoordState {
                fingerprint,
                max_vehicles,
                max_candidates,
                require_connected,
                shards,
            })
        };
        let state = read().map_err(|e| bad(&e))?;
        r.finish().map_err(|e| bad(&e))?;
        for pair in state.shards.windows(2) {
            if pair[0].range.end != pair[1].range.start {
                return Err(DistError::State(format!(
                    "shard layout in {} has a gap or overlap at ordinal {}",
                    path.display(),
                    pair[0].range.end
                )));
            }
        }
        Ok(state)
    }

    /// Verifies that a loaded state file belongs to this run's
    /// configuration and shard layout.
    ///
    /// # Errors
    ///
    /// [`DistError::State`] naming the first disagreeing field.
    pub fn check_compatible(&self, expected: &CoordState) -> Result<(), DistError> {
        if self.fingerprint != expected.fingerprint {
            return Err(DistError::State(
                "config fingerprint mismatch: the state file was written under a different \
                 model/rule/option configuration"
                    .to_owned(),
            ));
        }
        if self.max_vehicles != expected.max_vehicles
            || self.max_candidates != expected.max_candidates
            || self.require_connected != expected.require_connected
        {
            return Err(DistError::State(
                "universe configuration mismatch between the state file and this run".to_owned(),
            ));
        }
        let mine: Vec<ShardRange> = self.shards.iter().map(|s| s.range).collect();
        let theirs: Vec<ShardRange> = expected.shards.iter().map(|s| s.range).collect();
        if mine != theirs {
            return Err(DistError::State(format!(
                "shard layout mismatch: state file has {} shards, this run wants {}",
                mine.len(),
                theirs.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fsa-dist-state-{tag}-{}.fsas", std::process::id()))
    }

    fn sample() -> CoordState {
        CoordState {
            fingerprint: 0xDEAD_BEEF,
            max_vehicles: 3,
            max_candidates: 100_000,
            require_connected: true,
            shards: vec![
                ShardRecord {
                    range: ShardRange { start: 0, end: 4 },
                    done: Some((
                        vec![(0, 0), (1, 2), (3, 5)],
                        CheckpointCounters {
                            multiplicity_vectors: 4,
                            subsets_total: 12,
                            orbits_skipped: 3,
                            candidates: 9,
                            candidates_built: 9,
                            disconnected_skipped: 0,
                            certificate_hits: 6,
                            exact_iso_fallbacks: 1,
                            truncated: false,
                            vectors_completed: 4,
                            failures: 0,
                            retries: 0,
                        },
                    )),
                },
                ShardRecord {
                    range: ShardRange { start: 4, end: 7 },
                    done: None,
                },
            ],
        }
    }

    #[test]
    fn state_round_trips_through_disk() {
        let path = temp_path("roundtrip");
        let state = sample();
        state.save(&path).unwrap();
        let loaded = CoordState::load(&path).unwrap();
        assert_eq!(loaded, state);
        assert_eq!(loaded.completed(), 1);
        loaded.check_compatible(&state).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_skewed_files_fail_closed() {
        let path = temp_path("corrupt");
        sample().save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(CoordState::load(&path), Err(DistError::State(_))));
        fs::write(&path, b"FSASnot a snapshot").unwrap();
        assert!(matches!(CoordState::load(&path), Err(DistError::State(_))));
        fs::remove_file(&path).unwrap();
        assert!(matches!(CoordState::load(&path), Err(DistError::State(_))));
    }

    #[test]
    fn incompatible_states_are_rejected() {
        let state = sample();
        let mut other = state.clone();
        other.fingerprint ^= 1;
        assert!(other.check_compatible(&state).is_err());
        let mut other = state.clone();
        other.max_vehicles = 4;
        assert!(other.check_compatible(&state).is_err());
        let mut other = state.clone();
        other.shards.pop();
        assert!(other.check_compatible(&state).is_err());
        // Completion status differences are fine: that is the point
        // of resuming.
        let mut other = state.clone();
        other.shards[0].done = None;
        other.check_compatible(&state).unwrap();
    }

    #[test]
    fn gapped_layouts_are_rejected_on_load() {
        let path = temp_path("gap");
        let mut state = sample();
        state.shards[1].range.start = 5;
        state.save(&path).unwrap();
        assert!(matches!(CoordState::load(&path), Err(DistError::State(_))));
        fs::remove_file(&path).unwrap();
    }
}
