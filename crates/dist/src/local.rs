//! Single-machine driver: `fsa explore --distributed --workers N`.
//!
//! Runs a coordinator on an ephemeral loopback port plus N workers —
//! as child processes re-invoking the `fsa` binary (`fsa work`), or
//! as in-process threads (tests, library use) — and returns the
//! merged exploration. The result is bit-identical to the
//! single-process engine; only the execution is distributed.

use crate::backoff::BackoffKind;
use crate::coord::{CoordConfig, Coordinator};
use crate::error::DistError;
use crate::worker::{run_worker, WorkerConfig};
use fsa_core::explore::{Exploration, ExploreOptions};
use fsa_obs::Obs;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the driver runs its workers.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// Spawn `exe work --connect ...` child processes (the production
    /// path: crash isolation, separate address spaces).
    Processes {
        /// The binary to re-invoke (normally `std::env::current_exe`).
        exe: PathBuf,
    },
    /// Run workers as in-process threads (tests, benches).
    Threads,
}

/// Configuration of a local distributed run.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// Universe size: one RSU plus up to this many vehicles.
    pub max_vehicles: usize,
    /// Worker count.
    pub workers: usize,
    /// Shard count; defaults to `4 × workers` so slow shards
    /// rebalance across workers.
    pub shards: Option<usize>,
    /// Lease validity in milliseconds.
    pub lease_ms: u64,
    /// Checkpoint/state directory; an ephemeral one is created (and
    /// removed on success) when unset.
    pub state_dir: Option<PathBuf>,
    /// Global candidate budget.
    pub max_candidates: usize,
    /// Whether disconnected candidates are skipped.
    pub require_connected: bool,
    /// Threads per worker.
    pub threads: usize,
    /// Base seed for the workers' jittered backoff; each worker gets
    /// a distinct stream derived from it and its index.
    pub seed: u64,
    /// Backoff policy handed to every worker
    /// ([`BackoffKind::Fixed`] exists for the before/after bench).
    pub backoff: BackoffKind,
    /// Observability handle (owned by the coordinator side).
    pub obs: Obs,
}

impl Default for LocalConfig {
    fn default() -> Self {
        let explore = ExploreOptions::default();
        LocalConfig {
            max_vehicles: 3,
            workers: 2,
            shards: None,
            lease_ms: 2000,
            state_dir: None,
            max_candidates: explore.max_candidates,
            require_connected: explore.require_connected,
            threads: 1,
            seed: 0x5EED_0F5A,
            backoff: BackoffKind::Decorrelated,
            obs: Obs::disabled(),
        }
    }
}

/// The per-worker backoff seed: the run's base seed spread across
/// worker indices through the splitmix64 increment so neighbouring
/// workers draw unrelated jitter streams.
fn worker_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Distinguishes concurrently created ephemeral state directories
/// within one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

enum Workers {
    Children(Vec<Child>),
    Handles(Vec<std::thread::JoinHandle<Result<(), DistError>>>),
}

impl Workers {
    /// How many workers are still running.
    fn alive(&mut self) -> usize {
        match self {
            Workers::Children(children) => {
                let mut running = 0;
                for child in children.iter_mut() {
                    if matches!(child.try_wait(), Ok(None)) {
                        running += 1;
                    }
                }
                running
            }
            Workers::Handles(handles) => handles.iter().filter(|h| !h.is_finished()).count(),
        }
    }

    /// Reaps every worker, draining the pool. Returns how many exited
    /// cleanly and the first failure found.
    fn reap(&mut self) -> (usize, Option<String>) {
        let mut ok = 0usize;
        let mut first = None;
        match self {
            Workers::Children(children) => {
                for mut child in children.drain(..) {
                    match child.wait() {
                        Ok(status) if !status.success() => {
                            first.get_or_insert(format!("worker exited with {status}"));
                        }
                        Err(e) => {
                            first.get_or_insert(format!("worker not reapable: {e}"));
                        }
                        Ok(_) => ok += 1,
                    }
                }
            }
            Workers::Handles(handles) => {
                for handle in handles.drain(..) {
                    match handle.join() {
                        Ok(Err(e)) => {
                            first.get_or_insert(e.to_string());
                        }
                        Err(_) => {
                            first.get_or_insert("worker thread panicked".to_owned());
                        }
                        Ok(Ok(())) => ok += 1,
                    }
                }
            }
        }
        (ok, first)
    }

    fn kill(&mut self) {
        if let Workers::Children(children) = self {
            for child in children {
                let _ = child.kill();
            }
        }
    }
}

/// Runs a full distributed exploration on this machine and returns
/// the merged result.
///
/// # Errors
///
/// [`DistError::Io`] when workers cannot be spawned,
/// [`DistError::Worker`] when every worker died before the universe
/// completed, plus everything [`Coordinator::run`] can return.
pub fn explore_distributed(
    config: &LocalConfig,
    mode: &WorkerMode,
) -> Result<Exploration, DistError> {
    let workers = config.workers.max(1);
    let shards = config.shards.unwrap_or(4 * workers).max(1);
    let (state_dir, ephemeral) = match &config.state_dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let dir = std::env::temp_dir().join(format!(
                "fsa-dist-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            (dir, true)
        }
    };
    std::fs::create_dir_all(&state_dir)
        .map_err(|e| DistError::Io(format!("state dir {}: {e}", state_dir.display())))?;
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordConfig {
            max_vehicles: config.max_vehicles,
            shards,
            lease_ms: config.lease_ms,
            max_candidates: config.max_candidates,
            require_connected: config.require_connected,
            state_path: Some(state_dir.join("coordinator.fsas")),
            obs: config.obs.clone(),
            ..CoordConfig::default()
        },
    )?;
    let addr = coordinator.addr()?.to_string();
    let coord_handle = std::thread::spawn(move || coordinator.run());
    let mut pool = match mode {
        WorkerMode::Processes { exe } => {
            let mut children = Vec::with_capacity(workers);
            for i in 0..workers {
                let child = Command::new(exe)
                    .args([
                        "work",
                        "--connect",
                        &addr,
                        "--state-dir",
                        &state_dir.display().to_string(),
                        "--threads",
                        &config.threads.max(1).to_string(),
                        "--seed",
                        &worker_seed(config.seed, i).to_string(),
                    ])
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .map_err(|e| DistError::Io(format!("spawn {}: {e}", exe.display())))?;
                children.push(child);
            }
            Workers::Children(children)
        }
        WorkerMode::Threads => {
            let handles = (0..workers)
                .map(|i| {
                    let addr = addr.clone();
                    let worker = WorkerConfig {
                        state_dir: state_dir.clone(),
                        threads: config.threads.max(1),
                        seed: worker_seed(config.seed, i),
                        backoff: config.backoff,
                        ..WorkerConfig::default()
                    };
                    std::thread::spawn(move || run_worker(&addr, &worker))
                })
                .collect();
            Workers::Handles(handles)
        }
    };
    // Supervise: the coordinator finishes when every shard is merged.
    // A worker that received its `done` grant exits cleanly *before*
    // the coordinator finishes merging, so an empty pool is only fatal
    // when every worker actually failed — otherwise the coordinator
    // already holds every result and just needs time. If no worker
    // exited cleanly, the run can never finish; abort rather than wait
    // forever. (The coordinator thread is left parked on its listener;
    // the process is about to exit anyway.)
    let mut drained: Option<(usize, Option<String>)> = None;
    let mut grace = Duration::ZERO;
    while !coord_handle.is_finished() {
        if drained.is_none() && pool.alive() == 0 {
            drained = Some(pool.reap());
        }
        if let Some((ok, failure)) = &drained {
            if *ok == 0 {
                let detail = failure
                    .clone()
                    .unwrap_or_else(|| "workers exited silently".to_owned());
                return Err(DistError::Worker(format!(
                    "all {workers} workers exited before the universe completed: {detail}"
                )));
            }
            // Some workers believe the universe is done; bound the
            // wait in case a clean exit raced a lost shard.
            grace += Duration::from_millis(5);
            if grace > Duration::from_secs(60) {
                return Err(DistError::Worker(format!(
                    "coordinator did not finish within 60s of all {workers} workers draining"
                )));
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let result = coord_handle
        .join()
        .unwrap_or_else(|_| Err(DistError::Worker("coordinator panicked".to_owned())));
    match &result {
        Ok(_) => {
            // Workers drain on their own `done` grants; reap them.
            let _ = pool.reap();
            if ephemeral {
                let _ = std::fs::remove_dir_all(&state_dir);
            }
        }
        Err(_) => pool.kill(),
    }
    result
}
