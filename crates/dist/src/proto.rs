//! The `fsa-dist/v1` protocol: JSON frames over `fsa-wire/v1` framing.
//!
//! The distributed layer reuses the serve subsystem's transport
//! ([`fsa_serve::wire`]: 4-byte big-endian length prefix + UTF-8 JSON)
//! and its inbound parser ([`fsa_serve::json`]); this module only
//! defines the frame vocabulary spoken between a coordinator and its
//! workers and the exact encode/decode for each frame.
//!
//! Worker → coordinator:
//!
//! | frame          | fields                                        |
//! |----------------|-----------------------------------------------|
//! | `hello`        | `protocol`                                    |
//! | `lease`        | —                                             |
//! | `shard-result` | `start`, `end`, `accepted`, `counters`        |
//! | `bye`          | —                                             |
//!
//! Coordinator → worker:
//!
//! | frame         | fields                                              |
//! |---------------|-----------------------------------------------------|
//! | `hello`       | `protocol`, `max_vehicles`, `max_candidates`, `require_connected` |
//! | `lease-grant` | `grant` (`"shard"` / `"retry"` / `"done"`) + fields |
//! | `shard-done`  | `start`, `end`                                      |
//! | `error`       | `message`                                           |
//!
//! Frames are encoded with [`fsa_obs::json`] (stable key order, exact
//! escaping) so the protocol stays byte-deterministic, which the
//! store-and-forward state file relies on for replay equality.

use crate::error::DistError;
use fsa_core::checkpoint::CheckpointCounters;
use fsa_obs::json::{write_key, write_str};
use fsa_serve::json::{self, Value};

/// Protocol identifier exchanged in both `hello` frames.
pub const PROTOCOL: &str = "fsa-dist/v1";

/// Maximum accepted frame size. Shard results carry the full accepted
/// `(ordinal, mask)` log of a shard, which can far exceed the serve
/// default of 1 MiB on large universes.
pub const MAX_FRAME: usize = 8 << 20;

/// The universe configuration the coordinator pushes to every worker
/// in its `hello` frame, so all workers explore the same space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloConfig {
    /// `--max-vehicles` of the distributed run.
    pub max_vehicles: u64,
    /// Candidate budget per worker (workers fail closed on excess;
    /// the coordinator re-checks the global sum at merge time).
    pub max_candidates: u64,
    /// Whether disconnected candidates are skipped.
    pub require_connected: bool,
}

/// Frames a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoordinator {
    /// Protocol handshake; must be the first frame on a connection.
    Hello,
    /// Request a shard lease (also used to renew the current lease).
    Lease,
    /// A completed shard: its range, accepted `(ordinal, mask)` log
    /// (strictly ascending by ordinal) and engine counters.
    ShardResult {
        /// First vector ordinal of the shard (inclusive).
        start: u64,
        /// One past the last vector ordinal of the shard.
        end: u64,
        /// Accepted `(ordinal, mask)` pairs in ascending ordinal order.
        accepted: Vec<(u64, u64)>,
        /// The shard run's engine counters.
        counters: CheckpointCounters,
    },
    /// Clean goodbye before closing the connection.
    Bye,
}

/// Frames the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Handshake reply carrying the universe configuration.
    Hello(HelloConfig),
    /// Lease grant: explore `[start, end)`; report back or renew
    /// within `lease_ms` or the lease expires and is re-issued.
    Grant {
        /// First vector ordinal of the leased shard (inclusive).
        start: u64,
        /// One past the last vector ordinal of the leased shard.
        end: u64,
        /// Lease validity in milliseconds.
        lease_ms: u64,
    },
    /// No shard is available right now (all leased); ask again after
    /// `retry_ms`.
    Retry {
        /// Suggested back-off in milliseconds.
        retry_ms: u64,
    },
    /// The universe is fully explored; the worker should say `bye`.
    Done,
    /// Acknowledges a `shard-result`: the shard is durably recorded
    /// and the worker may delete its checkpoint for the range.
    ShardDone {
        /// Acknowledged shard start.
        start: u64,
        /// Acknowledged shard end.
        end: u64,
    },
    /// A fatal protocol-level rejection.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Counter keys in [`CheckpointCounters`] declaration order — the same
/// order `fsa_core::checkpoint` serialises them in.
const COUNTER_KEYS: [&str; 12] = [
    "multiplicity_vectors",
    "subsets_total",
    "orbits_skipped",
    "candidates",
    "candidates_built",
    "disconnected_skipped",
    "certificate_hits",
    "exact_iso_fallbacks",
    "truncated",
    "vectors_completed",
    "failures",
    "retries",
];

fn write_u64_field(out: &mut String, key: &str, v: u64) {
    write_key(out, key);
    out.push_str(&v.to_string());
}

fn write_bool_field(out: &mut String, key: &str, v: bool) {
    write_key(out, key);
    out.push_str(if v { "true" } else { "false" });
}

fn write_counters(out: &mut String, c: &CheckpointCounters) {
    write_key(out, "counters");
    out.push('{');
    let values: [u64; 12] = [
        c.multiplicity_vectors as u64,
        c.subsets_total as u64,
        c.orbits_skipped as u64,
        c.candidates as u64,
        c.candidates_built as u64,
        c.disconnected_skipped as u64,
        c.certificate_hits as u64,
        c.exact_iso_fallbacks as u64,
        u64::from(c.truncated),
        c.vectors_completed as u64,
        c.failures as u64,
        c.retries,
    ];
    for (i, (key, v)) in COUNTER_KEYS.iter().zip(values).enumerate() {
        if i > 0 {
            out.push(',');
        }
        if *key == "truncated" {
            write_bool_field(out, key, v != 0);
        } else {
            write_u64_field(out, key, v);
        }
    }
    out.push('}');
}

/// Encodes a worker → coordinator frame as one JSON payload.
#[must_use]
pub fn encode_to_coordinator(frame: &ToCoordinator) -> String {
    let mut out = String::from("{");
    match frame {
        ToCoordinator::Hello => {
            write_key(&mut out, "type");
            write_str(&mut out, "hello");
            out.push(',');
            write_key(&mut out, "protocol");
            write_str(&mut out, PROTOCOL);
        }
        ToCoordinator::Lease => {
            write_key(&mut out, "type");
            write_str(&mut out, "lease");
        }
        ToCoordinator::ShardResult {
            start,
            end,
            accepted,
            counters,
        } => {
            write_key(&mut out, "type");
            write_str(&mut out, "shard-result");
            out.push(',');
            write_u64_field(&mut out, "start", *start);
            out.push(',');
            write_u64_field(&mut out, "end", *end);
            out.push(',');
            write_key(&mut out, "accepted");
            out.push('[');
            for (i, (ordinal, mask)) in accepted.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&ordinal.to_string());
                out.push(',');
                out.push_str(&mask.to_string());
                out.push(']');
            }
            out.push(']');
            out.push(',');
            write_counters(&mut out, counters);
        }
        ToCoordinator::Bye => {
            write_key(&mut out, "type");
            write_str(&mut out, "bye");
        }
    }
    out.push('}');
    out
}

/// Encodes a coordinator → worker frame as one JSON payload.
#[must_use]
pub fn encode_to_worker(frame: &ToWorker) -> String {
    let mut out = String::from("{");
    match frame {
        ToWorker::Hello(cfg) => {
            write_key(&mut out, "type");
            write_str(&mut out, "hello");
            out.push(',');
            write_key(&mut out, "protocol");
            write_str(&mut out, PROTOCOL);
            out.push(',');
            write_u64_field(&mut out, "max_vehicles", cfg.max_vehicles);
            out.push(',');
            write_u64_field(&mut out, "max_candidates", cfg.max_candidates);
            out.push(',');
            write_bool_field(&mut out, "require_connected", cfg.require_connected);
        }
        ToWorker::Grant {
            start,
            end,
            lease_ms,
        } => {
            write_key(&mut out, "type");
            write_str(&mut out, "lease-grant");
            out.push(',');
            write_key(&mut out, "grant");
            write_str(&mut out, "shard");
            out.push(',');
            write_u64_field(&mut out, "start", *start);
            out.push(',');
            write_u64_field(&mut out, "end", *end);
            out.push(',');
            write_u64_field(&mut out, "lease_ms", *lease_ms);
        }
        ToWorker::Retry { retry_ms } => {
            write_key(&mut out, "type");
            write_str(&mut out, "lease-grant");
            out.push(',');
            write_key(&mut out, "grant");
            write_str(&mut out, "retry");
            out.push(',');
            write_u64_field(&mut out, "retry_ms", *retry_ms);
        }
        ToWorker::Done => {
            write_key(&mut out, "type");
            write_str(&mut out, "lease-grant");
            out.push(',');
            write_key(&mut out, "grant");
            write_str(&mut out, "done");
        }
        ToWorker::ShardDone { start, end } => {
            write_key(&mut out, "type");
            write_str(&mut out, "shard-done");
            out.push(',');
            write_u64_field(&mut out, "start", *start);
            out.push(',');
            write_u64_field(&mut out, "end", *end);
        }
        ToWorker::Error { message } => {
            write_key(&mut out, "type");
            write_str(&mut out, "error");
            out.push(',');
            write_key(&mut out, "message");
            write_str(&mut out, message);
        }
    }
    out.push('}');
    out
}

fn proto_err(what: &str) -> DistError {
    DistError::Proto(what.to_owned())
}

fn field_u64(v: &Value, key: &str, frame: &str) -> Result<u64, DistError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| proto_err(&format!("`{frame}` frame lacks a numeric `{key}`")))
}

fn field_bool(v: &Value, key: &str, frame: &str) -> Result<bool, DistError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(proto_err(&format!(
            "`{frame}` frame lacks a boolean `{key}`"
        ))),
    }
}

fn frame_type(v: &Value) -> Result<&str, DistError> {
    v.get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| proto_err("frame lacks a string `type`"))
}

fn check_protocol(v: &Value) -> Result<(), DistError> {
    let got = v
        .get("protocol")
        .and_then(Value::as_str)
        .ok_or_else(|| proto_err("`hello` frame lacks a string `protocol`"))?;
    if got != PROTOCOL {
        return Err(proto_err(&format!(
            "protocol skew: peer speaks `{got}`, this build speaks `{PROTOCOL}`"
        )));
    }
    Ok(())
}

fn parse_counters(v: &Value) -> Result<CheckpointCounters, DistError> {
    let obj = v
        .get("counters")
        .ok_or_else(|| proto_err("`shard-result` frame lacks a `counters` object"))?;
    let num = |key: &str| field_u64(obj, key, "counters");
    let as_usize = |v: u64, key: &str| {
        usize::try_from(v).map_err(|_| proto_err(&format!("counter `{key}` overflows usize")))
    };
    Ok(CheckpointCounters {
        multiplicity_vectors: as_usize(num("multiplicity_vectors")?, "multiplicity_vectors")?,
        subsets_total: as_usize(num("subsets_total")?, "subsets_total")?,
        orbits_skipped: as_usize(num("orbits_skipped")?, "orbits_skipped")?,
        candidates: as_usize(num("candidates")?, "candidates")?,
        candidates_built: as_usize(num("candidates_built")?, "candidates_built")?,
        disconnected_skipped: as_usize(num("disconnected_skipped")?, "disconnected_skipped")?,
        certificate_hits: as_usize(num("certificate_hits")?, "certificate_hits")?,
        exact_iso_fallbacks: as_usize(num("exact_iso_fallbacks")?, "exact_iso_fallbacks")?,
        truncated: field_bool(obj, "truncated", "counters")?,
        vectors_completed: as_usize(num("vectors_completed")?, "vectors_completed")?,
        failures: as_usize(num("failures")?, "failures")?,
        retries: num("retries")?,
    })
}

fn parse_accepted(v: &Value) -> Result<Vec<(u64, u64)>, DistError> {
    let arr = v
        .get("accepted")
        .and_then(Value::as_arr)
        .ok_or_else(|| proto_err("`shard-result` frame lacks an `accepted` array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| proto_err("`accepted` entries must be `[ordinal, mask]` pairs"))?;
        let ordinal = pair[0]
            .as_u64()
            .ok_or_else(|| proto_err("`accepted` ordinal must be a non-negative integer"))?;
        let mask = pair[1]
            .as_u64()
            .ok_or_else(|| proto_err("`accepted` mask must be a non-negative integer"))?;
        out.push((ordinal, mask));
    }
    Ok(out)
}

/// Decodes a worker → coordinator frame.
///
/// # Errors
///
/// [`DistError::Proto`] on malformed JSON, unknown frame types,
/// missing fields, or protocol skew in `hello`.
pub fn decode_to_coordinator(payload: &str) -> Result<ToCoordinator, DistError> {
    let v = json::parse(payload).map_err(|e| proto_err(&e.to_string()))?;
    match frame_type(&v)? {
        "hello" => {
            check_protocol(&v)?;
            Ok(ToCoordinator::Hello)
        }
        "lease" => Ok(ToCoordinator::Lease),
        "shard-result" => Ok(ToCoordinator::ShardResult {
            start: field_u64(&v, "start", "shard-result")?,
            end: field_u64(&v, "end", "shard-result")?,
            accepted: parse_accepted(&v)?,
            counters: parse_counters(&v)?,
        }),
        "bye" => Ok(ToCoordinator::Bye),
        other => Err(proto_err(&format!("unknown worker frame type `{other}`"))),
    }
}

/// Decodes a coordinator → worker frame.
///
/// # Errors
///
/// [`DistError::Proto`] on malformed JSON, unknown frame types or
/// grant kinds, missing fields, or protocol skew in `hello`.
pub fn decode_to_worker(payload: &str) -> Result<ToWorker, DistError> {
    let v = json::parse(payload).map_err(|e| proto_err(&e.to_string()))?;
    match frame_type(&v)? {
        "hello" => {
            check_protocol(&v)?;
            Ok(ToWorker::Hello(HelloConfig {
                max_vehicles: field_u64(&v, "max_vehicles", "hello")?,
                max_candidates: field_u64(&v, "max_candidates", "hello")?,
                require_connected: field_bool(&v, "require_connected", "hello")?,
            }))
        }
        "lease-grant" => {
            let grant = v
                .get("grant")
                .and_then(Value::as_str)
                .ok_or_else(|| proto_err("`lease-grant` frame lacks a string `grant`"))?;
            match grant {
                "shard" => Ok(ToWorker::Grant {
                    start: field_u64(&v, "start", "lease-grant")?,
                    end: field_u64(&v, "end", "lease-grant")?,
                    lease_ms: field_u64(&v, "lease_ms", "lease-grant")?,
                }),
                "retry" => Ok(ToWorker::Retry {
                    retry_ms: field_u64(&v, "retry_ms", "lease-grant")?,
                }),
                "done" => Ok(ToWorker::Done),
                other => Err(proto_err(&format!("unknown grant kind `{other}`"))),
            }
        }
        "shard-done" => Ok(ToWorker::ShardDone {
            start: field_u64(&v, "start", "shard-done")?,
            end: field_u64(&v, "end", "shard-done")?,
        }),
        "error" => Ok(ToWorker::Error {
            message: v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        }),
        other => Err(proto_err(&format!(
            "unknown coordinator frame type `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> CheckpointCounters {
        CheckpointCounters {
            multiplicity_vectors: 3,
            subsets_total: 24,
            orbits_skipped: 10,
            candidates: 14,
            candidates_built: 13,
            disconnected_skipped: 1,
            certificate_hits: 5,
            exact_iso_fallbacks: 2,
            truncated: false,
            vectors_completed: 3,
            failures: 0,
            retries: 1,
        }
    }

    #[test]
    fn worker_frames_round_trip() {
        let frames = [
            ToCoordinator::Hello,
            ToCoordinator::Lease,
            ToCoordinator::ShardResult {
                start: 4,
                end: 9,
                accepted: vec![(4, 0), (5, 3), (8, 17)],
                counters: counters(),
            },
            ToCoordinator::Bye,
        ];
        for frame in frames {
            let payload = encode_to_coordinator(&frame);
            assert_eq!(decode_to_coordinator(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn coordinator_frames_round_trip() {
        let frames = [
            ToWorker::Hello(HelloConfig {
                max_vehicles: 4,
                max_candidates: 100_000,
                require_connected: true,
            }),
            ToWorker::Grant {
                start: 0,
                end: 7,
                lease_ms: 2000,
            },
            ToWorker::Retry { retry_ms: 250 },
            ToWorker::Done,
            ToWorker::ShardDone { start: 0, end: 7 },
            ToWorker::Error {
                message: "protocol skew".to_owned(),
            },
        ];
        for frame in frames {
            let payload = encode_to_worker(&frame);
            assert_eq!(decode_to_worker(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn golden_encodings_are_stable() {
        // The store-and-forward layer relies on byte-deterministic
        // encoding; pin the exact bytes of representative frames.
        assert_eq!(
            encode_to_coordinator(&ToCoordinator::Hello),
            r#"{"type":"hello","protocol":"fsa-dist/v1"}"#
        );
        assert_eq!(
            encode_to_worker(&ToWorker::Grant {
                start: 2,
                end: 5,
                lease_ms: 100
            }),
            r#"{"type":"lease-grant","grant":"shard","start":2,"end":5,"lease_ms":100}"#
        );
        let result = encode_to_coordinator(&ToCoordinator::ShardResult {
            start: 1,
            end: 2,
            accepted: vec![(1, 3)],
            counters: counters(),
        });
        assert!(result.starts_with(r#"{"type":"shard-result","start":1,"end":2,"accepted":[[1,3]],"counters":{"multiplicity_vectors":3,"#));
        assert!(result.contains(r#""truncated":false"#));
        assert!(result.ends_with(r#""retries":1}}"#));
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for payload in [
            "not json",
            r#"{"no_type":1}"#,
            r#"{"type":"warp"}"#,
            r#"{"type":"hello"}"#,
            r#"{"type":"hello","protocol":"fsa-dist/v2"}"#,
            r#"{"type":"shard-result","start":1}"#,
            r#"{"type":"shard-result","start":1,"end":2,"accepted":[[1]],"counters":{}}"#,
            r#"{"type":"shard-result","start":1,"end":2,"accepted":[[1,-3]],"counters":{}}"#,
        ] {
            assert!(
                matches!(decode_to_coordinator(payload), Err(DistError::Proto(_))),
                "accepted: {payload}"
            );
        }
        for payload in [
            r#"{"type":"hello","protocol":"fsa-dist/v1"}"#, // missing config
            r#"{"type":"lease-grant"}"#,
            r#"{"type":"lease-grant","grant":"maybe"}"#,
            r#"{"type":"lease-grant","grant":"shard","start":0}"#,
            r#"{"type":"shard-done","start":0}"#,
        ] {
            assert!(
                matches!(decode_to_worker(payload), Err(DistError::Proto(_))),
                "accepted: {payload}"
            );
        }
    }
}
