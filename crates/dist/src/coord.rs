//! The coordinator: shard leasing, result collection, canonical merge.
//!
//! A [`Coordinator`] owns a TCP listener and the shard ledger of one
//! universe. Workers connect, handshake (`hello`), and then loop
//! requesting *leases*: time-bounded exclusive claims on one
//! contiguous [`ShardRange`] of the global multiplicity-vector
//! ordinal space. A worker that goes silent past its lease deadline
//! (killed, wedged, partitioned) simply stops renewing; the sweep at
//! the next lease request expires the claim and the shard is
//! re-issued to whoever asks next. Completed shards are durably
//! recorded through [`CoordState`] (store-and-forward: the accepted
//! log travels worker → coordinator memory → checksummed state file
//! before the shard is acknowledged), so a coordinator restarted
//! mid-universe re-leases only the unfinished ranges.
//!
//! Once every shard is done the accepted `(ordinal, mask)` logs are
//! concatenated in shard order — which is ascending global ordinal
//! order by construction — and replayed through
//! [`fsa_core::explore::merge_accepted`], reproducing the
//! single-process result bit-identically.

use crate::error::DistError;
use crate::proto::{
    decode_to_coordinator, encode_to_worker, HelloConfig, ToCoordinator, ToWorker, MAX_FRAME,
};
use crate::state::{CoordState, ShardRecord};
use fsa_core::checkpoint::{config_fingerprint, CheckpointCounters};
use fsa_core::explore::{
    merge_accepted, vector_space, Exploration, ExploreOptions, ExploreStats, ShardRange,
};
use fsa_core::FsaError;
use fsa_obs::Obs;
use fsa_serve::wire;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a coordinator run.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Universe size: one RSU plus up to this many vehicles.
    pub max_vehicles: usize,
    /// How many contiguous shards to partition the vector space into.
    pub shards: usize,
    /// Lease validity in milliseconds; a worker must complete or renew
    /// within this window or its shard is re-issued.
    pub lease_ms: u64,
    /// Global candidate budget, re-checked across all shards at merge.
    pub max_candidates: usize,
    /// Whether disconnected candidates are skipped.
    pub require_connected: bool,
    /// Optional store-and-forward state file. When set, completed
    /// shards are persisted there and an existing compatible file is
    /// resumed from.
    pub state_path: Option<PathBuf>,
    /// Accept-side connection cap: a worker connecting beyond it is
    /// answered with a `retry` frame and closed instead of getting a
    /// handler thread, so a reconnect stampede degrades into paced
    /// retries rather than unbounded threads.
    pub max_conns: usize,
    /// Observability handle for the `dist.*` counters and spans.
    pub obs: Obs,
}

impl Default for CoordConfig {
    fn default() -> Self {
        let explore = ExploreOptions::default();
        CoordConfig {
            max_vehicles: 3,
            shards: 8,
            lease_ms: 2000,
            max_candidates: explore.max_candidates,
            require_connected: explore.require_connected,
            state_path: None,
            max_conns: 256,
            obs: Obs::disabled(),
        }
    }
}

/// An outstanding lease on one shard.
struct Lease {
    conn: u64,
    deadline: Instant,
}

/// Shared coordinator ledger: the durable state plus in-memory lease
/// bookkeeping (leases are deliberately *not* persisted — after a
/// restart every unfinished shard is simply pending again).
struct Inner {
    state: CoordState,
    leases: Vec<Option<Lease>>,
    ever_leased: Vec<bool>,
    remaining: usize,
}

struct Shared {
    inner: Mutex<Inner>,
    shutdown: AtomicBool,
    obs: Obs,
    lease_ms: u64,
    state_path: Option<PathBuf>,
    hello: HelloConfig,
}

impl Shared {
    /// Expires overdue leases. Called under the lock.
    fn sweep(&self, inner: &mut Inner, now: Instant) {
        for slot in &mut inner.leases {
            if let Some(lease) = slot {
                if lease.deadline <= now {
                    *slot = None;
                    self.obs.counter_add("dist.leases_expired", 1);
                }
            }
        }
    }

    fn grant(&self, conn: u64) -> ToWorker {
        let now = Instant::now();
        let deadline = now + Duration::from_millis(self.lease_ms);
        let mut inner = self.inner.lock().expect("coordinator ledger poisoned");
        self.sweep(&mut inner, now);
        // Renewal: a worker that already holds a lease (it is mid-shard
        // and checking in, or was deadline-cancelled and wants to
        // resume from its checkpoint) gets the same shard back.
        for (i, slot) in inner.leases.iter_mut().enumerate() {
            if let Some(lease) = slot {
                if lease.conn == conn {
                    lease.deadline = deadline;
                    let range = inner.state.shards[i].range;
                    return ToWorker::Grant {
                        start: range.start,
                        end: range.end,
                        lease_ms: self.lease_ms,
                    };
                }
            }
        }
        if inner.remaining == 0 {
            return ToWorker::Done;
        }
        let open = (0..inner.state.shards.len())
            .find(|&i| inner.state.shards[i].done.is_none() && inner.leases[i].is_none());
        match open {
            Some(i) => {
                inner.leases[i] = Some(Lease { conn, deadline });
                self.obs.counter_add("dist.leases_granted", 1);
                if inner.ever_leased[i] {
                    self.obs.counter_add("dist.leases_reissued", 1);
                }
                inner.ever_leased[i] = true;
                let range = inner.state.shards[i].range;
                ToWorker::Grant {
                    start: range.start,
                    end: range.end,
                    lease_ms: self.lease_ms,
                }
            }
            // Everything unfinished is leased out: back off and retry.
            None => ToWorker::Retry {
                retry_ms: self.lease_ms.clamp(10, 500),
            },
        }
    }

    fn record_result(
        &self,
        conn: u64,
        start: u64,
        end: u64,
        accepted: Vec<(u64, u64)>,
        counters: CheckpointCounters,
    ) -> Result<ToWorker, DistError> {
        let mut inner = self.inner.lock().expect("coordinator ledger poisoned");
        let Some(i) = inner
            .state
            .shards
            .iter()
            .position(|s| s.range.start == start && s.range.end == end)
        else {
            return Ok(ToWorker::Error {
                message: format!("no shard has range [{start}, {end})"),
            });
        };
        if inner.state.shards[i].done.is_some() {
            // A re-issued shard finished twice (the original worker was
            // slow, not dead). The first result won; acknowledge so the
            // late worker drops its checkpoint and moves on.
            return Ok(ToWorker::ShardDone { start, end });
        }
        if let Some(bad) = accepted.iter().find(|(o, _)| *o < start || *o >= end) {
            return Ok(ToWorker::Error {
                message: format!(
                    "accepted ordinal {} lies outside the shard range [{start}, {end})",
                    bad.0
                ),
            });
        }
        inner.state.shards[i].done = Some((accepted, counters));
        inner.leases[i] = None;
        inner.remaining -= 1;
        // Store-and-forward: the result must be durable before the
        // acknowledgement that lets the worker delete its checkpoint.
        // `save` goes through `Snapshot::write_atomic`, which fsyncs
        // the temp file *and* its directory before this call returns,
        // so the `shard-done` ack below is never observable while the
        // state that justifies it sits only in the page cache.
        if let Some(path) = &self.state_path {
            inner.state.save(path)?;
        }
        self.obs.counter_add("dist.shards_completed", 1);
        let _ = conn;
        Ok(ToWorker::ShardDone { start, end })
    }

    /// Releases every lease held by a disconnected worker.
    fn release_conn(&self, conn: u64) {
        let mut inner = self.inner.lock().expect("coordinator ledger poisoned");
        for slot in &mut inner.leases {
            if slot.as_ref().is_some_and(|l| l.conn == conn) {
                *slot = None;
                self.obs.counter_add("dist.leases_expired", 1);
            }
        }
    }

    fn remaining(&self) -> usize {
        self.inner
            .lock()
            .expect("coordinator ledger poisoned")
            .remaining
    }
}

/// Answers an over-cap connection with a `retry` frame — under a
/// write timeout and deadline, so a peer that connects and then never
/// reads cannot block the accept loop — and closes it.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let frame = encode_to_worker(&ToWorker::Retry { retry_ms: 100 });
    let _ = wire::write_frame_deadline(&mut stream, &frame, Some(Duration::from_millis(200)));
}

fn handle_conn(stream: TcpStream, conn: u64, shared: &Shared) -> Result<(), DistError> {
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    // The write timeout plus the per-frame write deadline below bound
    // how long a worker that stops draining its socket can pin this
    // handler thread (its lease simply expires and is re-issued).
    stream.set_write_timeout(Some(Duration::from_millis(25)))?;
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let stop = || shared.shutdown.load(Ordering::Relaxed);
    let mut reply = |frame: &ToWorker| -> Result<(), DistError> {
        wire::write_frame_deadline(
            &mut writer,
            &encode_to_worker(frame),
            Some(Duration::from_millis(2_000)),
        )
        .map_err(DistError::from)
    };
    let Some(first) = wire::read_frame_with_stop(&mut reader, MAX_FRAME, &stop)? else {
        return Ok(());
    };
    match decode_to_coordinator(&first)? {
        ToCoordinator::Hello => {}
        other => {
            reply(&ToWorker::Error {
                message: format!("expected `hello` first, got {other:?}"),
            })?;
            return Err(DistError::Proto("handshake out of order".to_owned()));
        }
    }
    reply(&ToWorker::Hello(shared.hello))?;
    while let Some(payload) = wire::read_frame_with_stop(&mut reader, MAX_FRAME, &stop)? {
        match decode_to_coordinator(&payload)? {
            ToCoordinator::Lease => reply(&shared.grant(conn))?,
            ToCoordinator::ShardResult {
                start,
                end,
                accepted,
                counters,
            } => {
                let ack = shared.record_result(conn, start, end, accepted, counters)?;
                let fatal = matches!(ack, ToWorker::Error { .. });
                reply(&ack)?;
                if fatal {
                    return Err(DistError::Proto("rejected shard result".to_owned()));
                }
            }
            ToCoordinator::Bye => return Ok(()),
            // Idempotent re-handshake (mirrors the serve layer): a
            // transport that replays or duplicates frames must not be
            // able to turn a healthy session into a protocol error.
            ToCoordinator::Hello => reply(&ToWorker::Hello(shared.hello))?,
        }
    }
    Ok(())
}

/// A bound, not-yet-running coordinator.
pub struct Coordinator {
    listener: TcpListener,
    config: CoordConfig,
}

impl Coordinator {
    /// Binds the coordinator's listener (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, config: CoordConfig) -> Result<Coordinator, DistError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DistError::Io(format!("bind {addr}: {e}")))?;
        Ok(Coordinator { listener, config })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the socket address cannot be read.
    pub fn addr(&self) -> Result<SocketAddr, DistError> {
        self.listener.local_addr().map_err(DistError::from)
    }

    /// Serves workers until the universe is fully explored, then
    /// merges all shard results into the canonical exploration.
    ///
    /// # Errors
    ///
    /// [`DistError::State`] for an incompatible or corrupt state
    /// file, [`DistError::Io`] for transport failures, and
    /// [`DistError::Fsa`] when the merge or the global candidate
    /// budget fails.
    pub fn run(self) -> Result<Exploration, DistError> {
        let CoordConfig {
            max_vehicles,
            shards,
            lease_ms,
            max_candidates,
            require_connected,
            state_path,
            max_conns,
            obs,
        } = self.config;
        let (models, rules) = vanet::exploration::scenario_universe(max_vehicles);
        let options = ExploreOptions {
            require_connected,
            max_candidates,
            ..ExploreOptions::default()
        };
        let fingerprint = config_fingerprint(&models, &rules, &options);
        let total = vector_space(&models);
        let ranges = ShardRange::partition(total, shards.max(1));
        let base = CoordState {
            fingerprint,
            max_vehicles: max_vehicles as u64,
            max_candidates: max_candidates as u64,
            require_connected,
            shards: ranges
                .iter()
                .map(|&range| ShardRecord { range, done: None })
                .collect(),
        };
        let state = match &state_path {
            Some(path) if path.exists() => {
                let loaded = CoordState::load(path)?;
                loaded.check_compatible(&base)?;
                obs.counter_add("dist.shards_resumed", loaded.completed() as u64);
                loaded
            }
            Some(path) => {
                base.save(path)?;
                base
            }
            None => base,
        };
        let resumed = state.completed();
        let shard_count = state.shards.len();
        let remaining = shard_count - resumed;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                state,
                leases: (0..shard_count).map(|_| None).collect(),
                ever_leased: vec![false; shard_count],
                remaining,
            }),
            shutdown: AtomicBool::new(false),
            obs: obs.clone(),
            lease_ms: lease_ms.max(1),
            state_path,
            hello: HelloConfig {
                max_vehicles: max_vehicles as u64,
                max_candidates: max_candidates as u64,
                require_connected,
            },
        });
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        let mut conn_id = 0u64;
        let active = Arc::new(AtomicUsize::new(0));
        while shared.remaining() > 0 {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if active.load(Ordering::Relaxed) >= max_conns.max(1) {
                        // Over the cap: a paced `retry` instead of a
                        // handler thread. The worker treats it like
                        // lease contention and comes back jittered.
                        obs.counter_add("dist.conn_rejected", 1);
                        reject_busy(stream);
                        continue;
                    }
                    conn_id += 1;
                    let conn = conn_id;
                    let shared = Arc::clone(&shared);
                    active.fetch_add(1, Ordering::Relaxed);
                    let conn_active = Arc::clone(&active);
                    handles.push(std::thread::spawn(move || {
                        let outcome = handle_conn(stream, conn, &shared);
                        shared.release_conn(conn);
                        if outcome.is_err() {
                            shared.obs.counter_add("dist.conn_errors", 1);
                        }
                        conn_active.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(DistError::Io(format!("accept: {e}"))),
            }
        }
        // Drain: connected workers get `done` grants on their next
        // lease request and say `bye`; give them one lease interval
        // of grace so they exit on a clean frame instead of a cut
        // connection (which would send them into reconnect purgatory
        // against a closed listener). The stop flag then bounds how
        // long a genuinely silent connection can hold its handler.
        let grace = Instant::now() + Duration::from_millis(shared.lease_ms + 500);
        while active.load(Ordering::Relaxed) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(5));
        }
        shared.shutdown.store(true, Ordering::Relaxed);
        for handle in handles {
            let _ = handle.join();
        }
        let inner = shared.inner.lock().expect("coordinator ledger poisoned");
        merge_state(
            &models,
            &rules,
            &inner.state,
            max_candidates,
            resumed > 0,
            &obs,
        )
    }
}

/// Merges a fully completed [`CoordState`] into the canonical
/// [`Exploration`], bit-identical to the single-process run.
fn merge_state(
    models: &[(fsa_core::component_model::ComponentModel, usize)],
    rules: &[fsa_core::explore::ConnectionRule],
    state: &CoordState,
    max_candidates: usize,
    resumed: bool,
    obs: &Obs,
) -> Result<Exploration, DistError> {
    let span = obs.span("dist.merge");
    let merge_start = Instant::now();
    let mut all_accepted = Vec::new();
    let mut sum = CheckpointCounters::default();
    for shard in &state.shards {
        let Some((accepted, c)) = &shard.done else {
            return Err(DistError::State(format!(
                "cannot merge: shard {} is not done",
                shard.range
            )));
        };
        all_accepted.extend_from_slice(accepted);
        sum.multiplicity_vectors += c.multiplicity_vectors;
        sum.subsets_total += c.subsets_total;
        sum.orbits_skipped += c.orbits_skipped;
        sum.candidates += c.candidates;
        sum.candidates_built += c.candidates_built;
        sum.disconnected_skipped += c.disconnected_skipped;
        sum.certificate_hits += c.certificate_hits;
        sum.exact_iso_fallbacks += c.exact_iso_fallbacks;
        sum.vectors_completed += c.vectors_completed;
        sum.failures += c.failures;
        sum.retries += c.retries;
    }
    if sum.candidates > max_candidates {
        return Err(DistError::Fsa(FsaError::BudgetExceeded {
            limit: max_candidates,
        }));
    }
    let merged = merge_accepted(models, rules, &all_accepted)?;
    let elapsed = merge_start.elapsed();
    span.finish();
    obs.counter_add("dist.merge_micros", elapsed.as_micros() as u64);
    let stats = ExploreStats {
        multiplicity_vectors: sum.multiplicity_vectors,
        subsets_total: sum.subsets_total,
        orbits_skipped: sum.orbits_skipped,
        candidates: sum.candidates,
        disconnected_skipped: sum.disconnected_skipped,
        // Cross-shard duplicates surface at merge time; the identity
        // `Σ shard hits + merge duplicates = single-process hits`
        // holds exactly (property-tested in tests/dist_props.rs).
        certificate_hits: sum.certificate_hits + merged.duplicates,
        // Merge-time bucket collisions that needed an exact check are
        // not attributable to a shard; this stays the shard sum.
        exact_iso_fallbacks: sum.exact_iso_fallbacks,
        // Workers never carry a certificate cache (the CLI rejects the
        // combination), so the merged view reports none.
        cert_cache_entries: 0,
        cert_cache_skips: 0,
        classes: merged.instances.len(),
        truncated: false,
        threads: 1,
        vectors_total: usize::try_from(vector_space(models)).unwrap_or(usize::MAX),
        vectors_completed: sum.vectors_completed,
        candidates_built: sum.candidates_built,
        failures: sum.failures,
        retries: sum.retries,
        cancelled: false,
        checkpoints_written: 0,
        resumed,
        scan_time: Duration::ZERO,
        build_time: Duration::ZERO,
        dedup_time: elapsed,
    };
    stats.mirror_counters(obs);
    Ok(Exploration {
        instances: merged.instances,
        stats,
        accepted: merged.accepted,
    })
}
