//! Distributed, resumable instance-space exploration.
//!
//! Scales `fsa explore` across worker processes: a coordinator
//! partitions the multiplicity-vector ordinal space into contiguous
//! [`ShardRange`]s and hands out time-bounded shard *leases* over the
//! `fsa-wire/v1` transport; each worker runs the supervised explore
//! engine over its range with its own crash-safe checkpoint file, and
//! the coordinator merges the per-shard accepted logs in canonical
//! `(ordinal, mask)` order — reproducing the single-process result
//! bit-identically (property-tested in `tests/dist_props.rs`).
//!
//! Crash tolerance is layered:
//!
//! - a **worker** that dies mid-shard stops renewing its lease; the
//!   shard is re-issued, and the successor resumes from the dead
//!   worker's checkpoint file (store-and-forward on the worker side);
//! - a **coordinator** that dies mid-universe resumes from its own
//!   checksummed state file, in which every completed shard's result
//!   was persisted *before* the worker was allowed to discard it
//!   (store-and-forward on the coordinator side);
//! - a **slow** worker whose lease expired races its replacement
//!   safely: the first result for a shard wins, the duplicate is
//!   acknowledged idempotently.
//!
//! Module map: [`proto`] (frame vocabulary), [`coord`] (lease ledger +
//! merge), [`worker`] (lease → explore → report loop), [`state`]
//! (durable coordinator state), [`local`] (single-machine driver
//! behind `fsa explore --distributed`), [`cli`] (`fsa coordinate` /
//! `fsa work`).
//!
//! [`ShardRange`]: fsa_core::explore::ShardRange

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cli;
pub mod coord;
pub mod error;
pub mod local;
pub mod proto;
pub mod state;
pub mod worker;

pub use backoff::{Backoff, BackoffKind};
pub use coord::{CoordConfig, Coordinator};
pub use error::DistError;
pub use local::{explore_distributed, LocalConfig, WorkerMode};
pub use worker::{run_worker, WorkerConfig};
