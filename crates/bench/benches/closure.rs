//! Experiment S2 (ablation): DAG-aware transitive closure vs.
//! Floyd–Warshall, on layered functional models of growing size.

use bench::layered_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_graph::closure::{closure_dag, closure_warshall};
use std::hint::black_box;

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    for (layers, width) in [(4, 4), (8, 8), (16, 16)] {
        let inst = layered_instance(layers, width);
        let g = inst.graph();
        let nodes = g.node_count();
        group.bench_with_input(BenchmarkId::new("dag", nodes), &nodes, |b, _| {
            b.iter(|| black_box(closure_dag(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("warshall", nodes), &nodes, |b, _| {
            b.iter(|| black_box(closure_warshall(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
