//! Experiment S5: instance-space enumeration (§4.2) — cost of
//! generating, de-duplicating and analysing all structurally different
//! compositions of the scenario's component models.
//!
//! The dedup benches compare the quadratic pairwise baseline against the
//! streaming certificate engine on the same candidate stream (each
//! isomorphism class of the universe, duplicated `DUP` times — the
//! pre-dedup candidate flood the enumerator would otherwise feed it).
//! `pairwise_dedup` is only run at 2 and 3 vehicles: at 4 vehicles the
//! stream holds 4 × 3015 ≈ 12 000 graphs and the O(n · classes) exact
//! isomorphism scan needs tens of millions of backtracking checks —
//! infeasible per iteration, which is exactly why the certificate
//! engine exists. The certificate paths handle the same 4-vehicle
//! stream in a single hash pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::explore::{union_requirements_loop_free, ExploreOptions};
use fsa_graph::iso::{
    dedup_isomorphic, dedup_isomorphic_certified, dedup_isomorphic_certified_parallel,
};
use fsa_graph::DiGraph;
use std::hint::black_box;
use vanet::exploration::{enumerate_scenario_instances, explore_scenario};

/// Duplication factor of the candidate stream fed to the dedup benches.
const DUP: usize = 4;

/// The shape graphs of the `max_vehicles` universe, duplicated `DUP`
/// times — a candidate stream whose class count is known.
fn candidate_stream(max_vehicles: usize) -> Vec<DiGraph<String>> {
    let instances =
        enumerate_scenario_instances(max_vehicles, &ExploreOptions::default()).expect("bounded");
    let shapes: Vec<DiGraph<String>> = instances.iter().map(|i| i.shape_graph()).collect();
    let mut stream = Vec::with_capacity(shapes.len() * DUP);
    for _ in 0..DUP {
        stream.extend(shapes.iter().cloned());
    }
    stream
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(10);

    // End-to-end enumeration with the streaming certificate engine.
    for max_vehicles in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("enumerate", max_vehicles),
            &max_vehicles,
            |b, &mv| {
                b.iter(|| {
                    black_box(
                        enumerate_scenario_instances(mv, &ExploreOptions::default())
                            .expect("bounded"),
                    )
                })
            },
        );
    }
    // The tentpole scale target: 16 candidate flows → 65 536 subsets for
    // the full (1 RSU, 4 V) multiplicity vector, enumerated with orbit
    // pruning and 4 worker threads.
    group.bench_function("enumerate_threads4/4", |b| {
        b.iter(|| {
            black_box(
                explore_scenario(
                    4,
                    &ExploreOptions {
                        threads: 4,
                        ..Default::default()
                    },
                )
                .expect("bounded"),
            )
        })
    });

    // Dedup head-to-head on identical candidate streams.
    for max_vehicles in [2usize, 3] {
        let stream = candidate_stream(max_vehicles);
        group.bench_with_input(
            BenchmarkId::new("pairwise_dedup", max_vehicles),
            &stream,
            |b, s| b.iter(|| black_box(dedup_isomorphic(s.clone()))),
        );
    }
    for max_vehicles in [2usize, 3, 4] {
        let stream = candidate_stream(max_vehicles);
        group.bench_with_input(
            BenchmarkId::new("certificate_dedup", max_vehicles),
            &stream,
            |b, s| b.iter(|| black_box(dedup_isomorphic_certified(s.clone()))),
        );
        group.bench_with_input(
            BenchmarkId::new("certificate_dedup_parallel", max_vehicles),
            &stream,
            |b, s| b.iter(|| black_box(dedup_isomorphic_certified_parallel(s.clone(), 4))),
        );
    }

    let instances = enumerate_scenario_instances(2, &ExploreOptions::default()).expect("bounded");
    group.bench_function("union_requirements_2v", |b| {
        b.iter(|| black_box(union_requirements_loop_free(black_box(&instances)).expect("unions")))
    });

    // Cold vs warm cross-run certificate cache: the warm run trusts
    // the previous census and skips every exact-isomorphism fallback.
    // 4 vehicles is the smallest scenario universe where fallbacks
    // exist at all (nine 2-class certificate-collision buckets).
    let mut cache = std::env::temp_dir();
    cache.push(format!("fsa-bench-certcache-{}", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let cached = ExploreOptions {
        threads: 1,
        cert_cache: Some(cache.clone()),
        ..Default::default()
    };
    let warmup = explore_scenario(4, &cached).expect("census run");
    assert!(warmup.stats.certificate_hits > 0);
    assert!(warmup.stats.exact_iso_fallbacks > 0);
    group.bench_function("enumerate_warm_cache/4", |b| {
        b.iter(|| {
            let e = explore_scenario(4, &cached).expect("warm run");
            assert_eq!(e.stats.exact_iso_fallbacks, 0);
            black_box(e)
        })
    });
    let _ = std::fs::remove_file(&cache);
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
