//! Experiment S5: instance-space enumeration (§4.2) — cost of
//! generating, de-duplicating and analysing all structurally different
//! compositions of the scenario's component models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::explore::{union_requirements_loop_free, ExploreOptions};
use std::hint::black_box;
use vanet::exploration::enumerate_scenario_instances;

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(10);
    for max_vehicles in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("enumerate", max_vehicles),
            &max_vehicles,
            |b, &mv| {
                b.iter(|| {
                    black_box(
                        enumerate_scenario_instances(mv, &ExploreOptions::default())
                            .expect("bounded"),
                    )
                })
            },
        );
    }
    let instances = enumerate_scenario_instances(2, &ExploreOptions::default()).expect("bounded");
    group.bench_function("union_requirements_2v", |b| {
        b.iter(|| black_box(union_requirements_loop_free(black_box(&instances))))
    });
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
