//! Pricing the resident analysis service (PR 6).
//!
//! The point of `fsa serve` is that a session pays speclang parsing and
//! model construction once, at open, and every later query runs against
//! the resident state. These groups price exactly that claim:
//!
//! * `serve_spec`  — one-shot `elicit` dispatch (read + parse + run
//!   every time) against the same query on a preloaded
//!   [`LoadedModel`]; the gap is the per-request cost serving removes.
//! * `serve_scenario` — one-shot `monitor` dispatch against the session
//!   path, where the scenario APA and the §5 elicitation are memoised.
//! * `serve_wire`  — encode/decode round-trip of a response frame plus
//!   length-prefixed framing, the per-request protocol tax.

use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::service::{LoadedModel, ServiceCtx};
use fsa_serve::engines::ScenarioModel;
use fsa_serve::proto::ServerFrame;
use fsa_serve::{cli, wire};
use std::hint::black_box;

const SPEC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3.fsa");

fn owned(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| (*s).to_owned()).collect()
}

fn bench_spec_requests(c: &mut Criterion) {
    let source = std::fs::read_to_string(SPEC_PATH).expect("read fig3 spec");
    let model = LoadedModel::new(
        SPEC_PATH.to_owned(),
        speclang::parse(&source).expect("fig3 parses"),
    );
    let ctx = ServiceCtx::one_shot();
    let one_shot = owned(&["elicit", SPEC_PATH, "--param", "--verify-dataflow"]);
    let resident = owned(&["--param", "--verify-dataflow"]);

    let mut group = c.benchmark_group("serve_spec");
    group.sample_size(30);
    group.bench_function("elicit_one_shot_dispatch", |b| {
        b.iter(|| black_box(cli::dispatch(black_box(&one_shot))))
    });
    group.bench_function("elicit_resident_model", |b| {
        b.iter(|| {
            black_box(cli::run_spec(
                "elicit",
                black_box(&resident),
                Some(&model),
                &ctx,
            ))
        })
    });
    group.finish();
}

fn bench_scenario_requests(c: &mut Criterion) {
    let ctx = ServiceCtx::one_shot();
    let one_shot = owned(&["monitor", "--streams", "2", "--events", "128"]);
    let resident = owned(&["--streams", "2", "--events", "128"]);
    let mut model = ScenarioModel::load("chain").expect("chain builds");
    // Memoise reachability + elicitation up front, as a warmed session
    // would after its first monitor request.
    model.split_elicited().expect("reachability");

    let mut group = c.benchmark_group("serve_scenario");
    group.sample_size(20);
    group.bench_function("monitor_one_shot_dispatch", |b| {
        b.iter(|| black_box(cli::dispatch(black_box(&one_shot))))
    });
    group.bench_function("monitor_resident_scenario", |b| {
        b.iter(|| {
            black_box(cli::run_monitor(
                black_box(&resident),
                Some(&mut model),
                &ctx,
            ))
        })
    });
    group.finish();
}

fn bench_wire_round_trip(c: &mut Criterion) {
    let frame = ServerFrame::Response {
        session: 1,
        id: 42,
        exit: 0,
        micros: 1375,
        cached: false,
        stdout: "requirement set (3):\n".repeat(16),
        stderr: String::new(),
    };
    let payload = frame.encode();
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &payload).expect("frame");

    let mut group = c.benchmark_group("serve_wire");
    group.bench_function("encode_response", |b| b.iter(|| black_box(frame.encode())));
    group.bench_function("decode_response", |b| {
        b.iter(|| black_box(ServerFrame::decode(black_box(&payload)).expect("decodes")))
    });
    group.bench_function("frame_round_trip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(framed.len());
            wire::write_frame(&mut buf, black_box(&payload)).expect("write");
            black_box(
                wire::read_frame(&mut std::io::Cursor::new(buf), wire::DEFAULT_MAX_FRAME)
                    .expect("read"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spec_requests,
    bench_scenario_requests,
    bench_wire_round_trip
);
criterion_main!(benches);
