//! Pricing distributed exploration (the `fsa_dist` coordinator/worker
//! stack) against the single-process supervised engine on the same
//! universes.
//!
//! * `distributed/single_process_v{3,4}` — the baseline: one
//!   supervised engine over the whole vector space.
//! * `distributed/workers_{1,2}_v{3,4}` — a real TCP coordinator on
//!   loopback plus in-process thread workers. `workers_1` prices the
//!   pure distribution overhead (leasing, framing, store-and-forward
//!   state writes, merge) with zero parallelism to pay for it;
//!   `workers_2` shows what two workers claw back on these small
//!   universes.
//! * `lease_protocol_tax` — the per-lease frame cost in isolation:
//!   encode/decode of one `lease` round-trip and one `shard-result`
//!   carrying a realistic accepted log.
//! * `retry_backoff` — lease contention under oversubscription: 16
//!   workers fighting over 4 shards, with the old fixed `retry_ms`
//!   sleep versus the seeded decorrelated jitter. Fixed wakes the
//!   whole losing fleet in lockstep half a second later; jitter
//!   re-probes within tens of milliseconds and desynchronises, so
//!   freed shards are picked up almost immediately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::checkpoint::CheckpointCounters;
use fsa_core::explore::{ExecOptions, ExploreOptions};
use fsa_dist::backoff::BackoffKind;
use fsa_dist::local::{explore_distributed, LocalConfig, WorkerMode};
use fsa_dist::proto::{
    decode_to_coordinator, decode_to_worker, encode_to_coordinator, encode_to_worker,
    ToCoordinator, ToWorker,
};
use std::hint::black_box;
use vanet::exploration::explore_scenario_supervised;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    for max_vehicles in [3usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("single_process", format!("v{max_vehicles}")),
            &max_vehicles,
            |b, &n| {
                b.iter(|| {
                    black_box(
                        explore_scenario_supervised(
                            n,
                            &ExploreOptions::default(),
                            &ExecOptions::default(),
                        )
                        .unwrap(),
                    )
                })
            },
        );
        for workers in [1usize, 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("workers_{workers}"), format!("v{max_vehicles}")),
                &max_vehicles,
                |b, &n| {
                    let config = LocalConfig {
                        max_vehicles: n,
                        workers,
                        ..LocalConfig::default()
                    };
                    b.iter(|| {
                        black_box(explore_distributed(&config, &WorkerMode::Threads).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_lease_tax(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_protocol_tax");
    let grant = ToWorker::Grant {
        start: 3,
        end: 7,
        lease_ms: 2000,
    };
    group.bench_function("lease_roundtrip", |b| {
        b.iter(|| {
            let req = encode_to_coordinator(black_box(&ToCoordinator::Lease));
            black_box(decode_to_coordinator(&req).unwrap());
            let rsp = encode_to_worker(black_box(&grant));
            black_box(decode_to_worker(&rsp).unwrap())
        })
    });
    // A realistic shard result: the densest 3-vehicle shard carries a
    // few hundred accepted pairs.
    let accepted: Vec<(u64, u64)> = (0..512u64).map(|i| (3 + i / 128, i * 37 % 4096)).collect();
    let result = ToCoordinator::ShardResult {
        start: 3,
        end: 8,
        accepted,
        counters: CheckpointCounters::default(),
    };
    group.bench_function("shard_result_roundtrip", |b| {
        b.iter(|| {
            let frame = encode_to_coordinator(black_box(&result));
            black_box(decode_to_coordinator(&frame).unwrap())
        })
    });
    group.finish();
}

fn bench_retry_backoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("retry_backoff");
    group.sample_size(10);
    // 16 workers over 4 shards: at any moment 12 workers hold no
    // lease and are pacing themselves on `retry` frames, so the retry
    // policy dominates how fast freed shards change hands.
    for kind in [BackoffKind::Fixed, BackoffKind::Decorrelated] {
        let name = match kind {
            BackoffKind::Fixed => "fixed_retry_ms",
            BackoffKind::Decorrelated => "decorrelated_jitter",
        };
        group.bench_function(name, |b| {
            let config = LocalConfig {
                max_vehicles: 2,
                workers: 16,
                shards: Some(4),
                backoff: kind,
                ..LocalConfig::default()
            };
            b.iter(|| black_box(explore_distributed(&config, &WorkerMode::Threads).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distributed,
    bench_lease_tax,
    bench_retry_backoff
);
criterion_main!(benches);
