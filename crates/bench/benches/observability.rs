//! Pricing the observability layer (PR 5).
//!
//! The acceptance bar is **< 2 % overhead** for a *disabled* [`Obs`]
//! handle — the default on every engine entry point — over the same
//! engine before the probes existed. Since every probe compiles to one
//! `Option` branch, the honest way to price that is to benchmark the
//! instrumented engines with `Obs::disabled()` (today's plain path)
//! against `Obs::enabled()` (every span/counter recorded), and to
//! price the raw probe primitives in isolation. The enabled deltas on
//! real workloads bound the disabled cost from above: disabled mode
//! does strictly less work per probe.
//!
//! Groups:
//! * `obs_probe`     — raw cost of one span / counter / histogram hit,
//!   disabled vs. enabled (nanoseconds; disabled must be ~1 ns).
//! * `obs_elicit`    — assisted pipeline, disabled vs. enabled.
//! * `obs_explore`   — 3-vehicle instance exploration, disabled vs.
//!   enabled.
//! * `obs_fleet`     — 8×512 monitor fleet, disabled vs. enabled.
//! * `obs_export`    — snapshot + stats/trace serialisation of a
//!   fleet-sized registry (the once-per-run artefact cost).

use criterion::{criterion_group, criterion_main, Criterion};
use fsa_obs::Obs;
use std::hint::black_box;
use std::time::Duration;

fn bench_probe_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_probe");
    for (mode, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        group.bench_function(format!("span_{mode}"), |b| {
            b.iter(|| black_box(obs.span("bench.probe").finish()))
        });
        group.bench_function(format!("counter_{mode}"), |b| {
            b.iter(|| obs.counter_add(black_box("bench.counter"), black_box(1)))
        });
        group.bench_function(format!("histogram_{mode}"), |b| {
            b.iter(|| {
                obs.record_duration(
                    black_box("bench.hist"),
                    Duration::from_nanos(black_box(512)),
                )
            })
        });
    }
    group.finish();
}

fn bench_elicit_overhead(c: &mut Criterion) {
    use fsa_core::assisted::{elicit_observed, DependenceMethod, ElicitOptions};
    use fsa_core::dataflow::dataflow_apa;
    use fsa_core::Agent;

    let inst = bench::layered_instance(3, 8);
    let graph = dataflow_apa(&inst)
        .expect("loop-free")
        .reachability(&apa::ReachOptions::default())
        .expect("bounded");
    let options = ElicitOptions {
        method: DependenceMethod::Precedence,
        threads: 1,
        prune: true,
    };

    let mut group = c.benchmark_group("obs_elicit");
    group.sample_size(20);
    for (mode, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        group.bench_function(format!("assisted_3x8_{mode}"), |b| {
            b.iter(|| {
                black_box(elicit_observed(black_box(&graph), &options, &obs, |_| {
                    Agent::new("P")
                }))
            })
        });
    }
    group.finish();
}

fn bench_explore_overhead(c: &mut Criterion) {
    use fsa_core::explore::ExploreOptions;
    use vanet::exploration::explore_scenario;

    let mut group = c.benchmark_group("obs_explore");
    group.sample_size(10);
    for (mode, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        let options = ExploreOptions {
            threads: 4,
            obs: obs.clone(),
            ..ExploreOptions::default()
        };
        group.bench_function(format!("explore_3v_t4_{mode}"), |b| {
            b.iter(|| black_box(explore_scenario(3, black_box(&options)).unwrap()))
        });
    }
    group.finish();
}

fn bench_fleet_overhead(c: &mut Criterion) {
    use fsa_core::requirements::AuthRequirement;
    use fsa_core::{Action, Agent};
    use fsa_runtime::{monitor_apa, FleetConfig};

    let apa = vanet::forwarding::forwarding_chain_apa().expect("valid model");
    let set: fsa_core::requirements::RequirementSet = [AuthRequirement::new(
        Action::parse("V1_sense"),
        Action::parse("V3_show"),
        Agent::new("D_3"),
    )]
    .into_iter()
    .collect();

    let mut group = c.benchmark_group("obs_fleet");
    group.sample_size(20);
    for (mode, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        let cfg = FleetConfig {
            streams: 8,
            events_per_stream: 512,
            threads: 4,
            obs: obs.clone(),
            ..FleetConfig::default()
        };
        group.bench_function(format!("fleet_8x512_t4_{mode}"), |b| {
            b.iter(|| black_box(monitor_apa(&apa, &set, black_box(&cfg)).unwrap()))
        });
    }
    group.finish();
}

fn bench_export_cost(c: &mut Criterion) {
    use fsa_core::requirements::AuthRequirement;
    use fsa_core::{Action, Agent};
    use fsa_runtime::{monitor_apa, FleetConfig};

    // Fill a registry with a realistic fleet run's worth of series.
    let apa = vanet::forwarding::forwarding_chain_apa().expect("valid model");
    let set: fsa_core::requirements::RequirementSet = [AuthRequirement::new(
        Action::parse("V1_sense"),
        Action::parse("V3_show"),
        Agent::new("D_3"),
    )]
    .into_iter()
    .collect();
    let obs = Obs::enabled();
    let cfg = FleetConfig {
        streams: 8,
        events_per_stream: 512,
        threads: 4,
        obs: obs.clone(),
        ..FleetConfig::default()
    };
    monitor_apa(&apa, &set, &cfg).unwrap();

    let mut group = c.benchmark_group("obs_export");
    group.bench_function("snapshot", |b| b.iter(|| black_box(obs.snapshot())));
    let snapshot = obs.snapshot();
    group.bench_function("stats_json", |b| {
        b.iter(|| black_box(snapshot.to_stats_json()))
    });
    group.bench_function("trace_json", |b| {
        b.iter(|| black_box(snapshot.to_trace_json()))
    });
    group.bench_function("jsonl", |b| b.iter(|| black_box(snapshot.to_jsonl())));
    group.finish();
}

criterion_group!(
    benches,
    bench_probe_primitives,
    bench_elicit_overhead,
    bench_explore_overhead,
    bench_fleet_overhead,
    bench_export_cost
);
criterion_main!(benches);
