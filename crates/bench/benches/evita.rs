//! Experiment EVITA: end-to-end elicitation at the scale reported in
//! §4.4 (38 component boundary actions → 29 requirements).

use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::boundary::boundary_stats;
use fsa_core::manual::elicit;
use std::hint::black_box;
use vanet::evita::onboard_instance;

fn bench_evita(c: &mut Criterion) {
    let inst = onboard_instance();
    assert_eq!(elicit(&inst).expect("loop-free").requirements().len(), 29);

    let mut group = c.benchmark_group("evita");
    group.bench_function("elicit_onboard", |b| {
        b.iter(|| black_box(elicit(black_box(&inst)).expect("loop-free")))
    });
    group.bench_function("boundary_stats", |b| {
        b.iter(|| black_box(boundary_stats(black_box(&inst))))
    });
    group.bench_function("build_model", |b| b.iter(|| black_box(onboard_instance())));
    group.finish();
}

criterion_group!(benches, bench_evita);
criterion_main!(benches);
