//! Scaling of the manual pipeline (closure → χ → requirements) on
//! layered synthetic models, plus parameterisation cost.

use bench::layered_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::manual::elicit;
use fsa_core::param::parameterise;
use std::hint::black_box;

fn bench_elicit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elicit_layered");
    for (layers, width) in [(4, 4), (8, 8), (12, 12)] {
        let inst = layered_instance(layers, width);
        group.bench_with_input(
            BenchmarkId::new("elicit", inst.action_count()),
            &inst,
            |b, inst| b.iter(|| black_box(elicit(black_box(inst)).expect("loop-free"))),
        );
    }
    group.finish();
}

fn bench_random_traffic(c: &mut Criterion) {
    // Experiment S7: elicitation on randomly generated V2V topologies.
    use vanet::generator::{random_traffic_instance, TrafficConfig};
    let mut group = c.benchmark_group("elicit_random_traffic");
    group.sample_size(10);
    for vehicles in [50usize, 200, 500] {
        let inst = random_traffic_instance(
            &TrafficConfig {
                vehicles,
                ..Default::default()
            },
            42,
        );
        group.bench_with_input(BenchmarkId::new("vehicles", vehicles), &inst, |b, inst| {
            b.iter(|| black_box(elicit(black_box(inst)).expect("loop-free")))
        });
    }
    group.finish();
}

fn bench_parameterise(c: &mut Criterion) {
    let inst = vanet::instances::forwarding_chain(64);
    let set = elicit(&inst).expect("loop-free").requirement_set();
    c.bench_function("parameterise_64_forwarders", |b| {
        b.iter(|| black_box(parameterise(black_box(&set), 2)))
    });
}

/// The tool-assisted pipeline on the dataflow APA of a layered model:
/// the full dependence-checking engine (behaviour NFA + shared
/// precedence index + prune pass + grid evaluation), sequential vs.
/// 4-thread grid. Verdicts are bit-identical across thread counts.
fn bench_assisted_engine(c: &mut Criterion) {
    use fsa_core::assisted::{elicit_with_options, DependenceMethod, ElicitOptions};
    use fsa_core::dataflow::dataflow_apa;
    use fsa_core::Agent;

    let inst = bench::layered_instance(3, 8);
    let graph = dataflow_apa(&inst)
        .expect("loop-free")
        .reachability(&apa::ReachOptions::default())
        .expect("bounded");

    let mut group = c.benchmark_group("assisted_engine_layered");
    group.sample_size(10);

    // The pre-engine baseline: independent seed-style O(V·E)
    // precedence queries per grid pair.
    let behaviour = graph.to_nfa();
    let minima = graph.minima();
    let maxima = graph.maxima();
    group.bench_function("seed_per_pair", |b| {
        b.iter(|| {
            let mut dependent = 0usize;
            for max in &maxima {
                for min in &minima {
                    if min != max && bench::seed_precedes(black_box(&behaviour), min, max) {
                        dependent += 1;
                    }
                }
            }
            black_box(dependent)
        })
    });

    for (name, threads) in [("threads_1", 1usize), ("threads_4", 4)] {
        let options = ElicitOptions {
            method: DependenceMethod::Precedence,
            threads,
            prune: true,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(elicit_with_options(black_box(&graph), &options, |_| {
                    Agent::new("P")
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_elicit_scaling,
    bench_random_traffic,
    bench_parameterise,
    bench_assisted_engine
);
criterion_main!(benches);
