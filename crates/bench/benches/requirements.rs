//! Scaling of the manual pipeline (closure → χ → requirements) on
//! layered synthetic models, plus parameterisation cost.

use bench::layered_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::manual::elicit;
use fsa_core::param::parameterise;
use std::hint::black_box;

fn bench_elicit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elicit_layered");
    for (layers, width) in [(4, 4), (8, 8), (12, 12)] {
        let inst = layered_instance(layers, width);
        group.bench_with_input(
            BenchmarkId::new("elicit", inst.action_count()),
            &inst,
            |b, inst| b.iter(|| black_box(elicit(black_box(inst)).expect("loop-free"))),
        );
    }
    group.finish();
}

fn bench_random_traffic(c: &mut Criterion) {
    // Experiment S7: elicitation on randomly generated V2V topologies.
    use vanet::generator::{random_traffic_instance, TrafficConfig};
    let mut group = c.benchmark_group("elicit_random_traffic");
    group.sample_size(10);
    for vehicles in [50usize, 200, 500] {
        let inst = random_traffic_instance(
            &TrafficConfig {
                vehicles,
                ..Default::default()
            },
            42,
        );
        group.bench_with_input(
            BenchmarkId::new("vehicles", vehicles),
            &inst,
            |b, inst| b.iter(|| black_box(elicit(black_box(inst)).expect("loop-free"))),
        );
    }
    group.finish();
}

fn bench_parameterise(c: &mut Criterion) {
    let inst = vanet::instances::forwarding_chain(64);
    let set = elicit(&inst).expect("loop-free").requirement_set();
    c.bench_function("parameterise_64_forwarders", |b| {
        b.iter(|| black_box(parameterise(black_box(&set), 2)))
    });
}

criterion_group!(benches, bench_elicit_scaling, bench_random_traffic, bench_parameterise);
criterion_main!(benches);
