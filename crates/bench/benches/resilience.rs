//! Supervisor overhead and checkpoint cost.
//!
//! The supervised execution layer (PR 4) must be effectively free when
//! nothing goes wrong: the `catch_unwind` + work-stealing harness adds
//! per-chunk bookkeeping, and the acceptance bar is **< 3 % overhead**
//! over the plain engines on the 3-vehicle exploration. The checkpoint
//! benches price one atomic snapshot write/read round-trip so the
//! `--checkpoint-every` default can be chosen against real numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::checkpoint::{config_fingerprint, CheckpointCounters, ExploreCheckpoint};
use fsa_core::explore::{ExecOptions, ExploreOptions};
use fsa_exec::Supervisor;
use std::hint::black_box;
use vanet::exploration::{explore_scenario, explore_scenario_supervised};

fn bench_supervisor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience");
    group.sample_size(20);
    for threads in [1usize, 4] {
        let options = ExploreOptions {
            threads,
            ..ExploreOptions::default()
        };
        group.bench_function(format!("explore_plain_3v_t{threads}"), |b| {
            b.iter(|| black_box(explore_scenario(3, black_box(&options)).unwrap()))
        });
        group.bench_function(format!("explore_supervised_3v_t{threads}"), |b| {
            let exec = ExecOptions::default();
            b.iter(|| {
                black_box(explore_scenario_supervised(3, black_box(&options), &exec).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_fleet_overhead(c: &mut Criterion) {
    use fsa_core::requirements::AuthRequirement;
    use fsa_core::{Action, Agent};
    use fsa_runtime::{monitor_apa, monitor_apa_supervised, FleetConfig};
    let apa = vanet::forwarding::forwarding_chain_apa().expect("valid model");
    let set: fsa_core::requirements::RequirementSet = [AuthRequirement::new(
        Action::parse("V1_sense"),
        Action::parse("V3_show"),
        Agent::new("D_3"),
    )]
    .into_iter()
    .collect();
    let cfg = FleetConfig {
        streams: 8,
        events_per_stream: 512,
        threads: 4,
        ..FleetConfig::default()
    };
    let mut group = c.benchmark_group("resilience");
    group.bench_function("fleet_plain_8x512_t4", |b| {
        b.iter(|| black_box(monitor_apa(&apa, &set, black_box(&cfg)).unwrap()))
    });
    group.bench_function("fleet_supervised_8x512_t4", |b| {
        let sup = Supervisor::new();
        b.iter(|| black_box(monitor_apa_supervised(&apa, &set, black_box(&cfg), &sup).unwrap()))
    });
    group.finish();
}

fn bench_checkpoint_io(c: &mut Criterion) {
    // A realistically-sized checkpoint: ~1k accepted (ordinal, mask)
    // decisions — larger than any 3-vehicle run produces.
    let fingerprint = config_fingerprint(&[], &[], &ExploreOptions::default());
    let cp = ExploreCheckpoint {
        fingerprint,
        next_ordinal: 64,
        pending_masks: (0..256u64).collect(),
        accepted: (0..1024u64).map(|i| (i / 16, i)).collect(),
        counters: CheckpointCounters::default(),
    };
    let dir = std::env::temp_dir().join(format!("fsa-bench-ck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.fsas");

    let mut group = c.benchmark_group("resilience");
    group.bench_function("checkpoint_write_atomic_1k", |b| {
        b.iter(|| cp.write(black_box(&path)).unwrap())
    });
    cp.write(&path).unwrap();
    group.bench_function("checkpoint_read_validate_1k", |b| {
        b.iter(|| black_box(ExploreCheckpoint::read(black_box(&path)).unwrap()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_supervisor_overhead,
    bench_fleet_overhead,
    bench_checkpoint_io
);
criterion_main!(benches);
