//! Pricing incremental elicitation (PR 7).
//!
//! The incremental engine memoises reachability fragments and
//! dependence verdicts under content-hash keys, so a model edit only
//! recomputes what the edit touches. These groups pin the headline
//! claim: on the six-vehicle scenario, a single-component edit followed
//! by re-elicitation is at least an order of magnitude cheaper than
//! eliciting the edited model from scratch.
//!
//! * `incremental_edit/single_component_edit` — warm engine, apply
//!   `set-initial gps5 20010`, re-elicit, undo (so every iteration
//!   starts from the same memo state).
//! * `incremental_edit/from_scratch` — compile + reachability +
//!   `elicit_with_options` on the same edited model, no memo.
//! * `incremental_edit/warm_replay` — repeat elicitation with no edit:
//!   the pure memo-lookup floor.

use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::assisted::{elicit_with_options, DependenceMethod, ElicitOptions};
use fsa_core::delta::{EditModel, ModelDelta};
use fsa_core::incremental::IncrementalElicitor;
use fsa_obs::Obs;
use std::hint::black_box;

const MEMO_CAPACITY: usize = 256;

fn six_vehicle_model() -> EditModel {
    vanet::apa_model::n_pair_model(3)
}

fn edit_and_undo() -> (ModelDelta, ModelDelta) {
    (
        ModelDelta::parse("set-initial gps5 20010").expect("edit parses"),
        ModelDelta::parse("set-initial gps5 20000").expect("undo parses"),
    )
}

fn from_scratch(model: &EditModel) {
    let graph = model
        .compile()
        .expect("model compiles")
        .reachability(&apa::ReachOptions::default())
        .expect("reachability");
    black_box(elicit_with_options(
        &graph,
        &ElicitOptions {
            method: DependenceMethod::Precedence,
            threads: 1,
            prune: false,
        },
        |max| model.stakeholder(max),
    ));
}

fn bench_incremental_edit(c: &mut Criterion) {
    let obs = Obs::disabled();
    let (edit, undo) = edit_and_undo();

    let mut group = c.benchmark_group("incremental_edit");
    group.sample_size(20);

    // Warm engine: the base model and both edit states are memoised
    // once up front, then every iteration pays only the edit path
    // (invalidation + fragment re-analysis for the touched vehicle).
    let mut model = six_vehicle_model();
    let mut engine = IncrementalElicitor::new(MEMO_CAPACITY)
        .unwrap()
        .method(DependenceMethod::Precedence);
    engine.elicit(&model, &obs).expect("warm base");
    group.bench_function("single_component_edit", |b| {
        b.iter(|| {
            engine.apply(&mut model, &edit, &obs).expect("edit");
            black_box(engine.elicit(&model, &obs).expect("re-elicit"));
            engine.apply(&mut model, &undo, &obs).expect("undo");
            black_box(engine.elicit(&model, &obs).expect("re-elicit undone"));
        })
    });

    // The comparison point: the same pair of model states, each
    // elicited from scratch (what a non-incremental tool pays).
    let mut edited = six_vehicle_model();
    edited.apply(&edit).expect("edit applies");
    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            from_scratch(black_box(&edited));
            from_scratch(black_box(&six_vehicle_model()));
        })
    });

    // Floor: no edit at all — a repeated elicit is pure memo lookups.
    let replay_model = six_vehicle_model();
    let mut replay = IncrementalElicitor::new(MEMO_CAPACITY)
        .unwrap()
        .method(DependenceMethod::Precedence);
    replay.elicit(&replay_model, &obs).expect("warm replay");
    group.bench_function("warm_replay", |b| {
        b.iter(|| {
            black_box(
                replay
                    .elicit(black_box(&replay_model), &obs)
                    .expect("replay"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_incremental_edit);
criterion_main!(benches);
