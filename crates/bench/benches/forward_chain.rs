//! Experiment F4: elicitation on growing forwarding chains — |χᵢ| grows
//! linearly in the number of forwarders (the §4.4 recurrence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::manual::elicit;
use std::hint::black_box;
use vanet::instances::forwarding_chain;

fn bench_forward_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_chain");
    for forwarders in [0usize, 4, 16, 64] {
        let inst = forwarding_chain(forwarders);
        // Shape assertion: |χ| = 3 + forwarders.
        assert_eq!(
            elicit(&inst).expect("loop-free").requirements().len(),
            3 + forwarders
        );
        group.bench_with_input(
            BenchmarkId::new("elicit", forwarders),
            &forwarders,
            |b, _| b.iter(|| black_box(elicit(black_box(&inst)).expect("loop-free"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward_chain);
criterion_main!(benches);
