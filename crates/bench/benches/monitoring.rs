//! Experiment S6: runtime conformance monitoring (§2.7) — throughput
//! of the fused monitor bank on streaming APA traces.
//!
//! `bank_feed` is the acceptance-criterion bench: the six-vehicle
//! requirement set (three warner/forwarder pairs, paper semantics)
//! compiled into one flat transition table and fed a pre-generated
//! event stream — the hot loop is one table lookup per (monitor,
//! event). The criterion number divided into the stream length must
//! exceed 1M events/sec single-threaded in release mode.
//!
//! `fleet_end_to_end` measures the full pipeline (simulate → inject →
//! check) at 1/2/4 worker threads, whose reports are bit-identical by
//! construction.

use apa::{Apa, ReachOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsa_core::assisted::{elicit_from_graph, DependenceMethod};
use fsa_core::requirements::RequirementSet;
use fsa_runtime::{monitor_apa, FleetConfig, MonitorBank};
use std::hint::black_box;
use vanet::apa_model::{n_pair_apa, stakeholder_of};
use vanet::semantics::ApaSemantics;

/// The six-vehicle scenario (three warner/forwarder pairs) and its
/// elicited requirement set — the bench workload named in the issue.
fn six_vehicle() -> (Apa, RequirementSet) {
    let apa = n_pair_apa(3, ApaSemantics::PAPER).expect("valid model");
    let graph = apa
        .reachability(&ReachOptions::default())
        .expect("finite behaviour");
    let set = elicit_from_graph(&graph, DependenceMethod::Precedence, stakeholder_of).requirements;
    assert!(!set.is_empty(), "six-vehicle model elicits requirements");
    (apa, set)
}

/// A long honest event stream for the bank, pre-mapped to bank
/// symbols: simulator episodes concatenated until `len` events.
fn honest_stream(apa: &Apa, bank: &MonitorBank, len: usize) -> Vec<u32> {
    let mut events = Vec::with_capacity(len);
    let mut seed = 0x6_5EED;
    while events.len() < len {
        let mut sim = apa::sim::Simulator::new(apa, seed);
        let steps = sim.run(4096).expect("honest run");
        if steps == 0 {
            seed += 1;
            continue;
        }
        for label in sim.trace() {
            events.push(bank.event_symbol(sim.symbols().name(label.automaton)));
            if events.len() == len {
                break;
            }
        }
        seed += 1;
    }
    events
}

fn bench_monitoring(c: &mut Criterion) {
    let (apa, set) = six_vehicle();
    let bank = MonitorBank::for_apa(&set, &apa).expect("compiles");

    // Acceptance criterion: fused-bank throughput on a pre-generated
    // stream (pure check stage, single thread).
    let mut group = c.benchmark_group("monitoring");
    const STREAM: usize = 1 << 16;
    let events = honest_stream(&apa, &bank, STREAM);
    group.bench_function(
        BenchmarkId::new("bank_feed", format!("{}mon", bank.len())),
        |b| {
            b.iter(|| {
                let mut run = bank.start();
                bank.feed(&mut run, black_box(&events));
                black_box(run.events)
            })
        },
    );

    // Compilation cost: requirement set → fused table.
    group.bench_function("compile_bank", |b| {
        b.iter(|| black_box(MonitorBank::for_apa(black_box(&set), &apa).expect("compiles")))
    });

    // End-to-end fleet (simulate + inject + check) across worker
    // counts; the per-thread reports are bit-identical.
    for threads in [1usize, 2, 4] {
        let cfg = FleetConfig {
            streams: 8,
            events_per_stream: 2048,
            threads,
            ..FleetConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("fleet_end_to_end", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let (_, report) = monitor_apa(&apa, &set, cfg).expect("fleet runs");
                    assert!(report.verdicts.iter().all(|v| v.holds()));
                    black_box(report.events)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
