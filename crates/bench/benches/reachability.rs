//! Experiment S1 / Figs. 7 & 9: reachability-graph computation.
//!
//! The state count grows geometrically with the number of independent
//! vehicle pairs (paper: 13 → 169; printed Δ-semantics: 12 → 144); this
//! bench charts the cost of computing those graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vanet::apa_model::n_pair_apa;
use vanet::semantics::ApaSemantics;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    for pairs in 1..=3usize {
        let apa = n_pair_apa(pairs, ApaSemantics::PAPER).expect("valid model");
        let states = apa
            .reachability(&apa::ReachOptions::default())
            .expect("bounded")
            .state_count();
        group.bench_with_input(
            BenchmarkId::new(
                "n_pair_paper_semantics",
                format!("{pairs}pairs_{states}states"),
            ),
            &pairs,
            |b, _| {
                b.iter(|| {
                    let g = apa
                        .reachability(black_box(&apa::ReachOptions::default()))
                        .expect("bounded");
                    black_box(g.state_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_semantics_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_semantics");
    for semantics in ApaSemantics::ALL {
        let apa = n_pair_apa(2, semantics).expect("valid model");
        group.bench_with_input(
            BenchmarkId::new("four_vehicle", semantics.tag()),
            &semantics,
            |b, _| {
                b.iter(|| {
                    let g = apa
                        .reachability(black_box(&apa::ReachOptions::default()))
                        .expect("bounded");
                    black_box(g.state_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // Sequential vs. layer-parallel exploration on the 3-pair instance
    // (1728 states with paper semantics).
    let apa = n_pair_apa(3, ApaSemantics::PAPER).expect("valid model");
    let mut group = c.benchmark_group("reachability_parallel");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                apa.reachability(black_box(&apa::ReachOptions::default()))
                    .expect("bounded"),
            )
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        apa.reachability_parallel(
                            black_box(&apa::ReachOptions::default()),
                            threads,
                        )
                        .expect("bounded"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_arena_vs_reference(c: &mut Criterion) {
    // The arena/CSR kernel against the retained HashMap-of-GlobalState
    // oracle, both single-threaded on the six-vehicle (3-pair, 1728
    // state) instance. The kernel is the default `reachability`; the
    // oracle is what every release before the arena rewrite shipped.
    let apa = n_pair_apa(3, ApaSemantics::PAPER).expect("valid model");
    let mut group = c.benchmark_group("reachability_kernel");
    group.bench_function("arena_csr", |b| {
        b.iter(|| {
            black_box(
                apa.reachability(black_box(&apa::ReachOptions::default()))
                    .expect("bounded"),
            )
        })
    });
    group.bench_function("reference_hashmap", |b| {
        b.iter(|| {
            black_box(
                apa.reachability_reference(black_box(&apa::ReachOptions::default()))
                    .expect("bounded"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reachability,
    bench_semantics_variants,
    bench_parallel,
    bench_arena_vs_reference
);
criterion_main!(benches);
