//! Experiment S3 (ablation) / Figs. 10-11: the two dependence decision
//! procedures — homomorphic abstraction + minimal automaton vs. direct
//! precedence check — on the four-vehicle behaviour.

use apa::ReachOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::assisted::{
    dependence_by_abstraction, dependence_by_precedence, elicit_with_options, DependenceMethod,
    ElicitOptions,
};
use std::hint::black_box;
use vanet::apa_model::{four_vehicle_apa, n_pair_apa, stakeholder_of};
use vanet::semantics::ApaSemantics;

fn bench_dependence(c: &mut Criterion) {
    let graph = four_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    let behaviour = graph.to_nfa();

    let mut group = c.benchmark_group("dependence");
    group.bench_function("abstraction_dependent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_abstraction(
                black_box(&behaviour),
                "V1_sense",
                "V2_show",
            ))
        })
    });
    group.bench_function("abstraction_independent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_abstraction(
                black_box(&behaviour),
                "V1_sense",
                "V4_show",
            ))
        })
    });
    group.bench_function("precedence_dependent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_precedence(
                black_box(&behaviour),
                "V1_sense",
                "V2_show",
            ))
        })
    });
    group.bench_function("precedence_independent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_precedence(
                black_box(&behaviour),
                "V1_sense",
                "V4_show",
            ))
        })
    });
    group.finish();

    // The full minimisation pipeline on the homomorphic image.
    let mut group = c.benchmark_group("abstraction_pipeline");
    group.bench_function("determinize_minimize_image", |b| {
        let h = automata::Homomorphism::erase_all_except(["V1_sense", "V2_show"]);
        b.iter(|| {
            let image = h.apply(black_box(&behaviour));
            black_box(automata::ops::minimize(&automata::ops::determinize(&image)))
        })
    });
    group.finish();
}

/// The full §5.5 dependence-checking engine on the three-pair
/// (six-vehicle) behaviour: naive sequential baseline vs. the
/// shared-work engine (pruning + co-reach cache) vs. the parallel
/// engine at 4 threads. Verdicts are bit-identical across all three
/// configurations (see `tests/parallel_props.rs`); only the wall-clock
/// differs.
fn bench_engine(c: &mut Criterion) {
    let graph = n_pair_apa(3, ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");

    let mut group = c.benchmark_group("elicitation_engine");
    group.sample_size(10);

    // The pre-engine baseline: one independent decision-procedure call
    // per (minimum, maximum) pair, with the seed's O(V·E) reachability
    // scan (`a_free_reachable` re-walked the full transition list for
    // every popped state) — what `elicit_from_graph` did before the
    // engine landed.
    let behaviour = graph.to_nfa();
    let minima = graph.minima();
    let maxima = graph.maxima();
    group.bench_function("seed_per_pair_precedence", |b| {
        b.iter(|| {
            let mut dependent = 0usize;
            for max in &maxima {
                for min in &minima {
                    if min != max && bench::seed_precedes(black_box(&behaviour), min, max) {
                        dependent += 1;
                    }
                }
            }
            black_box(dependent)
        })
    });

    // The same grid with the current per-call decision procedure
    // (adjacency-indexed BFS, rebuilt per call).
    group.bench_function("naive_per_pair_precedence", |b| {
        b.iter(|| {
            let mut dependent = 0usize;
            for max in &maxima {
                for min in &minima {
                    if min != max && dependence_by_precedence(black_box(&behaviour), min, max) {
                        dependent += 1;
                    }
                }
            }
            black_box(dependent)
        })
    });

    for (name, options) in [
        (
            "seq_naive",
            ElicitOptions {
                method: DependenceMethod::Abstraction,
                threads: 1,
                prune: false,
            },
        ),
        (
            "seq_pruned",
            ElicitOptions {
                method: DependenceMethod::Abstraction,
                threads: 1,
                prune: true,
            },
        ),
        (
            "par4_pruned",
            ElicitOptions {
                method: DependenceMethod::Abstraction,
                threads: 4,
                prune: true,
            },
        ),
        (
            "seq_precedence",
            ElicitOptions {
                method: DependenceMethod::Precedence,
                threads: 1,
                prune: true,
            },
        ),
        (
            "par4_precedence",
            ElicitOptions {
                method: DependenceMethod::Precedence,
                threads: 4,
                prune: true,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(elicit_with_options(
                    black_box(&graph),
                    &options,
                    stakeholder_of,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dependence, bench_engine);
criterion_main!(benches);
