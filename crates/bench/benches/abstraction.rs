//! Experiment S3 (ablation) / Figs. 10-11: the two dependence decision
//! procedures — homomorphic abstraction + minimal automaton vs. direct
//! precedence check — on the four-vehicle behaviour.

use apa::ReachOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use fsa_core::assisted::{dependence_by_abstraction, dependence_by_precedence};
use std::hint::black_box;
use vanet::apa_model::four_vehicle_apa;
use vanet::semantics::ApaSemantics;

fn bench_dependence(c: &mut Criterion) {
    let graph = four_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    let behaviour = graph.to_nfa();

    let mut group = c.benchmark_group("dependence");
    group.bench_function("abstraction_dependent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_abstraction(
                black_box(&behaviour),
                "V1_sense",
                "V2_show",
            ))
        })
    });
    group.bench_function("abstraction_independent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_abstraction(
                black_box(&behaviour),
                "V1_sense",
                "V4_show",
            ))
        })
    });
    group.bench_function("precedence_dependent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_precedence(
                black_box(&behaviour),
                "V1_sense",
                "V2_show",
            ))
        })
    });
    group.bench_function("precedence_independent_pair", |b| {
        b.iter(|| {
            black_box(dependence_by_precedence(
                black_box(&behaviour),
                "V1_sense",
                "V4_show",
            ))
        })
    });
    group.finish();

    // The full minimisation pipeline on the homomorphic image.
    let mut group = c.benchmark_group("abstraction_pipeline");
    group.bench_function("determinize_minimize_image", |b| {
        let h = automata::Homomorphism::erase_all_except(["V1_sense", "V2_show"]);
        b.iter(|| {
            let image = h.apply(black_box(&behaviour));
            black_box(automata::ops::minimize(&automata::ops::determinize(&image)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dependence);
criterion_main!(benches);
