//! Regenerates every table and figure of the paper as text.
//!
//! Usage: `cargo run -p bench --bin repro [-- <experiment>]` where
//! `<experiment>` is one of `t1 f1 f2 f3 f4 f5 f7 f9 f10 evita ablation simplicity explore
//! all` (default `all`). EXPERIMENTS.md records the paper-vs-measured
//! comparison for each.

use apa::ReachOptions;
use fsa_core::assisted::{dependence_by_abstraction, elicit_from_graph, DependenceMethod};
use fsa_core::boundary::boundary_stats;
use fsa_core::manual::elicit;
use fsa_core::param::parameterise_over;
use fsa_core::report::{render_assisted, render_manual};
use fsa_graph::dot::{to_dot, DotOptions};
use vanet::apa_model::{four_vehicle_apa, single_vehicle_apa, stakeholder_of, two_vehicle_apa};
use vanet::semantics::ApaSemantics;
use vanet::{component_models, evita, instances, table1};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let run_all = arg == "all";
    let mut ran = false;
    let mut section = |id: &str, title: &str, body: fn()| {
        if run_all || arg == id {
            println!("\n======== {id}: {title} ========");
            body();
            ran = true;
        }
    };

    section("t1", "Table 1 — actions of the example system", t1);
    section("f1", "Fig. 1 — functional component models", f1);
    section("f2", "Fig. 2 / Examples 1-2 — RSU warns vehicle w", f2);
    section("f3", "Fig. 3 / Example 3 — two-vehicle warning", f3);
    section(
        "f4",
        "Fig. 4 / §4.4 — forwarding chain and requirement (4)",
        f4,
    );
    section("f5", "Fig. 5 — APA model of a vehicle", f5);
    section(
        "f7",
        "Figs. 6-7 / Examples 5-6 — two-vehicle reachability",
        f7,
    );
    section("f9", "Figs. 8-9 — four-vehicle reachability", f9);
    section("f10", "Figs. 10-11 / Example 7 — abstraction per pair", f10);
    section("evita", "§4.4 — EVITA-scale statistics", evita_repro);
    section(
        "ablation",
        "DESIGN §2.3 — consumption-semantics ablation",
        ablation,
    );
    section(
        "simplicity",
        "§5.5 theory — simplicity of the per-pair abstractions",
        simplicity,
    );
    section(
        "figures",
        "DOT renderings of the figure analogues (written to target/repro-figures)",
        figures,
    );
    section(
        "baselines",
        "§2 — coverage of the architect-archetype baselines",
        baselines_repro,
    );
    section(
        "explore",
        "§4.2 — instance-space enumeration and requirement union",
        explore,
    );

    if !ran {
        eprintln!(
            "unknown experiment `{arg}`; use one of: t1 f1 f2 f3 f4 f5 f7 f9 f10 evita ablation simplicity explore baselines figures all"
        );
        std::process::exit(2);
    }
}

fn t1() {
    print!("{}", table1::render());
}

fn f1() {
    let (rsu, _) = component_models::rsu_model();
    println!(
        "Fig. 1(a) RSU model: {} action(s), {} internal flow(s)",
        rsu.actions().len(),
        rsu.flows().len()
    );
    let (vehicle, _) = component_models::vehicle_model();
    println!(
        "Fig. 1(b) vehicle model: {} actions, {} internal flows (1 policy: pos -> fwd)",
        vehicle.actions().len(),
        vehicle.flows().len()
    );
    let inst = instances::two_vehicle_warning();
    println!("\nDOT of the composed Fig. 3 instance:");
    print!(
        "{}",
        to_dot(inst.graph(), &DotOptions::default(), |_, a| a.to_string())
    );
}

fn f2() {
    let report = elicit(&instances::rsu_warns_vehicle()).expect("loop-free");
    print!("{}", render_manual(&report));
}

fn f3() {
    let report = elicit(&instances::two_vehicle_warning()).expect("loop-free");
    print!("{}", render_manual(&report));
    println!("paper: |zeta1| = 5, |zeta1*| = 16, chi1 = requirements (1)-(3)");
}

fn f4() {
    for forwarders in 1..=3 {
        let report = elicit(&instances::forwarding_chain(forwarders)).expect("loop-free");
        println!(
            "chi with {forwarders} forwarder(s): {} requirements ({} availability)",
            report.requirements().len(),
            report
                .classified_requirements()
                .iter()
                .filter(|c| c.relevance == fsa_core::requirements::Relevance::Availability)
                .count()
        );
    }
    let report = elicit(&instances::forwarding_chain(3)).expect("loop-free");
    println!("first-order form over V_forward = {{2,3,4}}:");
    for form in parameterise_over(&report.requirement_set(), 2, Some(&["2", "3", "4"])) {
        println!("  {form}");
    }
}

fn f5() {
    let apa = single_vehicle_apa().expect("valid model");
    println!(
        "vehicle APA: {} state components, {} elementary automata",
        apa.component_count(),
        apa.automaton_count()
    );
    for name in apa.automaton_names() {
        println!("  {name}");
    }
}

fn f7() {
    let graph = two_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    println!(
        "reachability graph: {} states, {} transitions (paper tool: 13 states; see DESIGN.md §2.3)",
        graph.state_count(),
        graph.edge_count()
    );
    print!("{}", graph.min_max_listing());
    let report = elicit_from_graph(&graph, DependenceMethod::Abstraction, stakeholder_of);
    print!("{}", render_assisted(&report));
}

fn f9() {
    let g2 = two_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    let g4 = four_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    println!(
        "four-vehicle reachability: {} states = {}^2 (paper tool: 169 = 13^2)",
        g4.state_count(),
        g2.state_count()
    );
    print!("{}", g4.min_max_listing());
}

fn f10() {
    let graph = four_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    let behaviour = graph.to_nfa();
    let (dep, chain) = dependence_by_abstraction(&behaviour, "V1_sense", "V2_show");
    println!(
        "(V1_sense, V2_show): {} — minimal automaton {} states (Fig. 10 chain)",
        verdict(dep),
        chain.state_count()
    );
    let (dep, diamond) = dependence_by_abstraction(&behaviour, "V1_sense", "V4_show");
    println!(
        "(V1_sense, V4_show): {} — minimal automaton {} states (Fig. 11 diamond)",
        verdict(dep),
        diamond.state_count()
    );
    let report = elicit_from_graph(&graph, DependenceMethod::Abstraction, stakeholder_of);
    print!("{}", render_assisted(&report));
}

fn verdict(dep: bool) -> &'static str {
    if dep {
        "dependent"
    } else {
        "independent"
    }
}

fn evita_repro() {
    let inst = evita::onboard_instance();
    let report = elicit(&inst).expect("loop-free");
    let stats = boundary_stats(&inst);
    println!("paper-reported vs measured:");
    println!(
        "  component boundary actions: {} vs {}",
        evita::EVITA_EXPECTED.component_boundary,
        stats.component_boundary_count()
    );
    println!(
        "  system boundary actions:    {} vs {}",
        evita::EVITA_EXPECTED.system_boundary,
        stats.system_boundary_count()
    );
    println!(
        "  maximal / minimal:          {}/{} vs {}/{}",
        evita::EVITA_EXPECTED.maximal,
        evita::EVITA_EXPECTED.minimal,
        report.maxima().len(),
        report.minima().len()
    );
    println!(
        "  authenticity requirements:  {} vs {}",
        evita::EVITA_EXPECTED.requirements,
        report.requirements().len()
    );
}

fn simplicity() {
    // The SH tool checks that abstractions are *simple homomorphisms*
    // so abstract verdicts carry over. Report the verdict for every
    // (minimum, maximum) abstraction on the two-vehicle behaviour.
    let graph = two_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    let behaviour = graph.to_nfa();
    for minimum in graph.minima() {
        for maximum in graph.maxima() {
            let h = automata::Homomorphism::erase_all_except([minimum.as_str(), maximum.as_str()]);
            let verdict = automata::simple::check(&behaviour, &h);
            println!(
                "  h preserving ({minimum}, {maximum}): {}",
                match &verdict {
                    automata::simple::Simplicity::Simple => "simple".to_owned(),
                    automata::simple::Simplicity::NotSimple { witness } =>
                        format!("NOT simple (witness prefix: {})", witness.join(" ")),
                }
            );
        }
    }
}

fn explore() {
    use fsa_core::explore::{union_requirements_loop_free, ExploreOptions};
    for max_vehicles in 1..=2usize {
        let instances = vanet::exploration::enumerate_scenario_instances(
            max_vehicles,
            &ExploreOptions::default(),
        )
        .expect("bounded enumeration");
        let (union, skipped) =
            union_requirements_loop_free(&instances).expect("loop-free elicitation");
        println!(
            "1 RSU + up to {max_vehicles} vehicle(s): {} structurally different instances, union = {} requirements ({} cyclic skipped)",
            instances.len(),
            union.len(),
            skipped
        );
    }
}

fn figures() {
    let dir = std::path::Path::new("target/repro-figures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let write = |name: &str, content: String| {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
        }
    };
    // Fig. 1/3: the functional flow graph of the two-vehicle instance.
    let inst = instances::two_vehicle_warning();
    write(
        "fig3_flow_graph.dot",
        to_dot(inst.graph(), &DotOptions::default(), |_, a| a.to_string()),
    );
    // Figs. 2 and 4 in the paper's boxed-component style.
    write(
        "fig2_rsu_warns_vehicle.dot",
        fsa_core::report::instance_to_dot(&instances::rsu_warns_vehicle()),
    );
    write(
        "fig4_forwarding.dot",
        fsa_core::report::instance_to_dot(&instances::three_vehicle_forwarding()),
    );
    // Figs. 5, 6, 8: APA model structures (components -- automata).
    write(
        "fig5_vehicle_apa.dot",
        single_vehicle_apa().expect("valid model").to_dot("fig5"),
    );
    write(
        "fig6_two_vehicle_apa.dot",
        two_vehicle_apa(ApaSemantics::PAPER)
            .expect("valid model")
            .to_dot("fig6"),
    );
    write(
        "fig8_four_vehicle_apa.dot",
        four_vehicle_apa(ApaSemantics::PAPER)
            .expect("valid model")
            .to_dot("fig8"),
    );
    // Fig. 7: the two-vehicle reachability graph.
    let g2 = two_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    write("fig7_reachability.dot", g2.to_dot("fig7"));
    // Fig. 9: the four-vehicle reachability graph.
    let g4 = four_vehicle_apa(ApaSemantics::PAPER)
        .expect("valid model")
        .reachability(&ReachOptions::default())
        .expect("bounded");
    write("fig9_reachability.dot", g4.to_dot("fig9"));
    // Figs. 10/11: minimal automata of the abstractions.
    let behaviour = g4.to_nfa();
    let (_, chain) = dependence_by_abstraction(&behaviour, "V1_sense", "V2_show");
    write(
        "fig10_dependent_pair.dot",
        automata::dot::dfa_to_dot(&chain, "fig10"),
    );
    let (_, diamond) = dependence_by_abstraction(&behaviour, "V1_sense", "V4_show");
    write(
        "fig11_independent_pair.dot",
        automata::dot::dfa_to_dot(&diamond, "fig11"),
    );
}

fn baselines_repro() {
    use baselines::channel::channel_baseline;
    use baselines::trust_zone::trust_zone_baseline;
    use baselines::{coverage, TrustAssumption};
    for (label, inst) in [
        ("fig3 two-vehicle", instances::two_vehicle_warning()),
        ("fig4 forwarding", instances::three_vehicle_forwarding()),
        ("evita on-board", evita::onboard_instance()),
    ] {
        let reference = elicit(&inst).expect("loop-free").requirement_set();
        println!("{label}: FSA elicits {} requirements", reference.len());
        for baseline in [channel_baseline(&inst), trust_zone_baseline(&inst)] {
            let trusted = coverage(&inst, &baseline, &reference, &TrustAssumption::AllOwners);
            let untrusted = coverage(&inst, &baseline, &reference, &TrustAssumption::Nothing);
            println!(
                "  {:52} {:>2} reqs; coverage: {:>5.1}% (internals trusted) / {:>5.1}% (in-vehicle attacker)",
                baseline.name,
                baseline.requirements.len(),
                trusted.ratio() * 100.0,
                untrusted.ratio() * 100.0,
            );
        }
    }
    println!(
        "(the baselines look adequate only while component internals are assumed\n trustworthy; what they leave open is exactly the manipulation of in-vehicle\n communication and computation that section 2 warns about)"
    );
}

fn ablation() {
    println!("two-vehicle / four-vehicle state counts per consumption semantics:");
    for semantics in ApaSemantics::ALL {
        let g2 = two_vehicle_apa(semantics)
            .expect("valid model")
            .reachability(&ReachOptions::default())
            .expect("bounded");
        let g4 = four_vehicle_apa(semantics)
            .expect("valid model")
            .reachability(&ReachOptions::default())
            .expect("bounded");
        println!(
            "  {:>26}: {:>3} states / {:>5} states, dead states: {}",
            semantics.tag(),
            g2.state_count(),
            g4.state_count(),
            g2.dead_states().len()
        );
    }
    println!("(paper tool reported 13 / 169; printed Δ-relations give 12 / 144)");
}
