//! Shared helpers for the benchmark harness and the `repro` binary.

use fsa_core::action::{Action, Agent};
use fsa_core::instance::{SosInstance, SosInstanceBuilder};

/// A layered synthetic functional model for scaling benches: `layers`
/// layers of `width` actions, each action feeding every action of the
/// next layer. Sources are the first layer, sinks the last.
pub fn layered_instance(layers: usize, width: usize) -> SosInstance {
    let mut b = SosInstanceBuilder::new(&format!("layered {layers}x{width}"));
    let mut previous = Vec::new();
    for layer in 0..layers {
        let current: Vec<_> = (0..width)
            .map(|i| {
                b.action(
                    Action::parse(&format!("act(L{layer}_{i},data)")),
                    &format!("P_{layer}"),
                )
            })
            .collect();
        for &p in &previous {
            for &c in &current {
                b.flow(p, c);
            }
        }
        previous = current;
    }
    b.build()
}

/// Stakeholder resolver for vanet automaton names (`V2_show ↦ D_2`).
pub fn vanet_stakeholder(name: &str) -> Agent {
    vanet::apa_model::stakeholder_of(name)
}

/// The seed's precedence check, kept verbatim as the benchmark
/// baseline: its reachability scan re-walks the *entire* transition
/// list for every popped state — O(V·E) per query — which is exactly
/// the hot loop the adjacency-indexed rewrite in `automata::temporal`
/// replaced. Used by `benches/abstraction.rs` and
/// `benches/requirements.rs` for the before/after table.
pub fn seed_precedes(nfa: &automata::Nfa, a: &str, b: &str) -> bool {
    use std::collections::BTreeSet;
    let sym_a = nfa.alphabet().get(a);
    let Some(sym_b) = nfa.alphabet().get(b) else {
        return true; // b never occurs
    };
    let mut reach: BTreeSet<automata::StateId> = nfa.initial_states().clone();
    let mut stack: Vec<automata::StateId> = reach.iter().copied().collect();
    while let Some(s) = stack.pop() {
        for (from, label, to) in nfa.transitions() {
            if from != s {
                continue;
            }
            if label.is_some() && label == sym_a {
                continue;
            }
            if reach.insert(to) {
                stack.push(to);
            }
        }
    }
    !reach
        .iter()
        .any(|s| nfa.step(*s, Some(sym_b)).next().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::manual::elicit;

    #[test]
    fn layered_instance_shape() {
        let inst = layered_instance(3, 2);
        assert_eq!(inst.action_count(), 6);
        let report = elicit(&inst).unwrap();
        assert_eq!(report.minima().len(), 2);
        assert_eq!(report.maxima().len(), 2);
        assert_eq!(report.requirements().len(), 4);
    }

    #[test]
    fn stakeholder_resolver() {
        assert_eq!(vanet_stakeholder("V3_show").name(), "D_3");
    }
}
