//! Shared helpers for the benchmark harness and the `repro` binary.

use fsa_core::action::{Action, Agent};
use fsa_core::instance::{SosInstance, SosInstanceBuilder};

/// A layered synthetic functional model for scaling benches: `layers`
/// layers of `width` actions, each action feeding every action of the
/// next layer. Sources are the first layer, sinks the last.
pub fn layered_instance(layers: usize, width: usize) -> SosInstance {
    let mut b = SosInstanceBuilder::new(&format!("layered {layers}x{width}"));
    let mut previous = Vec::new();
    for layer in 0..layers {
        let current: Vec<_> = (0..width)
            .map(|i| {
                b.action(
                    Action::parse(&format!("act(L{layer}_{i},data)")),
                    &format!("P_{layer}"),
                )
            })
            .collect();
        for &p in &previous {
            for &c in &current {
                b.flow(p, c);
            }
        }
        previous = current;
    }
    b.build()
}

/// Stakeholder resolver for vanet automaton names (`V2_show ↦ D_2`).
pub fn vanet_stakeholder(name: &str) -> Agent {
    vanet::apa_model::stakeholder_of(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::manual::elicit;

    #[test]
    fn layered_instance_shape() {
        let inst = layered_instance(3, 2);
        assert_eq!(inst.action_count(), 6);
        let report = elicit(&inst).unwrap();
        assert_eq!(report.minima().len(), 2);
        assert_eq!(report.maxima().len(), 2);
        assert_eq!(report.requirements().len(), 4);
    }

    #[test]
    fn stakeholder_resolver() {
        assert_eq!(vanet_stakeholder("V3_show").name(), "D_3");
    }
}
