//! Golden tests: the `repro` binary's output for the key experiments is
//! pinned, so regressions in the reproduction itself fail CI.

use std::process::Command;

fn repro(experiment: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg(experiment)
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{experiment}: {out:?}");
    String::from_utf8(out.stdout).expect("utf8")
}

#[test]
fn f3_pins_example_3() {
    let out = repro("f3");
    for expected in [
        "zeta (direct functional flows): 5 pairs",
        "zeta* (reflexive transitive closure): 16 pairs",
        "auth(sense(ESP_1,sW), show(HMI_w,warn), D_w)   [safety]",
        "auth(pos(GPS_1,pos), show(HMI_w,warn), D_w)   [safety]",
        "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)   [safety]",
    ] {
        assert!(out.contains(expected), "missing `{expected}` in:\n{out}");
    }
}

#[test]
fn f7_pins_reachability_and_example_6() {
    let out = repro("f7");
    for expected in [
        "12 states, 17 transitions",
        "minima: V1_pos, V1_sense, V2_pos",
        "maxima: V2_show",
        "auth(V1_sense, V2_show, D_2)",
        "dependent (3-state minimal automaton)",
    ] {
        assert!(out.contains(expected), "missing `{expected}` in:\n{out}");
    }
}

#[test]
fn f7_pins_example_6_listing_exactly() {
    // The paper's Example 6 minima/maxima listing, byte for byte: each
    // action appears once per section (deduplicated across edges).
    let out = repro("f7");
    let expected = "The minima of this analysis:\n\
                    \x20 V1_sense M-2\n\
                    \x20 V1_pos M-3\n\
                    \x20 V2_pos M-4\n\
                    The corresponding maxima:\n\
                    \x20 M-11 V2_show\n\
                    \x20 M-12+\n\
                    \x20 +++ dead +++\n";
    assert!(out.contains(expected), "Example 6 listing drifted:\n{out}");
}

#[test]
fn f9_pins_squaring_law() {
    let out = repro("f9");
    assert!(out.contains("144 states = 12^2"), "{out}");
}

#[test]
fn f10_pins_example_7() {
    let out = repro("f10");
    for expected in [
        "dependent — minimal automaton 3 states",
        "independent — minimal automaton 4 states",
        "auth(V3_sense, V4_show, D_4)",
    ] {
        assert!(out.contains(expected), "missing `{expected}` in:\n{out}");
    }
}

#[test]
fn evita_pins_statistics() {
    let out = repro("evita");
    for expected in [
        "component boundary actions: 38 vs 38",
        "system boundary actions:    16 vs 16",
        "maximal / minimal:          9/7 vs 9/7",
        "authenticity requirements:  29 vs 29",
    ] {
        assert!(out.contains(expected), "missing `{expected}` in:\n{out}");
    }
}

#[test]
fn ablation_pins_semantics_table() {
    let out = repro("ablation");
    assert!(out.contains("msg=consume/gps=consume:  12 states /   144 states"));
    assert!(out.contains("msg=retain/gps=retain:  13 states /   169 states"));
}

#[test]
fn unknown_experiment_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("nope")
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
}
