//! Versioned + checksummed snapshot envelopes for checkpoint files.
//!
//! The format is deliberately tiny (no external serialisation
//! dependency — the same offline-build discipline as `vendor/serde`):
//!
//! ```text
//! magic   4 bytes   b"FSAS"
//! version u32 LE    payload schema version (caller-defined)
//! length  u64 LE    payload length in bytes
//! payload length bytes
//! check   u64 LE    FNV-1a over magic ‖ version ‖ length ‖ payload
//! ```
//!
//! Readers validate magic, version, length and checksum *before*
//! handing out a single payload byte, so truncated, bit-flipped and
//! version-skewed files fail with a clean [`SnapshotError`] — never a
//! panic, never a silent partial load. Writers persist atomically
//! (tmp file + rename), so a `SIGKILL` mid-write leaves the previous
//! snapshot intact.

use std::fmt;
use std::path::Path;

const MAGIC: [u8; 4] = *b"FSAS";
const HEADER: usize = 4 + 4 + 8;

/// Why a snapshot could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem-level failure (open/read/write/rename).
    Io(String),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's schema version is not the expected one.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version the reader expected.
        expected: u32,
    },
    /// The file is shorter than its header + declared payload + check.
    Truncated,
    /// The FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// The payload decodes to something structurally impossible.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version {found} does not match expected version {expected}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupt or tampered file)")
            }
            SnapshotError::Malformed(why) => write!(f, "snapshot payload malformed: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A snapshot under construction: append primitives, then
/// [`Snapshot::write_atomic`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u32,
    payload: Vec<u8>,
}

impl Snapshot {
    /// An empty snapshot with the given schema version.
    #[must_use]
    pub fn new(version: u32) -> Self {
        Snapshot {
            version,
            payload: Vec::new(),
        }
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.payload.push(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.payload.extend_from_slice(s.as_bytes());
    }

    /// The encoded file image (header ‖ payload ‖ checksum).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let check = fnv1a(&out);
        out.extend_from_slice(&check.to_le_bytes());
        out
    }

    /// Writes the snapshot atomically *and durably*: a sibling tmp
    /// file is written, `sync_all`ed, `rename`d over `path`, and the
    /// parent directory is fsynced, so readers (and resumed runs
    /// after a `SIGKILL`) only ever observe a complete snapshot — and
    /// the rename itself survives power loss, not just process death.
    ///
    /// Callers that acknowledge receipt over a network (the
    /// coordinator's `shard-done` ack, after which the worker deletes
    /// its own checkpoint) rely on this ordering: the ack must never
    /// be observable while the state that justifies it is still only
    /// in the page cache.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            std::io::Write::write_all(&mut file, &self.to_bytes()).map_err(io)?;
            // Data durable before the rename makes it visible.
            file.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        // Make the rename itself durable. Directory fsync is
        // best-effort: some platforms cannot open a directory as a
        // file, and a failure here never un-does the atomic rename.
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(handle) = std::fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }
}

/// A validated snapshot: sequential typed reads over the payload.
#[derive(Debug)]
pub struct SnapshotReader {
    payload: Vec<u8>,
    pos: usize,
}

impl SnapshotReader {
    /// Validates `bytes` (magic, version, length, checksum) and returns
    /// a payload cursor.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn from_bytes(bytes: &[u8], expected_version: u32) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 || bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let length = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let Some(total) = HEADER.checked_add(length).and_then(|n| n.checked_add(8)) else {
            return Err(SnapshotError::Truncated);
        };
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        let declared =
            u64::from_le_bytes(bytes[HEADER + length..total].try_into().expect("8 bytes"));
        if fnv1a(&bytes[..HEADER + length]) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }
        // Version skew is only reported on files that pass the
        // integrity check — a clean, actionable error.
        if version != expected_version {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: expected_version,
            });
        }
        Ok(SnapshotReader {
            payload: bytes[HEADER..HEADER + length].to_vec(),
            pos: 0,
        })
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn read(path: &Path, expected_version: u32) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        SnapshotReader::from_bytes(&bytes, expected_version)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.payload.len())
            .ok_or(SnapshotError::Truncated)?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] past the payload end.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] past the end;
    /// [`SnapshotError::Malformed`] if the value overflows `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Malformed("usize overflow".to_owned()))
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`].
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "boolean byte {other} out of range"
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`].
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".to_owned()))
    }

    /// Asserts the payload is fully consumed (schema completeness).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.payload.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} trailing payload byte(s)",
                self.payload.len() - self.pos
            )))
        }
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(7);
        s.put_u64(0xDEAD_BEEF);
        s.put_usize(42);
        s.put_bool(true);
        s.put_str("frontier");
        s
    }

    #[test]
    fn roundtrip() {
        let bytes = sample().to_bytes();
        let mut r = SnapshotReader::from_bytes(&bytes, 7).unwrap();
        assert_eq!(r.u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "frontier");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_at_every_length_is_clean() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::from_bytes(&bytes[..cut], 7).unwrap_err();
            assert!(
                matches!(err, SnapshotError::BadMagic | SnapshotError::Truncated),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    SnapshotReader::from_bytes(&flipped, 7).is_err(),
                    "flip byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn version_skew_is_reported_with_both_versions() {
        let bytes = sample().to_bytes();
        let err = SnapshotReader::from_bytes(&bytes, 8).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::VersionMismatch {
                found: 7,
                expected: 8
            }
        );
        assert!(err.to_string().contains('7') && err.to_string().contains('8'));
    }

    #[test]
    fn trailing_bytes_are_rejected_by_finish() {
        let bytes = sample().to_bytes();
        let mut r = SnapshotReader::from_bytes(&bytes, 7).unwrap();
        let _ = r.u64().unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn reads_past_end_are_truncated_errors() {
        let mut s = Snapshot::new(1);
        s.put_u64(1);
        let mut r = SnapshotReader::from_bytes(&s.to_bytes(), 1).unwrap();
        let _ = r.u64().unwrap();
        assert_eq!(r.u64().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fsa_exec_snap_{}.bin", std::process::id()));
        sample().write_atomic(&path).unwrap();
        let mut r = SnapshotReader::read(&path, 7).unwrap();
        assert_eq!(r.u64().unwrap(), 0xDEAD_BEEF);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            SnapshotReader::read(&path, 7),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn garbage_is_bad_magic() {
        assert_eq!(
            SnapshotReader::from_bytes(b"not a snapshot at all", 1).unwrap_err(),
            SnapshotError::BadMagic
        );
    }
}
