//! Panic-isolated, retrying, cancel-aware chunked execution.
//!
//! [`Supervisor::run_chunks`] is the one fork-join primitive shared by
//! the exploration and monitoring engines: a *stage* is split into
//! `chunks` independent units of work; each unit runs under
//! `catch_unwind`, is retried with deterministic exponential backoff +
//! jitter when it panics, and is reported as a [`ChunkFailure`] when the
//! retries are exhausted — the run carries on with the surviving
//! chunks. Application-level errors (`Err` returned by the chunk
//! closure) are *not* retried: they are deterministic analysis failures
//! and propagate immediately, smallest chunk index first.
//!
//! Completed chunk results are merged in ascending chunk order, so the
//! output of a supervised stage is bit-identical for every worker
//! thread count — and bit-identical to the unsupervised engines
//! whenever no chunk was dropped.

use crate::cancel::CancelToken;
#[cfg(feature = "chaos")]
use crate::chaos::FaultPlan;
use fsa_obs::Obs;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(feature = "chaos")]
use std::sync::Arc;
use std::time::Duration;

/// Retry discipline for panicked chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first panicking attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Base backoff delay; attempt `k` waits `base · 2^k` plus jitter.
    pub base_delay: Duration,
    /// Upper bound on the exponential part of the backoff.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter (same seed ⇒ same delays).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0xEC5,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retry `attempt` (0-based) of
    /// `chunk` in `stage`: `min(base · 2^attempt, max)` plus a seeded
    /// jitter in `[0, base)`.
    #[must_use]
    pub fn backoff(&self, stage: &str, chunk: usize, attempt: u32) -> Duration {
        let base = self.base_delay.as_nanos() as u64;
        let exp = base
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay.as_nanos() as u64);
        let jitter = if base == 0 {
            0
        } else {
            splitmix(
                self.seed ^ fnv(stage.as_bytes()) ^ (chunk as u64) ^ (u64::from(attempt) << 32),
            ) % base
        };
        Duration::from_nanos(exp.saturating_add(jitter))
    }
}

/// One quarantined chunk: every attempt panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFailure {
    /// Stage label (e.g. `explore:build`, `fleet:stream`).
    pub stage: String,
    /// Chunk index within the stage.
    pub chunk: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The panic payload of the last attempt, rendered.
    pub message: String,
}

impl fmt::Display for ChunkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chunk {} failed after {} attempt(s): {}",
            self.stage, self.chunk, self.attempts, self.message
        )
    }
}

/// Result of one supervised stage.
#[derive(Debug, Clone)]
pub struct Outcome<T> {
    /// `(chunk index, value)` for every completed chunk, ascending.
    pub results: Vec<(usize, T)>,
    /// Quarantined chunks (retries exhausted), ascending by index.
    pub failures: Vec<ChunkFailure>,
    /// `true` if the stage stopped early at a chunk boundary because
    /// the [`CancelToken`] tripped; chunks never started are neither in
    /// `results` nor in `failures`.
    pub cancelled: bool,
    /// Chunks the stage was asked to run.
    pub chunks_total: usize,
    /// Total panicking attempts that were retried.
    pub retries: u64,
}

impl<T> Outcome<T> {
    /// `true` when every chunk completed (nothing dropped, nothing
    /// cancelled) — the merged output is then bit-identical to an
    /// unsupervised run.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.chunks_total
    }

    /// The completed values in chunk order, discarding the indices.
    #[must_use]
    pub fn into_values(self) -> Vec<T> {
        self.results.into_iter().map(|(_, v)| v).collect()
    }
}

/// Supervision *policy*: retry discipline, cancellation, and (under the
/// `chaos` feature) a deterministic fault plan. Thread counts are
/// passed per stage — the supervisor owns behaviour, not resources.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    /// Retry discipline for panicked chunks.
    pub retry: RetryPolicy,
    /// Cooperative cancellation, checked at chunk boundaries.
    pub cancel: CancelToken,
    /// Observability handle. The default ([`Obs::disabled`]) records
    /// nothing and costs one branch per event; an enabled handle counts
    /// per-chunk attempts, retries, backoff delay (log2 histogram), and
    /// quarantine events.
    pub obs: Obs,
    #[cfg(feature = "chaos")]
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Supervisor {
    /// A supervisor with the default retry policy and a token that
    /// never cancels.
    #[must_use]
    pub fn new() -> Self {
        Supervisor::default()
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Installs an observability handle (see [`Obs`]).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a deterministic fault plan (chaos testing only).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Runs `chunks` units of `stage` over `threads` workers, each unit
    /// panic-isolated and retried per [`RetryPolicy`].
    ///
    /// Chunk indices are handed out through a shared counter (work
    /// stealing), but results are merged in ascending chunk order, so
    /// the outcome does not depend on `threads`.
    ///
    /// # Errors
    ///
    /// The first (smallest chunk index) application-level `Err` returned
    /// by `f`; remaining workers stop at the next chunk boundary.
    pub fn run_chunks<T, E, F>(
        &self,
        stage: &str,
        threads: usize,
        chunks: usize,
        f: F,
    ) -> Result<Outcome<T>, E>
    where
        F: Fn(usize) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        let threads = threads.max(1).min(chunks.max(1));
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);

        let worker = |local: &mut WorkerState<T, E>| loop {
            if abort.load(Ordering::SeqCst) {
                return;
            }
            if self.cancel.is_cancelled() {
                local.cancelled = true;
                return;
            }
            let chunk = next.fetch_add(1, Ordering::SeqCst);
            if chunk >= chunks {
                return;
            }
            match self.run_one(stage, chunk, &f, &mut local.retries) {
                ChunkRun::Done(v) => local.results.push((chunk, v)),
                ChunkRun::Failed(failure) => local.failures.push(failure),
                ChunkRun::Error(e) => {
                    local.errors.push((chunk, e));
                    abort.store(true, Ordering::SeqCst);
                    return;
                }
            }
        };

        let mut states: Vec<WorkerState<T, E>> = if threads <= 1 || chunks < 2 {
            let mut state = WorkerState::default();
            worker(&mut state);
            vec![state]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let worker = &worker;
                        scope.spawn(move || {
                            let mut state = WorkerState::default();
                            worker(&mut state);
                            state
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Unreachable in practice: the worker loop catches
                    // chunk panics itself. Treat a harness-level panic
                    // as an empty worker.
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            })
        };

        let mut errors: Vec<(usize, E)> = states
            .iter_mut()
            .flat_map(|s| std::mem::take(&mut s.errors))
            .collect();
        if !errors.is_empty() {
            errors.sort_by_key(|(chunk, _)| *chunk);
            return Err(errors.remove(0).1);
        }

        let mut results = Vec::with_capacity(chunks);
        let mut failures = Vec::new();
        let mut retries = 0u64;
        let mut cancelled = false;
        for state in states {
            results.extend(state.results);
            failures.extend(state.failures);
            retries += state.retries;
            cancelled |= state.cancelled;
        }
        results.sort_by_key(|(chunk, _)| *chunk);
        failures.sort_by_key(|failure| failure.chunk);
        if cancelled {
            self.obs.counter_add("supervisor.cancelled_stages", 1);
        }
        Ok(Outcome {
            results,
            failures,
            cancelled,
            chunks_total: chunks,
            retries,
        })
    }

    /// Per-chunk accounting: one `supervisor.chunks` tick plus the
    /// number of attempts the chunk consumed (1 when nothing panicked).
    fn record_chunk_done(&self, attempts: u32) {
        self.obs.counter_add("supervisor.chunks", 1);
        self.obs
            .counter_add("supervisor.attempts", u64::from(attempts));
    }

    /// One chunk: fault-plan hooks, `catch_unwind`, retry loop.
    fn run_one<T, E, F>(
        &self,
        stage: &str,
        chunk: usize,
        f: &F,
        retries: &mut u64,
    ) -> ChunkRun<T, E>
    where
        F: Fn(usize) -> Result<T, E>,
    {
        let mut attempt = 0u32;
        loop {
            let run = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.fault_plan {
                    plan.before_attempt(stage, chunk, attempt);
                }
                f(chunk)
            }));
            match run {
                Ok(Ok(v)) => {
                    self.record_chunk_done(attempt + 1);
                    return ChunkRun::Done(v);
                }
                Ok(Err(e)) => {
                    self.record_chunk_done(attempt + 1);
                    return ChunkRun::Error(e);
                }
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    if attempt >= self.retry.max_retries {
                        self.record_chunk_done(attempt + 1);
                        self.obs.counter_add("supervisor.quarantined", 1);
                        return ChunkRun::Failed(ChunkFailure {
                            stage: stage.to_owned(),
                            chunk,
                            attempts: attempt + 1,
                            message,
                        });
                    }
                    let delay = self.retry.backoff(stage, chunk, attempt);
                    self.obs.counter_add("supervisor.retries", 1);
                    self.obs.record_duration("supervisor.backoff", delay);
                    std::thread::sleep(delay);
                    *retries += 1;
                    attempt += 1;
                }
            }
        }
    }
}

/// Per-worker accumulation; merged deterministically after the join.
struct WorkerState<T, E> {
    results: Vec<(usize, T)>,
    failures: Vec<ChunkFailure>,
    errors: Vec<(usize, E)>,
    retries: u64,
    cancelled: bool,
}

impl<T, E> Default for WorkerState<T, E> {
    fn default() -> Self {
        WorkerState {
            results: Vec::new(),
            failures: Vec::new(),
            errors: Vec::new(),
            retries: 0,
            cancelled: false,
        }
    }
}

enum ChunkRun<T, E> {
    Done(T),
    Failed(ChunkFailure),
    Error(E),
}

/// Renders a panic payload (the common `&str` / `String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// FNV-1a over bytes (stage-label hashing for jitter derivation).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// splitmix64 finaliser (deterministic jitter).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(sup: &Supervisor, threads: usize, chunks: usize) -> Outcome<usize> {
        sup.run_chunks::<usize, (), _>("test:squares", threads, chunks, |i| Ok(i * i))
            .expect("no app errors")
    }

    #[test]
    fn merge_is_in_chunk_order_for_every_thread_count() {
        let sup = Supervisor::new();
        let golden = squares(&sup, 1, 37);
        assert!(golden.is_complete());
        for threads in [2usize, 4, 8] {
            let out = squares(&sup, threads, 37);
            assert!(out.is_complete());
            assert_eq!(out.results, golden.results, "threads {threads}");
        }
        assert_eq!(
            golden.into_values(),
            (0..37).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_chunks_is_a_complete_empty_outcome() {
        let out = squares(&Supervisor::new(), 4, 0);
        assert!(out.is_complete());
        assert!(out.results.is_empty());
        assert!(!out.cancelled);
    }

    #[test]
    fn app_error_propagates_smallest_chunk_first() {
        let sup = Supervisor::new();
        for threads in [1usize, 4] {
            let err = sup
                .run_chunks::<usize, usize, _>("test:err", threads, 64, |i| {
                    if i % 7 == 3 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                })
                .unwrap_err();
            // Sequential: chunk 3 errors first. Parallel: some erroring
            // chunk surfaces; the smallest *observed* one is returned.
            assert_eq!(err % 7, 3, "threads {threads}");
            if threads == 1 {
                assert_eq!(err, 3);
            }
        }
    }

    #[test]
    fn panicking_chunk_is_quarantined_not_fatal() {
        let sup = Supervisor::new().with_retry(RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        });
        for threads in [1usize, 4] {
            let out = sup
                .run_chunks::<usize, (), _>("test:panic", threads, 16, |i| {
                    assert!(i != 5, "chunk 5 always panics");
                    Ok(i)
                })
                .expect("panics are not app errors");
            assert!(!out.is_complete());
            assert_eq!(out.results.len(), 15, "threads {threads}");
            assert!(out.results.iter().all(|&(c, v)| c == v && c != 5));
            assert_eq!(out.failures.len(), 1);
            let failure = &out.failures[0];
            assert_eq!((failure.chunk, failure.attempts), (5, 2));
            assert!(failure.message.contains("chunk 5 always panics"));
            assert!(failure.to_string().contains("test:panic chunk 5"));
            assert_eq!(out.retries, 1);
        }
    }

    #[test]
    fn retry_heals_transient_panics() {
        use std::sync::Mutex;
        let attempts: Mutex<std::collections::HashMap<usize, u32>> = Mutex::new(Default::default());
        let sup = Supervisor::new().with_retry(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        });
        let out = sup
            .run_chunks::<usize, (), _>("test:transient", 1, 8, |i| {
                // A panicking attempt poisons the mutex; recovery is
                // exactly what the retry is for.
                let mut map = attempts
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let seen = map.entry(i).or_insert(0);
                *seen += 1;
                assert!(i != 3 || *seen > 2, "chunk 3 panics twice, then heals");
                Ok(i)
            })
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.retries, 2);
        assert!(out.failures.is_empty());
    }

    #[test]
    fn cancellation_stops_at_chunk_boundaries() {
        let sup = Supervisor::new().with_cancel(CancelToken::countdown(5));
        let out = squares(&sup, 1, 100);
        assert!(out.cancelled);
        assert!(!out.is_complete());
        // Exactly 5 boundary checks passed before the trip.
        assert_eq!(out.results.len(), 5);
        assert_eq!(
            out.results,
            (0..5).map(|i| (i, i * i)).collect::<Vec<_>>(),
            "the completed prefix is the canonical prefix"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            let a = p.backoff("stage", 7, attempt);
            let b = p.backoff("stage", 7, attempt);
            assert_eq!(a, b, "same inputs, same delay");
            assert!(a <= p.max_delay + p.base_delay);
        }
        assert_ne!(
            p.backoff("stage", 1, 0),
            p.backoff("stage", 2, 0),
            "jitter separates chunks"
        );
        let grow0 = p.backoff("s", 0, 0);
        let grow4 = p.backoff("s", 0, 4);
        assert!(grow4 > grow0, "exponential part grows");
    }

    #[test]
    fn observability_counts_attempts_retries_and_quarantines() {
        let obs = Obs::enabled();
        let sup = Supervisor::new()
            .with_retry(RetryPolicy {
                max_retries: 1,
                base_delay: Duration::from_micros(10),
                ..RetryPolicy::default()
            })
            .with_obs(obs.clone());
        let out = sup
            .run_chunks::<usize, (), _>("test:obs", 2, 8, |i| {
                assert!(i != 5, "chunk 5 always panics");
                Ok(i)
            })
            .expect("panics are not app errors");
        assert_eq!(out.failures.len(), 1);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("supervisor.chunks"), Some(8));
        // 7 clean chunks × 1 attempt + chunk 5 × 2 attempts.
        assert_eq!(snap.counter("supervisor.attempts"), Some(9));
        assert_eq!(snap.counter("supervisor.retries"), Some(1));
        assert_eq!(snap.counter("supervisor.quarantined"), Some(1));
        let hist = snap.histogram("supervisor.backoff").expect("one delay");
        assert_eq!(hist.count, 1);
        assert!(hist.min_ns >= 10_000, "backoff >= base delay");
    }

    #[test]
    fn observability_disabled_by_default_records_nothing() {
        let sup = Supervisor::new();
        assert!(!sup.obs.is_enabled());
        let out = squares(&sup, 2, 16);
        assert!(out.is_complete());
        assert!(sup.obs.snapshot().counters.is_empty());
    }
}
