//! Deterministic fault injection for the supervisor (feature `chaos`).
//!
//! Mirrors the design of `apa::sim::Fault`: a fault plan is a
//! *deterministic transform* of an otherwise honest execution, so every
//! chaos property test is exactly reproducible. Two fault shapes:
//!
//! * [`FaultKind::Panic`] — the targeted `(stage, chunk)` panics on its
//!   first `times` attempts, then heals. With `times <=` the
//!   supervisor's retry budget the final report must be bit-identical
//!   to an unfaulted run; with `times` beyond it the chunk must be
//!   quarantined as a `ChunkFailure` without aborting the run.
//! * [`FaultKind::Delay`] — the targeted `(stage, chunk)` sleeps before
//!   running, exercising deadline expiry at chunk boundaries.
//!
//! [`FaultPlan::seeded`] sprays probabilistic (but seed-deterministic)
//! single-attempt panics across all chunks of matching stages — the
//! large-scale soak used by the chaos property tests.

use std::time::Duration;

/// What an injected fault does to its targeted attempt(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on attempts `0..times`, then heal.
    Panic {
        /// Number of leading attempts that panic.
        times: u32,
    },
    /// Sleep `ms` milliseconds before every attempt.
    Delay {
        /// Delay in milliseconds.
        ms: u64,
    },
}

#[derive(Debug, Clone)]
struct InjectedFault {
    stage: String,
    chunk: usize,
    kind: FaultKind,
}

/// A deterministic chaos plan consulted by the supervisor inside
/// `catch_unwind`, before each chunk attempt.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
    seeded: Option<Seeded>,
}

#[derive(Debug, Clone)]
struct Seeded {
    seed: u64,
    stage_prefix: String,
    /// Panic probability in percent for a chunk's first attempt.
    panic_percent: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic the first `times` attempts of `(stage, chunk)`.
    #[must_use]
    pub fn panic_on(mut self, stage: &str, chunk: usize, times: u32) -> Self {
        self.faults.push(InjectedFault {
            stage: stage.to_owned(),
            chunk,
            kind: FaultKind::Panic { times },
        });
        self
    }

    /// Sleep `ms` milliseconds before every attempt of
    /// `(stage, chunk)`.
    #[must_use]
    pub fn delay_on(mut self, stage: &str, chunk: usize, ms: u64) -> Self {
        self.faults.push(InjectedFault {
            stage: stage.to_owned(),
            chunk,
            kind: FaultKind::Delay { ms },
        });
        self
    }

    /// Seed-deterministically panic the *first* attempt of roughly
    /// `panic_percent`% of the chunks whose stage starts with
    /// `stage_prefix`. First attempts only — a retry budget of one
    /// already heals every injected panic.
    #[must_use]
    pub fn seeded(mut self, seed: u64, stage_prefix: &str, panic_percent: u64) -> Self {
        self.seeded = Some(Seeded {
            seed,
            stage_prefix: stage_prefix.to_owned(),
            panic_percent: panic_percent.min(100),
        });
        self
    }

    /// Supervisor hook: called inside `catch_unwind` before attempt
    /// `attempt` of `(stage, chunk)`.
    ///
    /// # Panics
    ///
    /// Deliberately — that is the point of a chaos plan.
    pub fn before_attempt(&self, stage: &str, chunk: usize, attempt: u32) {
        for fault in &self.faults {
            if fault.stage != stage || fault.chunk != chunk {
                continue;
            }
            match fault.kind {
                FaultKind::Delay { ms } => std::thread::sleep(Duration::from_millis(ms)),
                FaultKind::Panic { times } => {
                    assert!(
                        attempt >= times,
                        "chaos: injected panic in {stage} chunk {chunk} attempt {attempt}"
                    );
                }
            }
        }
        if let Some(seeded) = &self.seeded {
            if attempt == 0
                && stage.starts_with(&seeded.stage_prefix)
                && splitmix(seeded.seed ^ fnv(stage.as_bytes()) ^ (chunk as u64)) % 100
                    < seeded.panic_percent
            {
                panic!("chaos: seeded panic in {stage} chunk {chunk}");
            }
        }
    }
}

/// FNV-1a over bytes.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// splitmix64 finaliser.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{RetryPolicy, Supervisor};

    fn fast_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn healed_panic_leaves_output_bit_identical() {
        let golden = Supervisor::new()
            .run_chunks::<usize, (), _>("stage", 1, 10, |i| Ok(i + 100))
            .unwrap();
        for threads in [1usize, 4] {
            let sup = Supervisor::new()
                .with_retry(fast_retry(2))
                .with_fault_plan(FaultPlan::new().panic_on("stage", 4, 2));
            let out = sup
                .run_chunks::<usize, (), _>("stage", threads, 10, |i| Ok(i + 100))
                .unwrap();
            assert!(out.is_complete(), "threads {threads}");
            assert_eq!(out.results, golden.results);
            assert_eq!(out.retries, 2);
            assert!(out.failures.is_empty());
        }
    }

    #[test]
    fn exhausted_retries_quarantine_only_the_faulted_chunk() {
        let sup = Supervisor::new()
            .with_retry(fast_retry(1))
            .with_fault_plan(FaultPlan::new().panic_on("stage", 3, u32::MAX));
        let out = sup.run_chunks::<usize, (), _>("stage", 2, 8, Ok).unwrap();
        assert_eq!(out.results.len(), 7);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].chunk, 3);
        assert!(out.failures[0].message.contains("chaos"));
    }

    #[test]
    fn faults_target_stage_and_chunk_precisely() {
        let plan = FaultPlan::new().panic_on("a", 1, u32::MAX);
        plan.before_attempt("b", 1, 0); // different stage: no panic
        plan.before_attempt("a", 2, 0); // different chunk: no panic
        let caught = std::panic::catch_unwind(|| plan.before_attempt("a", 1, 0));
        assert!(caught.is_err());
    }

    #[test]
    fn seeded_spray_is_deterministic_and_healed_by_one_retry() {
        let golden = Supervisor::new()
            .run_chunks::<usize, (), _>("soak:x", 1, 64, |i| Ok(i * 3))
            .unwrap();
        let sup = Supervisor::new()
            .with_retry(fast_retry(1))
            .with_fault_plan(FaultPlan::new().seeded(0xC0FFEE, "soak:", 30));
        let a = sup
            .run_chunks::<usize, (), _>("soak:x", 4, 64, |i| Ok(i * 3))
            .unwrap();
        assert!(a.is_complete());
        assert_eq!(a.results, golden.results);
        assert!(a.retries > 0, "the spray hit something");
        let b = sup
            .run_chunks::<usize, (), _>("soak:x", 4, 64, |i| Ok(i * 3))
            .unwrap();
        assert_eq!(a.retries, b.retries, "same seed, same injected panics");
    }

    #[test]
    fn delay_fault_sleeps_without_failing() {
        let sup = Supervisor::new().with_fault_plan(FaultPlan::new().delay_on("stage", 0, 1));
        let out = sup.run_chunks::<usize, (), _>("stage", 1, 2, Ok).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.retries, 0);
    }
}
