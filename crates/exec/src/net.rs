//! Deterministic network fault injection (feature `chaos`).
//!
//! The transport-level sibling of [`crate::chaos::FaultPlan`]: a
//! seeded, splitmix-derived schedule of network misbehaviour applied
//! to an otherwise honest byte stream, so every chaos property test
//! over the wire protocols is reproducible. Two injection points:
//!
//! * [`ChaosStream`] wraps any `Read + Write` transport and decides,
//!   per I/O operation, whether to stall, trickle (1-byte writes),
//!   short-read, cut the connection mid-stream, inject garbage bytes
//!   into the read path, or duplicate a write. The benign subset
//!   (stall/trickle/short-read) must *heal*: a peer hardened with
//!   per-frame deadlines sees bit-identical traffic, only slower.
//!   The cutting/corrupting faults must surface as *typed* errors —
//!   never a hang, panic, or silently wrong payload.
//! * [`ChaosProxy`] is a frame-aware TCP man-in-the-middle for
//!   protocols built on `fsa-wire/v1` 4-byte big-endian length
//!   prefixes: it forwards whole frames and decides per frame whether
//!   to stall, trickle, truncate-and-cut, duplicate, corrupt a
//!   payload byte, or drop the connection. It sits between real
//!   peers (serve client⇄server, dist worker⇄coordinator) without
//!   either side cooperating.
//!
//! Determinism caveat: decisions are a pure function of `(seed, op
//! index)` (or `(seed, connection, direction, frame index)` for the
//! proxy), so a run is reproducible exactly when the peer issues the
//! same operation sequence — true for the in-memory streams used by
//! the unit tests, and true in distribution (same fault mix) for
//! timeout-polling TCP peers.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// splitmix64 finaliser (same derivation as [`crate::chaos`]).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-operation fault probabilities (percent) for a [`ChaosStream`].
///
/// Reads and writes draw from the same seeded sequence, one decision
/// per operation. Presets: [`ChaosConfig::benign`] only slows traffic
/// down (a hardened peer heals bit-identically), [`ChaosConfig::lossy`]
/// adds mid-stream cuts (typed transport errors), and
/// [`ChaosConfig::hostile`] adds garbage injection and frame
/// duplication (typed protocol errors).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the decision sequence.
    pub seed: u64,
    /// Probability of sleeping [`ChaosConfig::stall_ms`] before an op.
    pub stall_pct: u64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a write forwards only its first byte.
    pub trickle_pct: u64,
    /// Probability a read returns at most one byte.
    pub short_read_pct: u64,
    /// Probability the connection is cut at this op (and stays cut).
    pub cut_pct: u64,
    /// Probability a read is replaced by 1–4 garbage bytes.
    pub garbage_pct: u64,
    /// Probability a write is duplicated wholesale.
    pub dup_pct: u64,
}

impl ChaosConfig {
    /// Slow-but-honest traffic: stalls, trickles, short reads.
    #[must_use]
    pub fn benign(seed: u64) -> Self {
        ChaosConfig {
            seed,
            stall_pct: 20,
            stall_ms: 2,
            trickle_pct: 30,
            short_read_pct: 30,
            cut_pct: 0,
            garbage_pct: 0,
            dup_pct: 0,
        }
    }

    /// Benign faults plus mid-stream disconnects.
    #[must_use]
    pub fn lossy(seed: u64) -> Self {
        ChaosConfig {
            cut_pct: 3,
            ..ChaosConfig::benign(seed)
        }
    }

    /// Lossy faults plus garbage injection and duplicated writes.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        ChaosConfig {
            garbage_pct: 4,
            dup_pct: 4,
            ..ChaosConfig::lossy(seed)
        }
    }
}

/// How many times each fault kind actually fired on a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiredCounts {
    /// Read/write stalls.
    pub stalls: u64,
    /// 1-byte trickled writes.
    pub trickles: u64,
    /// Short (≤ 1 byte) reads.
    pub short_reads: u64,
    /// Mid-stream cuts (at most 1).
    pub cuts: u64,
    /// Garbage-byte injections.
    pub garbage: u64,
    /// Duplicated writes.
    pub dups: u64,
}

/// A `Read + Write` wrapper applying a seeded fault schedule.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    cfg: ChaosConfig,
    ops: u64,
    cut: bool,
    fired: FiredCounts,
}

enum Fault {
    None,
    Stall,
    Trickle,
    ShortRead,
    Cut,
    Garbage,
    Dup,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `cfg`'s fault schedule.
    pub fn new(inner: S, cfg: ChaosConfig) -> Self {
        ChaosStream {
            inner,
            cfg,
            ops: 0,
            cut: false,
            fired: FiredCounts::default(),
        }
    }

    /// Which faults fired so far.
    #[must_use]
    pub fn fired(&self) -> FiredCounts {
        self.fired
    }

    /// Whether a cut fault severed the stream.
    #[must_use]
    pub fn was_cut(&self) -> bool {
        self.cut
    }

    /// Whether a *corrupting* fault (garbage, duplication) fired —
    /// after which byte-identity with the fault-free run is off the
    /// table and only "typed error" remains a valid outcome.
    #[must_use]
    pub fn corrupted(&self) -> bool {
        self.fired.garbage > 0 || self.fired.dups > 0
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Draws the next fault decision. Fault categories are checked in
    /// a fixed order against disjoint slices of the roll, so at most
    /// one fault fires per operation.
    fn roll(&mut self, read_side: bool) -> Fault {
        self.ops += 1;
        let roll = splitmix(self.cfg.seed ^ self.ops.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 100;
        let mut lo = 0u64;
        let mut hit = |pct: u64| {
            let yes = pct > 0 && roll >= lo && roll < lo + pct;
            lo += pct;
            yes
        };
        if hit(self.cfg.stall_pct) {
            return Fault::Stall;
        }
        if hit(self.cfg.cut_pct) {
            return Fault::Cut;
        }
        if read_side {
            if hit(self.cfg.short_read_pct) {
                return Fault::ShortRead;
            }
            if hit(self.cfg.garbage_pct) {
                return Fault::Garbage;
            }
        } else {
            if hit(self.cfg.trickle_pct) {
                return Fault::Trickle;
            }
            if hit(self.cfg.dup_pct) {
                return Fault::Dup;
            }
        }
        Fault::None
    }

    fn cut_error(&mut self) -> io::Error {
        self.cut = true;
        self.fired.cuts += 1;
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected cut")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: stream was cut",
            ));
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        match self.roll(true) {
            Fault::Stall => {
                self.fired.stalls += 1;
                thread::sleep(Duration::from_millis(self.cfg.stall_ms));
                self.inner.read(buf)
            }
            Fault::Cut => Err(self.cut_error()),
            Fault::ShortRead => {
                self.fired.short_reads += 1;
                self.inner.read(&mut buf[..1])
            }
            Fault::Garbage => {
                self.fired.garbage += 1;
                let n = (1 + (splitmix(self.cfg.seed ^ self.ops) % 4) as usize).min(buf.len());
                for (i, slot) in buf[..n].iter_mut().enumerate() {
                    *slot = (splitmix(self.cfg.seed ^ self.ops ^ (i as u64) << 32) & 0xFF) as u8;
                }
                Ok(n)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: stream was cut",
            ));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match self.roll(false) {
            Fault::Stall => {
                self.fired.stalls += 1;
                thread::sleep(Duration::from_millis(self.cfg.stall_ms));
                self.inner.write(buf)
            }
            Fault::Cut => Err(self.cut_error()),
            Fault::Trickle => {
                self.fired.trickles += 1;
                self.inner.write(&buf[..1])
            }
            Fault::Dup => {
                self.fired.dups += 1;
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Per-frame fault probabilities (percent) for a [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct ProxyFaults {
    /// Seed; each (connection, direction) derives its own sequence.
    pub seed: u64,
    /// Probability a frame is delayed by [`ProxyFaults::stall_ms`].
    pub stall_pct: u64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a frame is forwarded one byte at a time.
    pub trickle_pct: u64,
    /// Probability a frame is truncated mid-payload and the
    /// connection cut.
    pub truncate_pct: u64,
    /// Probability a frame is forwarded twice.
    pub dup_pct: u64,
    /// Probability one payload byte is flipped.
    pub corrupt_pct: u64,
    /// Probability the connection is cut instead of forwarding.
    pub cut_pct: u64,
    /// Frame-size cap; larger prefixes cut the connection.
    pub max_frame: usize,
}

impl ProxyFaults {
    /// Frames are delayed and trickled but always delivered intact.
    #[must_use]
    pub fn benign(seed: u64) -> Self {
        ProxyFaults {
            seed,
            stall_pct: 20,
            stall_ms: 2,
            trickle_pct: 25,
            truncate_pct: 0,
            dup_pct: 0,
            corrupt_pct: 0,
            cut_pct: 0,
            max_frame: 16 << 20,
        }
    }

    /// Benign plus connection cuts and truncated frames.
    #[must_use]
    pub fn lossy(seed: u64) -> Self {
        ProxyFaults {
            truncate_pct: 3,
            cut_pct: 3,
            ..ProxyFaults::benign(seed)
        }
    }

    /// Lossy plus duplicated and corrupted frames.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        ProxyFaults {
            dup_pct: 3,
            corrupt_pct: 3,
            ..ProxyFaults::lossy(seed)
        }
    }
}

/// A frame-aware chaos TCP proxy for `fsa-wire/v1` traffic.
///
/// Listens on an ephemeral local port; every accepted connection is
/// paired with a fresh upstream connection and pumped in both
/// directions, one whole length-prefixed frame at a time, through the
/// per-frame fault schedule. Dropping the proxy stops the accept
/// loop and severs the connections it created.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy forwarding to `upstream`.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the local listener cannot be bound.
    pub fn start(upstream: SocketAddr, faults: ProxyFaults) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept = thread::spawn(move || {
            let mut conn_id = 0u64;
            while !stop_accept.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        conn_id += 1;
                        let faults = faults.clone();
                        let stop = Arc::clone(&stop_accept);
                        let id = conn_id;
                        thread::spawn(move || {
                            pump_connection(client, upstream, id, &faults, &stop)
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address (point clients/workers here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn pump_connection(
    client: TcpStream,
    upstream: SocketAddr,
    conn_id: u64,
    faults: &ProxyFaults,
    stop: &Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let fwd_faults = faults.clone();
    let fwd_stop = Arc::clone(stop);
    let fwd = thread::spawn(move || {
        pump_frames(client, server, conn_id, 0, &fwd_faults, &fwd_stop);
    });
    pump_frames(s2, c2, conn_id, 1, faults, stop);
    let _ = fwd.join();
}

/// Pumps whole frames `from` → `to` until EOF, error, stop, or an
/// injected cut. Cuts sever both directions by shutting the sockets.
fn pump_frames(
    mut from: TcpStream,
    mut to: TcpStream,
    conn_id: u64,
    direction: u64,
    faults: &ProxyFaults,
    stop: &Arc<AtomicBool>,
) {
    from.set_read_timeout(Some(Duration::from_millis(50))).ok();
    let seed =
        splitmix(faults.seed ^ (conn_id << 1 | direction).wrapping_mul(0xA076_1D64_78BD_642F));
    let cut_both = |from: &TcpStream, to: &TcpStream| {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    };
    let mut frame_id = 0u64;
    loop {
        let mut prefix = [0u8; 4];
        if !read_exact_polling(&mut from, &mut prefix, stop) {
            cut_both(&from, &to);
            return;
        }
        let len = u32::from_be_bytes(prefix) as usize;
        if len > faults.max_frame {
            cut_both(&from, &to);
            return;
        }
        let mut payload = vec![0u8; len];
        if !read_exact_polling(&mut from, &mut payload, stop) {
            cut_both(&from, &to);
            return;
        }
        frame_id += 1;
        let roll = splitmix(seed ^ frame_id) % 100;
        let mut lo = 0u64;
        let mut hit = |pct: u64| {
            let yes = pct > 0 && roll >= lo && roll < lo + pct;
            lo += pct;
            yes
        };
        let forward = |to: &mut TcpStream, prefix: &[u8], payload: &[u8]| -> bool {
            to.write_all(prefix).is_ok() && to.write_all(payload).is_ok() && to.flush().is_ok()
        };
        let ok = if hit(faults.cut_pct) {
            cut_both(&from, &to);
            return;
        } else if hit(faults.truncate_pct) {
            let _ = to.write_all(&prefix);
            let _ = to.write_all(&payload[..len / 2]);
            let _ = to.flush();
            cut_both(&from, &to);
            return;
        } else if hit(faults.stall_pct) {
            thread::sleep(Duration::from_millis(faults.stall_ms));
            forward(&mut to, &prefix, &payload)
        } else if hit(faults.trickle_pct) {
            let mut whole: VecDeque<u8> = prefix.iter().chain(payload.iter()).copied().collect();
            let mut ok = true;
            while let Some(byte) = whole.pop_front() {
                if to.write_all(&[byte]).is_err() {
                    ok = false;
                    break;
                }
            }
            ok && to.flush().is_ok()
        } else if hit(faults.dup_pct) {
            forward(&mut to, &prefix, &payload) && forward(&mut to, &prefix, &payload)
        } else if hit(faults.corrupt_pct) {
            if !payload.is_empty() {
                let at = (splitmix(seed ^ frame_id ^ 0xC0FF) as usize) % payload.len();
                payload[at] ^= 0x55;
            }
            forward(&mut to, &prefix, &payload)
        } else {
            forward(&mut to, &prefix, &payload)
        };
        if !ok {
            cut_both(&from, &to);
            return;
        }
    }
}

/// Blocking-with-timeout exact read; `false` on EOF, error, or stop.
fn read_exact_polling(from: &mut TcpStream, buf: &mut [u8], stop: &Arc<AtomicBool>) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match from.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory full-duplex stand-in: reads drain a script,
    /// writes accumulate.
    struct Scripted {
        incoming: VecDeque<u8>,
        outgoing: Vec<u8>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.incoming.len());
            for slot in &mut buf[..n] {
                *slot = self.incoming.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.outgoing.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(cfg: ChaosConfig) -> (Result<Vec<u8>, io::ErrorKind>, Vec<u8>, FiredCounts) {
        let inner = Scripted {
            incoming: (0u8..64).collect(),
            outgoing: Vec::new(),
        };
        let mut stream = ChaosStream::new(inner, cfg);
        let run = (|| {
            stream.write_all(b"hello fault plan")?;
            let mut got = vec![0u8; 64];
            stream.read_exact(&mut got)?;
            Ok(got)
        })();
        let fired = stream.fired();
        (
            run.map_err(|e: io::Error| e.kind()),
            stream.inner.outgoing,
            fired,
        )
    }

    #[test]
    fn benign_chaos_heals_bit_identically() {
        let mut fired_anything = false;
        for seed in 0..32 {
            let (read_back, written, fired) = drive(ChaosConfig::benign(seed));
            assert_eq!(read_back.unwrap(), (0u8..64).collect::<Vec<u8>>());
            assert_eq!(written, b"hello fault plan");
            assert_eq!(fired.cuts + fired.garbage + fired.dups, 0);
            fired_anything |= fired.stalls + fired.trickles + fired.short_reads > 0;
        }
        assert!(fired_anything, "the benign spray hit something");
    }

    #[test]
    fn cut_streams_error_and_stay_cut() {
        let mut cut_seen = false;
        for seed in 0..64 {
            let cfg = ChaosConfig {
                cut_pct: 30,
                ..ChaosConfig::benign(seed)
            };
            let inner = Scripted {
                incoming: (0u8..32).collect(),
                outgoing: Vec::new(),
            };
            let mut stream = ChaosStream::new(inner, cfg);
            let mut buf = [0u8; 32];
            let outcome = stream
                .write_all(b"x".repeat(40).as_slice())
                .and_then(|()| stream.read_exact(&mut buf));
            if stream.was_cut() {
                cut_seen = true;
                assert_eq!(outcome.unwrap_err().kind(), io::ErrorKind::ConnectionReset);
                let mut again = [0u8; 1];
                assert!(stream.read(&mut again).is_err(), "cuts are permanent");
            }
        }
        assert!(cut_seen, "30% over 64 seeds must cut at least once");
    }

    #[test]
    fn same_seed_fires_the_same_faults() {
        for seed in [0u64, 7, 0xC0FFEE] {
            let (out_a, wrote_a, fired_a) = drive(ChaosConfig::hostile(seed));
            let (out_b, wrote_b, fired_b) = drive(ChaosConfig::hostile(seed));
            assert_eq!(fired_a, fired_b);
            assert_eq!(wrote_a, wrote_b);
            assert_eq!(out_a.is_ok(), out_b.is_ok());
        }
    }

    #[test]
    fn hostile_corruption_is_flagged() {
        let mut corrupted_seen = false;
        for seed in 0..64 {
            let cfg = ChaosConfig {
                garbage_pct: 25,
                dup_pct: 25,
                cut_pct: 0,
                ..ChaosConfig::benign(seed)
            };
            let inner = Scripted {
                incoming: (0u8..32).collect(),
                outgoing: Vec::new(),
            };
            let mut stream = ChaosStream::new(inner, cfg);
            let _ = stream.write_all(b"abcdef");
            let mut buf = [0u8; 8];
            let _ = stream.read_exact(&mut buf);
            corrupted_seen |= stream.corrupted();
        }
        assert!(corrupted_seen);
    }

    #[test]
    fn proxy_forwards_frames_bidirectionally() {
        // Echo server speaking raw fsa-wire framing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut prefix = [0u8; 4];
            conn.read_exact(&mut prefix).unwrap();
            let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
            conn.read_exact(&mut payload).unwrap();
            conn.write_all(&prefix).unwrap();
            conn.write_all(&payload).unwrap();
        });
        let proxy = ChaosProxy::start(upstream, ProxyFaults::benign(11)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let body = b"{\"kind\":\"ping\"}";
        let prefix = (body.len() as u32).to_be_bytes();
        conn.write_all(&prefix).unwrap();
        conn.write_all(body).unwrap();
        let mut got_prefix = [0u8; 4];
        conn.read_exact(&mut got_prefix).unwrap();
        assert_eq!(got_prefix, prefix);
        let mut got = vec![0u8; body.len()];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(got, body);
        echo.join().unwrap();
    }
}
