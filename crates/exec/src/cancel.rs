//! Cooperative cancellation checked at chunk boundaries.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap, cloneable cancellation token.
///
/// Workers never interrupt a chunk in flight — they consult the token
/// *between* chunks, so cancellation degrades a run into a well-formed
/// partial result (with explicit coverage accounting by the caller)
/// instead of tearing it down.
///
/// Three triggers, combinable:
///
/// * manual — [`CancelToken::cancel`];
/// * wall-clock — [`CancelToken::with_deadline`] trips once the
///   deadline has passed;
/// * countdown — [`CancelToken::countdown`] trips after a fixed number
///   of [`CancelToken::is_cancelled`] checks. Deterministic for
///   sequential runs, which is how the kill/resume property tests
///   enumerate "interrupt at every possible point".
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<Inner>);

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining checks before the countdown trips; negative = disabled.
    countdown: AtomicI64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            flag: AtomicBool::new(false),
            deadline: None,
            countdown: AtomicI64::new(-1),
        }
    }
}

impl CancelToken {
    /// A token that never trips until [`CancelToken::cancel`] is called.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips once `deadline` has elapsed (measured from
    /// now).
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: Some(Instant::now() + deadline),
            countdown: AtomicI64::new(-1),
        }))
    }

    /// A token that trips once the absolute `deadline` instant has
    /// passed. This is the per-request form used by long-lived servers:
    /// the deadline clock starts when the request is *received*, not
    /// when a worker finally dequeues it, so time spent waiting in a
    /// bounded session queue counts against the budget.
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            countdown: AtomicI64::new(-1),
        }))
    }

    /// A token that trips after `checks` calls to
    /// [`CancelToken::is_cancelled`] (each check consumes one tick).
    #[must_use]
    pub fn countdown(checks: u64) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: None,
            countdown: AtomicI64::new(i64::try_from(checks).unwrap_or(i64::MAX)),
        }))
    }

    /// Trips the token manually. Idempotent.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once any trigger has fired. Consumes one
    /// countdown tick per call (when a countdown is configured).
    pub fn is_cancelled(&self) -> bool {
        if self.0.flag.load(Ordering::SeqCst) {
            return true;
        }
        if let Some(deadline) = self.0.deadline {
            if Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        // fetch_sub saturates logically: once negative-by-decrement it
        // stays cancelled via the flag, so wrap-around is unreachable.
        let remaining = self.0.countdown.load(Ordering::SeqCst);
        if remaining >= 0 && self.0.countdown.fetch_sub(1, Ordering::SeqCst) <= 0 {
            self.cancel();
            return true;
        }
        false
    }

    /// Peeks at the cancelled state without consuming a countdown tick.
    #[must_use]
    pub fn is_cancelled_peek(&self) -> bool {
        self.0.flag.load(Ordering::SeqCst)
            || self
                .0
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_trips() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.clone().is_cancelled(), "clones share state");
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled_peek());
    }

    #[test]
    fn absolute_deadline_counts_queue_time() {
        let t = CancelToken::with_deadline_at(Instant::now());
        assert!(t.is_cancelled(), "a deadline in the past trips at once");
        let t = CancelToken::with_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn countdown_trips_after_n_checks() {
        let t = CancelToken::countdown(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "fourth check observes the trip");
        assert!(t.is_cancelled(), "and it latches");
    }

    #[test]
    fn countdown_zero_trips_on_first_check() {
        let t = CancelToken::countdown(0);
        assert!(t.is_cancelled());
    }

    #[test]
    fn peek_does_not_consume_ticks() {
        let t = CancelToken::countdown(1);
        for _ in 0..10 {
            assert!(!t.is_cancelled_peek());
        }
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled());
    }
}
