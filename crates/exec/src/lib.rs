//! # fsa-exec — supervised execution for long-running analyses
//!
//! The paper's premise is that a system of systems must stay dependable
//! when individual components misbehave — and the analysis engines that
//! *prove* that property deserve the same treatment. This crate is the
//! execution substrate shared by the instance-space exploration
//! (`fsa-core::explore`) and the runtime conformance fleet
//! (`fsa-runtime::fleet`):
//!
//! * [`Supervisor`] — chunked fork-join execution where every chunk runs
//!   under `catch_unwind`: a panicking chunk is quarantined, retried
//!   with deterministic exponential backoff + jitter, and reported as a
//!   [`ChunkFailure`] on exhaustion instead of aborting the run.
//!   Completed chunks are never lost and the merged output is
//!   bit-identical in chunk order whenever no chunk is dropped.
//! * [`CancelToken`] — cooperative cancellation checked at chunk
//!   boundaries: wall-clock deadlines ([`CancelToken::with_deadline`]),
//!   manual cancellation, and a deterministic countdown used by the
//!   kill/resume property tests.
//! * [`Snapshot`] — a tiny versioned + checksummed binary envelope for
//!   checkpoint files (magic, version, length, FNV-1a checksum), with
//!   atomic tmp-file + rename persistence so a `SIGKILL` mid-write can
//!   never leave a torn checkpoint behind.
//! * [`FaultPlan`] *(feature `chaos`)* — deterministic injected worker
//!   panics and delays, mirroring `apa::sim::Fault`'s design, so the
//!   property tests can prove the supervisor's guarantees.
//! * [`net`] *(feature `chaos`)* — the transport-level counterpart:
//!   seeded network fault injection ([`net::ChaosStream`]) and a
//!   frame-aware chaos proxy ([`net::ChaosProxy`]) for hardening the
//!   serving and distributed wire protocols.

#![forbid(unsafe_code)]

pub mod cancel;
#[cfg(feature = "chaos")]
pub mod chaos;
#[cfg(feature = "chaos")]
pub mod net;
pub mod snapshot;
pub mod supervisor;

pub use cancel::CancelToken;
#[cfg(feature = "chaos")]
pub use chaos::{FaultKind, FaultPlan};
pub use snapshot::{Snapshot, SnapshotError, SnapshotReader};
pub use supervisor::{ChunkFailure, Outcome, RetryPolicy, Supervisor};
