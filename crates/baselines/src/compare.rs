//! Coverage comparison: does a baseline entail the FSA requirements?
//!
//! A baseline requirement set secures some flows directly; others are
//! covered only by *assuming* component internals behave correctly. An
//! FSA requirement `auth(x, y, P)` is **entailed** by a baseline under
//! a [`TrustAssumption`] iff some functional path from `x` to `y`
//! consists solely of steps that are either
//!
//! * directly authenticated (`auth(u, v, ·)` is in the baseline, or a
//!   baseline end-to-end requirement bridges `u ⤳ v`), or
//! * internal to a component instance the assumption trusts.
//!
//! With everything trusted the §2 baselines look adequate; under the
//! paper's actual threat model ("manipulation of the sending or
//! receiving vehicle's internal communication and computation") their
//! coverage collapses. [`coverage`] computes both sides of that story.

use crate::BaselineSet;
use fsa_core::instance::SosInstance;
use fsa_core::requirements::{AuthRequirement, RequirementSet};
use fsa_graph::NodeId;
use std::collections::BTreeSet;

/// Which component instances' internals the architect assumes correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustAssumption {
    /// Every component's internals are trusted (optimistic architect).
    AllOwners,
    /// Nothing is trusted (in-vehicle attackers, the EVITA threat
    /// model).
    Nothing,
    /// Only the listed owners are trusted.
    Owners(BTreeSet<String>),
}

impl TrustAssumption {
    fn trusts(&self, owner: &str) -> bool {
        match self {
            TrustAssumption::AllOwners => true,
            TrustAssumption::Nothing => false,
            TrustAssumption::Owners(set) => set.contains(owner),
        }
    }
}

/// Decides whether `target` is entailed by `baseline` on `instance`
/// under `trust` (see module docs). Unknown actions are not entailed.
pub fn entails(
    instance: &SosInstance,
    baseline: &RequirementSet,
    target: &AuthRequirement,
    trust: &TrustAssumption,
) -> bool {
    let (Some(from), Some(to)) = (
        instance.find(&target.antecedent),
        instance.find(&target.consequent),
    ) else {
        return false;
    };
    // BFS over "secured" steps.
    let g = instance.graph();
    let step_secured = |u: NodeId, v: NodeId| -> bool {
        // direct edge, internal + trusted
        let internal = instance.owner(u) == instance.owner(v) && trust.trusts(instance.owner(u));
        if internal {
            return true;
        }
        baseline.iter().any(|r| {
            instance.find(&r.antecedent) == Some(u) && instance.find(&r.consequent) == Some(v)
        })
    };
    // Also allow baseline *end-to-end* bridges u ⤳ v (a baseline
    // requirement between non-adjacent actions secures that whole
    // dependency).
    let bridges: Vec<(NodeId, NodeId)> = baseline
        .iter()
        .filter_map(|r| Some((instance.find(&r.antecedent)?, instance.find(&r.consequent)?)))
        .collect();

    let n = g.node_count();
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut stack = vec![from];
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        for v in g.successors(u) {
            if !seen[v.index()] && step_secured(u, v) {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
        for &(bu, bv) in &bridges {
            if bu == u && !seen[bv.index()] {
                seen[bv.index()] = true;
                stack.push(bv);
            }
        }
    }
    false
}

/// The coverage of `reference` (the FSA requirement set) by a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Reference requirements entailed by the baseline.
    pub covered: Vec<AuthRequirement>,
    /// Reference requirements the baseline leaves open — the "attack
    /// vectors left open" of §2.
    pub missed: Vec<AuthRequirement>,
}

impl Coverage {
    /// Covered / total as a fraction in `[0, 1]`; 1.0 for an empty
    /// reference.
    pub fn ratio(&self) -> f64 {
        let total = self.covered.len() + self.missed.len();
        if total == 0 {
            1.0
        } else {
            self.covered.len() as f64 / total as f64
        }
    }
}

/// Computes the coverage of `reference` by `baseline` under `trust`.
pub fn coverage(
    instance: &SosInstance,
    baseline: &BaselineSet,
    reference: &RequirementSet,
    trust: &TrustAssumption,
) -> Coverage {
    let (covered, missed) = reference
        .iter()
        .cloned()
        .partition(|r| entails(instance, &baseline.requirements, r, trust));
    Coverage { covered, missed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_baseline;
    use crate::trust_zone::trust_zone_baseline_with;
    use fsa_core::manual::elicit;

    fn fig3_reference() -> (SosInstance, RequirementSet) {
        let inst = vanet::instances::two_vehicle_warning();
        let reference = elicit(&inst).unwrap().requirement_set();
        (inst, reference)
    }

    #[test]
    fn channel_baseline_full_coverage_with_trusted_internals() {
        let (inst, reference) = fig3_reference();
        let baseline = channel_baseline(&inst);
        let cov = coverage(&inst, &baseline, &reference, &TrustAssumption::AllOwners);
        assert!(cov.missed.is_empty(), "missed: {:?}", cov.missed);
        assert_eq!(cov.ratio(), 1.0);
    }

    #[test]
    fn channel_baseline_collapses_without_internal_trust() {
        // The paper's §2 point: internal communication can be
        // manipulated; the channel baseline then secures nothing of χ.
        let (inst, reference) = fig3_reference();
        let baseline = channel_baseline(&inst);
        let cov = coverage(&inst, &baseline, &reference, &TrustAssumption::Nothing);
        assert!(cov.covered.is_empty(), "covered: {:?}", cov.covered);
        assert_eq!(cov.ratio(), 0.0);
    }

    #[test]
    fn trust_zone_baseline_misses_receiver_inputs_even_when_trusting_receiver() {
        // Sensor signing binds V1's origins to Vw's rec; with only the
        // *receiving* vehicle trusted (sender internals attackable),
        // V1-origin requirements survive via the end-to-end bridge, but
        // nothing covers the sender-internal hop-free variants… compute:
        let (inst, reference) = fig3_reference();
        let baseline = trust_zone_baseline_with(&inst, |o| o.to_owned());
        let trust = TrustAssumption::Owners(["Vw".to_owned()].into_iter().collect());
        let cov = coverage(&inst, &baseline, &reference, &trust);
        // auth(sense1, show) and auth(pos1, show): bridge origin→rec,
        // then trusted Vw internals → covered.
        // auth(pos_w, show): internal to trusted Vw → covered.
        assert_eq!(cov.ratio(), 1.0);
        // But with no trusted internals at all, the final rec→show hop
        // is unsecured → everything missed.
        let cov = coverage(&inst, &baseline, &reference, &TrustAssumption::Nothing);
        assert_eq!(cov.covered.len(), 0);
    }

    #[test]
    fn fsa_reference_covers_itself() {
        // Sanity: the FSA set entails itself even with nothing trusted
        // (every requirement is its own end-to-end bridge).
        let (inst, reference) = fig3_reference();
        let baseline = BaselineSet {
            name: "fsa".to_owned(),
            requirements: reference.clone(),
        };
        let cov = coverage(&inst, &baseline, &reference, &TrustAssumption::Nothing);
        assert!(cov.missed.is_empty());
    }

    #[test]
    fn unknown_target_not_entailed() {
        let (inst, _) = fig3_reference();
        let baseline = channel_baseline(&inst);
        let bogus = AuthRequirement::new(
            fsa_core::action::Action::parse("ghost"),
            fsa_core::action::Action::parse("show(HMI_w,warn)"),
            fsa_core::action::Agent::new("D_w"),
        );
        assert!(!entails(
            &inst,
            &baseline.requirements,
            &bogus,
            &TrustAssumption::AllOwners
        ));
    }

    #[test]
    fn empty_reference_ratio_is_one() {
        let (inst, _) = fig3_reference();
        let baseline = channel_baseline(&inst);
        let cov = coverage(
            &inst,
            &baseline,
            &RequirementSet::new(),
            &TrustAssumption::Nothing,
        );
        assert_eq!(cov.ratio(), 1.0);
    }
}
