//! The MANET-architect baseline: data-origin authentication per
//! transmission channel.
//!
//! "In order to design a secure … vehicular communication system, an
//! architect with a background in Mobile Adhoc Networks (MANETs) would
//! probably first define the data origin authentication of the
//! transmitted message" (§2). Operationally: every functional flow that
//! crosses a component-ownership boundary is a transmission, and gets a
//! hop requirement `auth(sender-action, receiver-action, stakeholder)`.
//! Flows internal to one component are implicitly trusted.

use crate::BaselineSet;
use fsa_core::instance::SosInstance;
use fsa_core::requirements::AuthRequirement;

/// Derives the channel-authentication baseline for `instance`.
pub fn channel_baseline(instance: &SosInstance) -> BaselineSet {
    let g = instance.graph();
    let requirements = g
        .edges()
        .filter(|&(a, b)| instance.owner(a) != instance.owner(b))
        .map(|(a, b)| {
            AuthRequirement::new(
                instance.action(a).clone(),
                instance.action(b).clone(),
                instance.stakeholder(b).clone(),
            )
        })
        .collect();
    BaselineSet {
        name: "channel authentication (MANET architect)".to_owned(),
        requirements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_one_transmission() {
        let inst = vanet::instances::two_vehicle_warning();
        let baseline = channel_baseline(&inst);
        let reqs: Vec<String> = baseline
            .requirements
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            reqs,
            vec!["auth(send(CU_1,cam(pos)), rec(CU_w,cam(pos)), D_w)"],
            "only the radio hop crosses ownership"
        );
    }

    #[test]
    fn forwarding_chain_has_one_hop_per_link() {
        let inst = vanet::instances::forwarding_chain(2);
        let baseline = channel_baseline(&inst);
        // V1→V2, V2→V3, V3→Vw: three radio hops.
        assert_eq!(baseline.requirements.len(), 3);
        assert!(baseline
            .requirements
            .iter()
            .all(|r| r.antecedent.name() == "send" || r.antecedent.name() == "fwd"));
    }

    #[test]
    fn single_component_instance_yields_nothing() {
        use fsa_core::action::Action;
        use fsa_core::instance::SosInstanceBuilder;
        let mut b = SosInstanceBuilder::new("solo");
        let x = b.action_owned(Action::parse("a"), "P", "C");
        let y = b.action_owned(Action::parse("b"), "P", "C");
        b.flow(x, y);
        let baseline = channel_baseline(&b.build());
        assert!(baseline.requirements.is_empty());
    }
}
