//! Baseline security-requirement derivation approaches.
//!
//! §2 of the paper sketches how architects with different backgrounds
//! would secure the vehicular scenario — and why each leaves attack
//! vectors open:
//!
//! > "an architect with a background in Mobile Adhoc Networks … would
//! > probably first define the data origin authentication of the
//! > transmitted message" — the [`channel`] baseline;
//!
//! > "A distributed software architect may first start to define the
//! > trust zones. … Results may be the timestamped signing of the
//! > sensor data and a composition of these data at the receiving
//! > vehicle" — the [`trust_zone`] baseline;
//!
//! > "Some of these leave attack vectors open, such as the manipulation
//! > of the sending or receiving vehicle's internal communication and
//! > computation."
//!
//! The [`compare`] module quantifies that last sentence: it checks
//! which of the requirements elicited by functional security analysis
//! are *entailed* by a baseline's requirement set, under an explicit
//! assumption about which component internals the architect trusted.
//! With all internals trusted the baselines look complete; drop the
//! assumption (the EVITA threat model includes in-vehicle attackers)
//! and their coverage collapses — which is exactly the paper's argument
//! for deriving requirements from the functional flow itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod compare;
pub mod trust_zone;

pub use compare::{coverage, entails, Coverage, TrustAssumption};

use fsa_core::requirements::RequirementSet;

/// A named requirement set produced by one baseline approach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineSet {
    /// The approach's name (for reports).
    pub name: String,
    /// The derived requirements.
    pub requirements: RequirementSet,
}
