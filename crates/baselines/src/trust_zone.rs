//! The distributed-software-architect baseline: trust zones with
//! end-to-end sensor signing.
//!
//! "A distributed software architect may first start to define the
//! trust zones. … Results may be the timestamped signing of the sensor
//! data and a composition of these data at the receiving vehicle" (§2).
//! Operationally: component owners are grouped into zones by a
//! caller-supplied function (default: each owner is its own zone);
//! every *origin* action (a source of the flow graph) signs its data,
//! and a requirement binds it to each action in a *different* zone that
//! consumes it across the zone boundary — the composition points.
//! Dependencies that never leave a zone are implicitly trusted.

use crate::BaselineSet;
use fsa_core::instance::SosInstance;
use fsa_core::requirements::AuthRequirement;
use fsa_graph::closure::reflexive_transitive_closure;

/// Derives the trust-zone baseline with each owner as its own zone.
pub fn trust_zone_baseline(instance: &SosInstance) -> BaselineSet {
    trust_zone_baseline_with(instance, |owner| owner.to_owned())
}

/// Derives the trust-zone baseline with an explicit zone assignment.
pub fn trust_zone_baseline_with(
    instance: &SosInstance,
    zone_of: impl Fn(&str) -> String,
) -> BaselineSet {
    let g = instance.graph();
    let closure = reflexive_transitive_closure(g);
    let mut requirements = fsa_core::requirements::RequirementSet::new();
    for origin in g.sources() {
        let origin_zone = zone_of(instance.owner(origin));
        // Composition points: the first action in a *different* zone
        // that the signed data reaches, i.e. targets of zone-crossing
        // flows reachable from the origin.
        for (u, v) in g.edges() {
            if zone_of(instance.owner(u)) != zone_of(instance.owner(v))
                && zone_of(instance.owner(v)) != origin_zone
                && closure.contains(origin, u)
            {
                requirements.insert(AuthRequirement::new(
                    instance.action(origin).clone(),
                    instance.action(v).clone(),
                    instance.stakeholder(v).clone(),
                ));
            }
        }
    }
    BaselineSet {
        name: "trust zones with sensor signing (software architect)".to_owned(),
        requirements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_binds_origins_to_composition_point() {
        let inst = vanet::instances::two_vehicle_warning();
        let baseline = trust_zone_baseline_with(&inst, |owner| {
            // Each vehicle is one zone.
            owner.to_owned()
        });
        let reqs: Vec<String> = baseline
            .requirements
            .iter()
            .map(ToString::to_string)
            .collect();
        // V1's origins (sense, pos) are bound to Vw's rec — but Vw's own
        // pos never crosses a zone, so it is (unsafely) trusted.
        assert_eq!(
            reqs,
            vec![
                "auth(pos(GPS_1,pos), rec(CU_w,cam(pos)), D_w)",
                "auth(sense(ESP_1,sW), rec(CU_w,cam(pos)), D_w)",
            ]
        );
    }

    #[test]
    fn one_big_zone_yields_nothing() {
        let inst = vanet::instances::two_vehicle_warning();
        let baseline = trust_zone_baseline_with(&inst, |_| "everything".to_owned());
        assert!(baseline.requirements.is_empty());
    }

    #[test]
    fn per_unit_zones_on_evita_model() {
        let inst = vanet::evita::onboard_instance();
        let baseline = trust_zone_baseline(&inst);
        assert!(!baseline.requirements.is_empty());
        // Origins only: all antecedents are sources of the flow graph.
        let sources: Vec<_> = inst.graph().sources();
        for r in &baseline.requirements {
            let n = inst.find(&r.antecedent).unwrap();
            assert!(sources.contains(&n), "{}", r.antecedent);
        }
    }
}
