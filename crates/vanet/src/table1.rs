//! Table 1 of the paper, generated from the action inventory.

use crate::actions;
use fsa_core::action::Action;
use std::fmt::Write as _;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// The action term (with the generic index `i`).
    pub action: Action,
    /// The explanation column.
    pub explanation: &'static str,
}

/// The rows of Table 1, in the paper's order.
pub fn rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            action: actions::rsu_send(),
            explanation: "A roadside unit broadcasts a cooperative awareness message cam \
                          concerning a danger at position pos.",
        },
        Table1Row {
            action: actions::sense("i"),
            explanation: "The ESP sensor of vehicle V_i senses slippery wheels (sW).",
        },
        Table1Row {
            action: actions::pos("i"),
            explanation: "The GPS sensor of vehicle V_i computes its position.",
        },
        Table1Row {
            action: actions::send("i"),
            explanation: "The communication unit CU_i of vehicle V_i sends a cooperative \
                          awareness message cam concerning the assumed danger based on the \
                          slippery wheels measurement for position pos.",
        },
        Table1Row {
            action: actions::rec("i"),
            explanation: "The communication unit CU_i of vehicle V_i receives a cooperative \
                          awareness message cam for position pos from another vehicle or a \
                          roadside unit.",
        },
        Table1Row {
            action: actions::fwd("i"),
            explanation: "The communication unit CU_i of vehicle V_i forwards a cooperative \
                          awareness message cam for position pos.",
        },
        Table1Row {
            action: actions::show("i"),
            explanation: "The human machine interface HMI_i of vehicle V_i shows its driver a \
                          warning warn with respect to the relative position.",
        },
    ]
}

/// Renders Table 1 as aligned text.
pub fn render() -> String {
    let rows = rows();
    let width = rows
        .iter()
        .map(|r| r.action.to_string().len())
        .max()
        .unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "Table 1. Actions for the example system");
    let _ = writeln!(s, "{:<width$}  Explanation", "Action");
    for r in rows {
        let _ = writeln!(s, "{:<width$}  {}", r.action.to_string(), r.explanation);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_matching_paper() {
        let rows = rows();
        assert_eq!(rows.len(), 7);
        let terms: Vec<String> = rows.iter().map(|r| r.action.to_string()).collect();
        assert_eq!(
            terms,
            vec![
                "send(cam(pos))",
                "sense(ESP_i,sW)",
                "pos(GPS_i,pos)",
                "send(CU_i,cam(pos))",
                "rec(CU_i,cam(pos))",
                "fwd(CU_i,cam(pos))",
                "show(HMI_i,warn)",
            ]
        );
    }

    #[test]
    fn render_contains_all_actions() {
        let text = render();
        for r in rows() {
            assert!(text.contains(&r.action.to_string()));
        }
        assert!(text.starts_with("Table 1."));
    }
}
