//! The action inventory of Table 1.
//!
//! Constructors for the seven action templates of the example system.
//! Index arguments accept any instance tag (`"1"`, `"2"`, `"w"`, …).

use fsa_core::action::Action;

/// `send(cam(pos))` — a roadside unit broadcasts a cooperative awareness
/// message concerning a danger at position `pos`.
pub fn rsu_send() -> Action {
    Action::parse("send(cam(pos))")
}

/// `sense(ESP_i, sW)` — the ESP sensor of vehicle `i` senses slippery
/// wheels.
pub fn sense(i: &str) -> Action {
    Action::parse(&format!("sense(ESP_{i},sW)"))
}

/// `pos(GPS_i, pos)` — the GPS sensor of vehicle `i` computes its
/// position.
pub fn pos(i: &str) -> Action {
    Action::parse(&format!("pos(GPS_{i},pos)"))
}

/// `send(CU_i, cam(pos))` — the communication unit of vehicle `i` sends
/// a cooperative awareness message based on the slippery-wheels
/// measurement for position `pos`.
pub fn send(i: &str) -> Action {
    Action::parse(&format!("send(CU_{i},cam(pos))"))
}

/// `rec(CU_i, cam(pos))` — the communication unit of vehicle `i`
/// receives a cooperative awareness message from another vehicle or a
/// roadside unit.
pub fn rec(i: &str) -> Action {
    Action::parse(&format!("rec(CU_{i},cam(pos))"))
}

/// `fwd(CU_i, cam(pos))` — the communication unit of vehicle `i`
/// forwards a cooperative awareness message.
pub fn fwd(i: &str) -> Action {
    Action::parse(&format!("fwd(CU_{i},cam(pos))"))
}

/// `show(HMI_i, warn)` — the HMI of vehicle `i` shows its driver a
/// warning with respect to the relative position.
pub fn show(i: &str) -> Action {
    Action::parse(&format!("show(HMI_{i},warn)"))
}

/// The driver agent name of vehicle `i` (`D_i`).
pub fn driver(i: &str) -> String {
    format!("D_{i}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renderings() {
        assert_eq!(rsu_send().to_string(), "send(cam(pos))");
        assert_eq!(sense("1").to_string(), "sense(ESP_1,sW)");
        assert_eq!(pos("w").to_string(), "pos(GPS_w,pos)");
        assert_eq!(send("i").to_string(), "send(CU_i,cam(pos))");
        assert_eq!(rec("2").to_string(), "rec(CU_2,cam(pos))");
        assert_eq!(fwd("2").to_string(), "fwd(CU_2,cam(pos))");
        assert_eq!(show("w").to_string(), "show(HMI_w,warn)");
    }

    #[test]
    fn indices_are_parsed() {
        assert_eq!(sense("3").indices(), vec!["3"]);
        assert!(rsu_send().indices().is_empty());
    }

    #[test]
    fn driver_names() {
        assert_eq!(driver("w"), "D_w");
    }
}
