//! The vehicular communication example system (§3 of the paper).
//!
//! Vehicles `V_1 … V_n` — each with a driver `D_i`, an ESP sensor, a GPS
//! sensor, a communication unit (CU) and an HMI — plus roadside units
//! (RSU) exchange cooperative awareness messages (`cam`) about dangers
//! such as icy roads. This crate provides, ready for analysis:
//!
//! * [`actions`] — the action inventory of Table 1,
//! * [`position`] — positions, distances and communication ranges,
//! * [`component_models`] — the functional component models of Fig. 1,
//! * [`instances`] — the SoS instances of Figs. 2, 3 and 4 (plus the
//!   parameterised forwarding chain of §4.4),
//! * [`apa_model`] / [`semantics`] — the APA models of Figs. 5, 6 and 8
//!   with configurable consumption semantics,
//! * [`evita`] — a synthetic on-board model at the scale of the EVITA
//!   statistics quoted at the end of §4.4,
//! * [`table1`] — the rendered action table.
//!
//! # Examples
//!
//! Reproduce the requirement set of the paper's Example 3:
//!
//! ```
//! use vanet::instances;
//! use fsa_core::manual::elicit;
//!
//! let report = elicit(&instances::two_vehicle_warning())?;
//! assert_eq!(report.requirements().len(), 3);
//! # Ok::<(), fsa_core::FsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod apa_model;
pub mod component_models;
pub mod evita;
pub mod exploration;
pub mod forwarding;
pub mod generator;
pub mod instances;
pub mod position;
pub mod semantics;
pub mod table1;
