//! The SoS instances of Figs. 2, 3 and 4, and the parameterised
//! forwarding chain of §4.4.
//!
//! Each instance contains exactly the actions exercised by the combined
//! use cases (the paper draws unused component actions dotted and drops
//! them from the analysis).

use crate::actions;
use fsa_core::instance::{SosInstance, SosInstanceBuilder};

/// Fig. 2: vehicle `w` receives a warning from the RSU (use cases
/// 1 + 3).
///
/// Analysis yields the two requirements of Example 2.
pub fn rsu_warns_vehicle() -> SosInstance {
    let mut b = SosInstanceBuilder::new("fig2: Vw receives warning from RSU");
    let rsu_send = b.action_owned(actions::rsu_send(), "RSU_operator", "RSU");
    let rec = b.action_owned(actions::rec("w"), &actions::driver("w"), "Vw");
    let pos = b.action_owned(actions::pos("w"), &actions::driver("w"), "Vw");
    let show = b.action_owned(actions::show("w"), &actions::driver("w"), "Vw");
    b.flow(rsu_send, rec);
    b.flow(rec, show);
    b.flow(pos, show);
    b.build()
}

/// Fig. 3: vehicle `w` receives a warning from vehicle 1 (use cases
/// 2 + 3) — the instance of Example 3.
pub fn two_vehicle_warning() -> SosInstance {
    let mut b = SosInstanceBuilder::new("fig3: Vw receives warning from V1");
    let d1 = actions::driver("1");
    let dw = actions::driver("w");
    let sense1 = b.action_owned(actions::sense("1"), &d1, "V1");
    let pos1 = b.action_owned(actions::pos("1"), &d1, "V1");
    let send1 = b.action_owned(actions::send("1"), &d1, "V1");
    let recw = b.action_owned(actions::rec("w"), &dw, "Vw");
    let posw = b.action_owned(actions::pos("w"), &dw, "Vw");
    let show = b.action_owned(actions::show("w"), &dw, "Vw");
    b.flow(sense1, send1);
    b.flow(pos1, send1);
    b.flow(send1, recw);
    b.flow(recw, show);
    b.flow(posw, show);
    b.build()
}

/// Fig. 4: vehicle 2 forwards vehicle 1's warning to vehicle `w`
/// (use cases 2 + 3 + 4).
///
/// The flow `pos(GPS_2) → fwd(CU_2)` is a policy flow, so requirement
/// (4) classifies as availability.
pub fn three_vehicle_forwarding() -> SosInstance {
    forwarding_chain(1)
}

/// The parameterised family of §4.4: `forwarders` vehicles between the
/// warning vehicle `V1` and the receiving vehicle `Vw` forward the
/// message. `forwarding_chain(0)` equals [`two_vehicle_warning`] up to
/// the instance name; each additional forwarder `V_k` contributes the
/// element `(pos(GPS_k, pos), show(HMI_w, warn))` to `χ`.
pub fn forwarding_chain(forwarders: usize) -> SosInstance {
    let mut b = SosInstanceBuilder::new(&format!(
        "fig4: {forwarders} vehicle(s) forward V1's warning to Vw"
    ));
    let d1 = actions::driver("1");
    let dw = actions::driver("w");
    let sense1 = b.action_owned(actions::sense("1"), &d1, "V1");
    let pos1 = b.action_owned(actions::pos("1"), &d1, "V1");
    let send1 = b.action_owned(actions::send("1"), &d1, "V1");
    b.flow(sense1, send1);
    b.flow(pos1, send1);

    // Chain of forwarders V2 … V_{forwarders+1}.
    let mut upstream = send1;
    for k in 0..forwarders {
        let tag = (k + 2).to_string();
        let d = actions::driver(&tag);
        let owner = format!("V{tag}");
        let rec = b.action_owned(actions::rec(&tag), &d, &owner);
        let pos = b.action_owned(actions::pos(&tag), &d, &owner);
        let fwd = b.action_owned(actions::fwd(&tag), &d, &owner);
        b.flow(upstream, rec);
        b.flow(rec, fwd);
        b.policy_flow(pos, fwd); // position-based forwarding policy
        upstream = fwd;
    }

    let recw = b.action_owned(actions::rec("w"), &dw, "Vw");
    let posw = b.action_owned(actions::pos("w"), &dw, "Vw");
    let show = b.action_owned(actions::show("w"), &dw, "Vw");
    b.flow(upstream, recw);
    b.flow(recw, show);
    b.flow(posw, show);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::manual::elicit;
    use fsa_core::requirements::Relevance;

    #[test]
    fn fig2_requirements_of_example2() {
        let report = elicit(&rsu_warns_vehicle()).unwrap();
        let reqs: Vec<String> = report
            .requirements()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            reqs,
            vec![
                "auth(send(cam(pos)), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)",
            ]
        );
    }

    #[test]
    fn fig3_requirements_of_example3() {
        let report = elicit(&two_vehicle_warning()).unwrap();
        assert_eq!(report.closure_size(), 16);
        let reqs: Vec<String> = report
            .requirements()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            reqs,
            vec![
                "auth(sense(ESP_1,sW), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_1,pos), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)",
            ]
        );
    }

    #[test]
    fn fig4_chi2_adds_forwarder_position() {
        let chi1 = elicit(&two_vehicle_warning()).unwrap().requirement_set();
        let chi2 = elicit(&three_vehicle_forwarding())
            .unwrap()
            .requirement_set();
        let diff = chi2.difference(&chi1);
        assert_eq!(diff.len(), 1);
        assert_eq!(
            diff.iter().next().unwrap().to_string(),
            "auth(pos(GPS_2,pos), show(HMI_w,warn), D_w)"
        );
    }

    #[test]
    fn fig4_requirement4_is_availability() {
        let report = elicit(&three_vehicle_forwarding()).unwrap();
        let classified = report.classified_requirements();
        assert_eq!(classified.len(), 4);
        for c in classified {
            let expected = if c.requirement.antecedent == actions::pos("2") {
                Relevance::Availability
            } else {
                Relevance::Safety
            };
            assert_eq!(c.relevance, expected, "{}", c.requirement);
        }
    }

    #[test]
    fn chain_growth_law() {
        // |χ_i| = 3 + number of forwarders (§4.4's recurrence).
        for k in 0..6 {
            let report = elicit(&forwarding_chain(k)).unwrap();
            assert_eq!(report.requirements().len(), 3 + k, "forwarders = {k}");
            // exactly k availability requirements
            let avail = report
                .classified_requirements()
                .iter()
                .filter(|c| c.relevance == Relevance::Availability)
                .count();
            assert_eq!(avail, k);
        }
    }

    #[test]
    fn chain_zero_matches_fig3_shape() {
        let a = forwarding_chain(0);
        let b = two_vehicle_warning();
        assert!(fsa_graph::iso::are_isomorphic(
            &a.shape_graph(),
            &b.shape_graph()
        ));
    }

    #[test]
    fn all_instances_are_loop_free() {
        for inst in [
            rsu_warns_vehicle(),
            two_vehicle_warning(),
            three_vehicle_forwarding(),
            forwarding_chain(5),
        ] {
            assert!(fsa_graph::topo::is_acyclic(inst.graph()), "{}", inst.name());
        }
    }
}
