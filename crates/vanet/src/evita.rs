//! A synthetic on-board SoS model at the scale of the EVITA statistics.
//!
//! §4.4 closes: "In practice, the method described here has been applied
//! in the project EVITA … A total of 29 authenticity requirements have
//! been elicited by means of a system model comprising 38 component
//! boundary actions with 16 system boundary actions comprising 9 maximal
//! and 7 minimal elements."
//!
//! The EVITA use-case corpus (deliverable D2.3) is project data the
//! paper does not reproduce, so this module substitutes a *synthetic*
//! automotive on-board architecture with exactly those aggregate
//! statistics, exercising the elicitation pipeline at the reported
//! scale:
//!
//! * **Systems**: warning vehicle `V1`, receiving vehicle `Vw`, roadside
//!   unit `RSU`; on-board units (ESP, temperature sensor, GPS, gyro,
//!   ECU, CU, HMI, brake, event recorder, ACC, audio, driver input) are
//!   the *components* whose boundaries are counted.
//! * **7 minimal elements** (inputs): two danger sensors and the GPS of
//!   `V1`, the GPS and gyro of `Vw`, the RSU broadcast, and a driver
//!   acknowledgement.
//! * **9 maximal elements** (outputs): warning display, brake prefill,
//!   ACC adaptation, event logs in both vehicles, message forwarding,
//!   telematics upload, the warning vehicle's own display, and audio
//!   mute.
//! * **Cross-unit flows** pass through CAN-bus relay actions (`tx…`),
//!   which brings the number of component boundary actions to 38
//!   without altering the dependency structure.
//! * The forwarding output depends on the receiving vehicle's position
//!   only through the position-based forwarding *policy*, mirroring
//!   requirement (4).

use fsa_core::action::Action;
use fsa_core::instance::{SosInstance, SosInstanceBuilder};

/// The aggregate statistics the paper reports for the EVITA application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvitaStats {
    /// Component boundary actions.
    pub component_boundary: usize,
    /// System boundary actions.
    pub system_boundary: usize,
    /// Maximal elements.
    pub maximal: usize,
    /// Minimal elements.
    pub minimal: usize,
    /// Elicited authenticity requirements.
    pub requirements: usize,
}

/// The statistics quoted at the end of §4.4.
pub const EVITA_EXPECTED: EvitaStats = EvitaStats {
    component_boundary: 38,
    system_boundary: 16,
    maximal: 9,
    minimal: 7,
    requirements: 29,
};

/// Builds the synthetic on-board SoS instance.
pub fn onboard_instance() -> SosInstance {
    let mut b = SosInstanceBuilder::new("evita: on-board local danger warning");

    let add = |b: &mut SosInstanceBuilder, term: &str, stakeholder: &str, owner: &str| {
        b.action_owned(Action::parse(term), stakeholder, owner)
    };

    // --- Minimal elements (7 inputs). -------------------------------
    let m_esp = add(&mut b, "sense(ESP_1,sW)", "D_1", "ESP1");
    let m_tmp = add(&mut b, "sense(TMP_1,lowT)", "D_1", "TMP1");
    let m_gps1 = add(&mut b, "pos(GPS_1,pos)", "D_1", "GPS1");
    let m_gpsw = add(&mut b, "pos(GPS_w,pos)", "D_w", "GPSw");
    let m_gyro = add(&mut b, "head(GYR_w,heading)", "D_w", "GYRw");
    let m_rsu = add(&mut b, "send(cam(pos))", "RSU_operator", "RSU");
    let m_ack = add(&mut b, "ack(DRV_w,ack)", "D_w", "DRVw");

    // --- Intermediate actions. --------------------------------------
    // UC2: slippery wheels + low temperature fused to a danger event.
    let fuse = add(&mut b, "fuse(ECU_1,danger)", "D_1", "ECU1");
    let send1 = add(&mut b, "send(CU_1,cam(pos))", "D_1", "CU1");
    let recw = add(&mut b, "rec(CU_w,cam(pos))", "D_w", "CUw");
    // UC3: received warning evaluated against own position and heading.
    let eval = add(&mut b, "eval(ECU_w,threat)", "D_w", "ECUw");

    // --- Maximal elements (9 outputs). -------------------------------
    let o_show_w = add(&mut b, "show(HMI_w,warn)", "D_w", "HMIw");
    let o_brake = add(&mut b, "prefill(BRK_w,brk)", "D_w", "BRKw");
    let o_log_w = add(&mut b, "log(EDR_w,evt)", "D_w", "EDRw");
    let o_fwd = add(&mut b, "fwd(CU_w,cam(pos))", "D_w", "CUw");
    let o_acc = add(&mut b, "adapt(ACC_w,speed)", "D_w", "ACCw");
    let o_show_1 = add(&mut b, "show(HMI_1,selfwarn)", "D_1", "HMI1");
    let o_log_1 = add(&mut b, "log(EDR_1,evt)", "D_1", "EDR1");
    let o_upload = add(&mut b, "upload(CU_1,report)", "D_1", "CU1b");
    let o_mute = add(&mut b, "mute(AUD_w,quiet)", "D_w", "AUDw");

    // --- Flows. Relayed flows pass through a CAN-bus tx action, which
    // adds one component boundary action each without changing the
    // dependency structure; `relay = false` keeps a direct edge.
    let mut relay_count = 0usize;
    let mut flow = |b: &mut SosInstanceBuilder, from, to, relay: bool, bus: &str| {
        if relay {
            relay_count += 1;
            let r = b.action_owned(
                Action::parse(&format!("tx(CAN_{bus},frame{relay_count})")),
                "OEM",
                &format!("CAN{bus}"),
            );
            b.flow(from, r);
            b.flow(r, to);
        } else {
            b.flow(from, to);
        }
    };

    // V1 fusion and send: deps of send1 = {esp, tmp, gps1}.
    flow(&mut b, m_esp, fuse, true, "1");
    flow(&mut b, m_tmp, fuse, true, "1");
    flow(&mut b, fuse, send1, true, "1");
    flow(&mut b, m_gps1, send1, true, "1");
    // Wireless hop and RSU broadcast: deps of recw = {…, rsu}.
    flow(&mut b, send1, recw, false, "-");
    flow(&mut b, m_rsu, recw, false, "-");
    // Vw evaluation: deps of eval = {…, gpsw, gyro}.
    flow(&mut b, recw, eval, true, "w");
    flow(&mut b, m_gpsw, eval, true, "w");
    flow(&mut b, m_gyro, eval, true, "w");
    // Outputs of Vw.
    flow(&mut b, eval, o_show_w, true, "w"); // warn display (6 deps)
    flow(&mut b, recw, o_brake, true, "w"); // brake prefill (5 deps)
    flow(&mut b, m_gpsw, o_brake, true, "w");
    flow(&mut b, m_ack, o_log_w, true, "w"); // event log (2 deps)
    flow(&mut b, m_gpsw, o_log_w, true, "w");
    flow(&mut b, recw, o_fwd, false, "-"); // forwarding (5 deps incl. policy)
    b.policy_flow(m_gpsw, o_fwd); // position-based forwarding policy
    flow(&mut b, m_gpsw, o_acc, true, "w"); // ACC adaptation (2 deps)
    flow(&mut b, m_gyro, o_acc, true, "w");
    flow(&mut b, m_ack, o_mute, true, "w"); // audio mute (1 dep)
                                            // Outputs of V1.
    flow(&mut b, fuse, o_show_1, true, "1"); // own display (2 deps)
    flow(&mut b, fuse, o_log_1, true, "1"); // event log (3 deps)
    flow(&mut b, m_gps1, o_log_1, true, "1");
    flow(&mut b, fuse, o_upload, false, "-"); // telematics upload (3 deps)
    flow(&mut b, m_gps1, o_upload, false, "-");

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::boundary::boundary_stats;
    use fsa_core::manual::elicit;
    use fsa_core::requirements::Relevance;

    #[test]
    fn reproduces_evita_statistics() {
        let inst = onboard_instance();
        let report = elicit(&inst).unwrap();
        let stats = boundary_stats(&inst);
        assert_eq!(
            stats.component_boundary_count(),
            EVITA_EXPECTED.component_boundary,
            "component boundary actions"
        );
        assert_eq!(
            stats.system_boundary_count(),
            EVITA_EXPECTED.system_boundary,
            "system boundary actions"
        );
        assert_eq!(report.maxima().len(), EVITA_EXPECTED.maximal, "maximal");
        assert_eq!(report.minima().len(), EVITA_EXPECTED.minimal, "minimal");
        assert_eq!(
            report.requirements().len(),
            EVITA_EXPECTED.requirements,
            "authenticity requirements"
        );
    }

    #[test]
    fn forwarding_policy_requirement_is_availability() {
        let report = elicit(&onboard_instance()).unwrap();
        let availability: Vec<String> = report
            .classified_requirements()
            .iter()
            .filter(|c| c.relevance == Relevance::Availability)
            .map(|c| c.requirement.to_string())
            .collect();
        assert_eq!(
            availability,
            vec!["auth(pos(GPS_w,pos), fwd(CU_w,cam(pos)), D_w)"]
        );
    }

    #[test]
    fn warning_display_has_six_antecedents() {
        let report = elicit(&onboard_instance()).unwrap();
        let show_deps = report
            .requirements()
            .iter()
            .filter(|r| r.consequent == Action::parse("show(HMI_w,warn)"))
            .count();
        assert_eq!(show_deps, 6);
    }

    #[test]
    fn model_is_loop_free() {
        assert!(fsa_graph::topo::is_acyclic(onboard_instance().graph()));
    }

    #[test]
    fn every_output_has_a_requirement() {
        let report = elicit(&onboard_instance()).unwrap();
        for max in report.maxima() {
            assert!(
                report.requirements().iter().any(|r| &r.consequent == max),
                "no requirement for output {max}"
            );
        }
    }
}
