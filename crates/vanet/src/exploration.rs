//! Instance-space exploration for the vehicular scenario.
//!
//! §4.2 asks for "all structurally different combinations of component
//! instances"; this module wires the Fig. 1 component models into
//! [`fsa_core::explore`] so the whole (bounded) instance space of the
//! scenario can be enumerated and its union requirement set computed.
//! The streaming certificate engine makes 4-vehicle universes (16
//! candidate flows → 65 536 subsets for the full multiplicity vector)
//! complete in seconds, where pairwise post-hoc dedup could not get past
//! ~3 vehicles.

use crate::component_models::{rsu_model, vehicle_model_reduced};
use fsa_core::explore::{
    enumerate_instances, enumerate_instances_supervised, enumerate_instances_with_stats,
    ConnectionRule, ExecOptions, Exploration, ExploreOptions,
};
use fsa_core::{FsaError, SosInstance};

/// The scenario's connection rules: one RSU and `V` vehicles (reduced
/// model, i.e. without `fwd` — the §5 setting), connected by
/// `send → rec` message flows.
#[must_use]
pub fn scenario_universe(
    max_vehicles: usize,
) -> (
    Vec<(fsa_core::component_model::ComponentModel, usize)>,
    Vec<ConnectionRule>,
) {
    let (rsu, rsu_send) = rsu_model();
    let (vehicle, actions) = vehicle_model_reduced();
    let rules = vec![
        // Use case 1/3: the RSU broadcast reaches a vehicle.
        ConnectionRule::new("RSU", rsu_send, "V", actions.rec),
        // Use case 2/3: a vehicle's warning reaches another vehicle.
        ConnectionRule::new("V", actions.send, "V", actions.rec),
    ];
    (vec![(rsu, 1), (vehicle, max_vehicles)], rules)
}

/// The component-model universe of the scenario: one RSU and up to
/// `max_vehicles` vehicles.
///
/// # Errors
///
/// Propagates enumeration errors (budget, validation).
pub fn enumerate_scenario_instances(
    max_vehicles: usize,
    options: &ExploreOptions,
) -> Result<Vec<SosInstance>, FsaError> {
    let (models, rules) = scenario_universe(max_vehicles);
    enumerate_instances(&models, &rules, options)
}

/// Like [`enumerate_scenario_instances`], but also returns the
/// [`fsa_core::explore::ExploreStats`] of the run (candidates, orbit
/// skips, certificate hits, per-stage timings).
///
/// # Errors
///
/// Propagates enumeration errors (budget, validation).
pub fn explore_scenario(
    max_vehicles: usize,
    options: &ExploreOptions,
) -> Result<Exploration, FsaError> {
    let (models, rules) = scenario_universe(max_vehicles);
    enumerate_instances_with_stats(&models, &rules, options)
}

/// Like [`explore_scenario`], executed under the supervised layer:
/// panic-isolated retried candidate builds, deadlines with coverage
/// accounting, and checkpoint/resume (see
/// [`fsa_core::explore::ExecOptions`]).
///
/// # Errors
///
/// Propagates enumeration errors plus
/// [`FsaError::CorruptCheckpoint`] for bad resume files.
pub fn explore_scenario_supervised(
    max_vehicles: usize,
    options: &ExploreOptions,
    exec: &ExecOptions,
) -> Result<Exploration, FsaError> {
    let (models, rules) = scenario_universe(max_vehicles);
    enumerate_instances_supervised(&models, &rules, options, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::explore::union_requirements_loop_free;
    use fsa_graph::iso::are_isomorphic;

    #[test]
    fn two_vehicle_universe_contains_fig2_and_fig3_shapes() {
        let instances = enumerate_scenario_instances(2, &ExploreOptions::default()).unwrap();
        assert!(!instances.is_empty());
        let fig2 = crate::instances::rsu_warns_vehicle();
        let fig3 = crate::instances::two_vehicle_warning();
        // The enumerated universe contains instances whose flow graphs
        // *embed* the Fig. 2 / Fig. 3 collaborations: instances where a
        // vehicle's show depends on the RSU broadcast or another
        // vehicle's sensing. (Full-model instances carry extra unused
        // actions, so we check requirement-level coverage, plus exact
        // shape matches for the pruned figures if present.)
        let (union, _skipped) = union_requirements_loop_free(&instances).unwrap();
        for fig in [&fig2, &fig3] {
            let wanted = fsa_core::manual::elicit(fig).unwrap().requirement_set();
            for req in &wanted {
                // Compare modulo the instance index of vehicle "w": the
                // enumeration uses numeric indices.
                let found = union.iter().any(|r| {
                    r.antecedent.name() == req.antecedent.name()
                        && r.consequent.name() == req.consequent.name()
                });
                assert!(found, "union lacks an analogue of {req} ({})", fig.name());
            }
        }
        let _ = are_isomorphic(&fig2.shape_graph(), &fig3.shape_graph());
    }

    #[test]
    fn universe_is_isomorphism_reduced() {
        let instances = enumerate_scenario_instances(2, &ExploreOptions::default()).unwrap();
        for (i, a) in instances.iter().enumerate() {
            for b in instances.iter().skip(i + 1) {
                assert!(!are_isomorphic(&a.shape_graph(), &b.shape_graph()));
            }
        }
    }

    #[test]
    fn supervised_scenario_matches_legacy() {
        let legacy = explore_scenario(2, &ExploreOptions::default()).unwrap();
        let sup =
            explore_scenario_supervised(2, &ExploreOptions::default(), &ExecOptions::default())
                .unwrap();
        assert_eq!(legacy.instances.len(), sup.instances.len());
        for (a, b) in legacy.instances.iter().zip(&sup.instances) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.graph(), b.graph());
        }
        assert_eq!(legacy.stats.candidates, sup.stats.candidates);
        assert_eq!(sup.stats.vectors_completed, sup.stats.vectors_total);
    }

    #[test]
    fn growing_universe_monotone() {
        let one = enumerate_scenario_instances(1, &ExploreOptions::default()).unwrap();
        let two = enumerate_scenario_instances(2, &ExploreOptions::default()).unwrap();
        assert!(two.len() > one.len());
    }

    #[test]
    fn four_vehicle_universe_completes_under_default_budget() {
        // The tentpole scale target: 16 candidate flows → 65 536 subsets
        // for the (1 RSU, 4 V) vector alone. Orbit pruning (vehicle
        // copies are interchangeable) plus streaming certificate dedup
        // keep this within the default budget.
        let three = explore_scenario(3, &ExploreOptions::default()).unwrap();
        let four = explore_scenario(
            4,
            &ExploreOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(four.stats.subsets_total >= 65_536, "{:?}", four.stats);
        assert!(
            four.stats.candidates <= 100_000,
            "within the default budget: {:?}",
            four.stats
        );
        assert!(four.stats.orbits_skipped > four.stats.candidates);
        assert!(!four.stats.truncated);
        assert!(four.instances.len() > three.instances.len());
        // Still isomorphism-reduced (spot-check is quadratic; the class
        // map guarantees it structurally).
        assert_eq!(four.stats.classes, four.instances.len());
    }
}
