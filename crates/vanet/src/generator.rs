//! Random V2V traffic scenario generation.
//!
//! The paper's models are hand-sized; real deployments involve hundreds
//! of vehicles. This generator produces seeded random SoS instances —
//! vehicles scattered along a road, a configurable fraction sensing a
//! danger, message flows between radio neighbours — so the scaling
//! benches can chart elicitation cost on realistic topologies.
//!
//! Loop-freedom is guaranteed by orienting message flows from lower to
//! higher vehicle index (a total order consistent with "messages travel
//! onward"), matching the paper's assumption that every action is a
//! progress in time.

use crate::actions;
use crate::position::{Position, Range};
use fsa_core::instance::{SosInstance, SosInstanceBuilder};
use fsa_core::{AuthRequirement, FsaError};
use fsa_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of vehicles.
    pub vehicles: usize,
    /// Length of the road (positions drawn uniformly from `0..length`).
    pub road_length: i64,
    /// Radio range for message flows.
    pub range: Range,
    /// Fraction of vehicles that sense a danger (warners), in `[0, 1]`.
    pub warner_fraction: f64,
    /// Fraction of receiving vehicles that also forward, in `[0, 1]`.
    pub forwarder_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            vehicles: 50,
            road_length: 2_000,
            range: Range(150),
            warner_fraction: 0.2,
            forwarder_fraction: 0.3,
        }
    }
}

/// Generates a random traffic SoS instance (deterministic per seed).
pub fn random_traffic_instance(config: &TrafficConfig, seed: u64) -> SosInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SosInstanceBuilder::new(&format!(
        "random traffic: {} vehicles, seed {seed}",
        config.vehicles
    ));

    struct Vehicle {
        position: Position,
        warner: bool,
        forwarder: bool,
        send_or_fwd: Option<fsa_graph::NodeId>,
        rec: Option<fsa_graph::NodeId>,
    }

    // Place vehicles and create their on-board actions.
    let mut fleet: Vec<Vehicle> = Vec::with_capacity(config.vehicles);
    for i in 0..config.vehicles {
        let tag = (i + 1).to_string();
        let driver = actions::driver(&tag);
        let owner = format!("V{tag}");
        let position = Position(rng.gen_range(0..config.road_length.max(1)));
        let warner = rng.gen_bool(config.warner_fraction.clamp(0.0, 1.0));
        let forwarder = !warner && rng.gen_bool(config.forwarder_fraction.clamp(0.0, 1.0));

        let pos = b.action_owned(actions::pos(&tag), &driver, &owner);
        if warner {
            let sense = b.action_owned(actions::sense(&tag), &driver, &owner);
            let send = b.action_owned(actions::send(&tag), &driver, &owner);
            b.flow(sense, send);
            b.flow(pos, send);
            fleet.push(Vehicle {
                position,
                warner,
                forwarder,
                send_or_fwd: Some(send),
                rec: None,
            });
        } else {
            let rec = b.action_owned(actions::rec(&tag), &driver, &owner);
            let show = b.action_owned(actions::show(&tag), &driver, &owner);
            b.flow(rec, show);
            b.flow(pos, show);
            let send_or_fwd = if forwarder {
                let fwd = b.action_owned(actions::fwd(&tag), &driver, &owner);
                b.flow(rec, fwd);
                b.policy_flow(pos, fwd);
                Some(fwd)
            } else {
                None
            };
            fleet.push(Vehicle {
                position,
                warner,
                forwarder,
                send_or_fwd,
                rec: Some(rec),
            });
        }
    }

    // Message flows: emitter i → receiver j for radio neighbours, j > i
    // (orientation guarantees loop freedom).
    for i in 0..fleet.len() {
        let Some(out) = fleet[i].send_or_fwd else {
            continue;
        };
        if !(fleet[i].warner || fleet[i].forwarder) {
            continue;
        }
        for j in (i + 1)..fleet.len() {
            let Some(rec) = fleet[j].rec else {
                continue;
            };
            if config.range.within(fleet[i].position, fleet[j].position) {
                b.flow(out, rec);
            }
        }
    }
    b.build()
}

/// Resolves each requirement's consequent action to its node in
/// `instance` — the protected sink the scaling benches sanity-check.
///
/// # Errors
///
/// Returns [`FsaError::UnknownAction`] naming the offending action if a
/// requirement's consequent is not an action of the instance (e.g. a
/// requirement elicited from a *different* instance). This path used to
/// `unwrap()` and panic.
pub fn requirement_sinks(
    instance: &SosInstance,
    requirements: &[AuthRequirement],
) -> Result<Vec<NodeId>, FsaError> {
    requirements
        .iter()
        .map(|r| {
            instance
                .find(&r.consequent)
                .ok_or_else(|| FsaError::UnknownAction(r.consequent.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::manual::elicit;

    #[test]
    fn deterministic_per_seed() {
        let config = TrafficConfig {
            vehicles: 20,
            ..Default::default()
        };
        let a = random_traffic_instance(&config, 9);
        let b = random_traffic_instance(&config, 9);
        assert_eq!(a.action_count(), b.action_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let c = random_traffic_instance(&config, 10);
        // Different seed very likely differs in structure.
        assert!(
            a.graph().edge_count() != c.graph().edge_count()
                || a.action_count() != c.action_count()
        );
    }

    #[test]
    fn generated_instances_are_loop_free_and_elicitable() {
        for seed in 0..10 {
            let inst = random_traffic_instance(&TrafficConfig::default(), seed);
            assert!(fsa_graph::topo::is_acyclic(inst.graph()), "seed {seed}");
            let report = elicit(&inst).expect("loop-free");
            // Every requirement's consequent is a sink.
            let sinks = inst.graph().sinks();
            let resolved = requirement_sinks(&inst, &report.requirements()).expect("all resolve");
            for y in resolved {
                assert!(sinks.contains(&y));
            }
        }
    }

    #[test]
    fn foreign_consequent_is_an_error_not_a_panic() {
        // Regression: resolving a requirement whose consequent is not in
        // the instance used to panic on `unwrap()`.
        let inst = random_traffic_instance(&TrafficConfig::default(), 1);
        let foreign = AuthRequirement::new(
            fsa_core::Action::parse("sense(ESP_1,sW)"),
            fsa_core::Action::parse("ghost(HMI_999,warn)"),
            fsa_core::Agent::new("D_999"),
        );
        let err = requirement_sinks(&inst, &[foreign]).unwrap_err();
        assert_eq!(
            err,
            FsaError::UnknownAction("ghost(HMI_999,warn)".to_owned())
        );
    }

    #[test]
    fn vehicle_count_scales_actions() {
        let small = random_traffic_instance(
            &TrafficConfig {
                vehicles: 10,
                ..Default::default()
            },
            1,
        );
        let big = random_traffic_instance(
            &TrafficConfig {
                vehicles: 100,
                ..Default::default()
            },
            1,
        );
        assert!(big.action_count() > small.action_count() * 5);
    }

    #[test]
    fn zero_vehicles_is_empty() {
        let inst = random_traffic_instance(
            &TrafficConfig {
                vehicles: 0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(inst.action_count(), 0);
    }

    #[test]
    fn all_warners_no_receivers() {
        let inst = random_traffic_instance(
            &TrafficConfig {
                vehicles: 8,
                warner_fraction: 1.0,
                ..Default::default()
            },
            4,
        );
        // Only sense/pos/send actions; no message flows (no receivers).
        assert_eq!(inst.action_count(), 8 * 3);
        let report = elicit(&inst).unwrap();
        // Each warner contributes 2 requirements (sense→send, pos→send).
        assert_eq!(report.requirements().len(), 16);
    }
}
