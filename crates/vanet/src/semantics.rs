//! Configurable consumption semantics for the APA vehicle model.
//!
//! The Δ-relations printed in §5.1 have `rec` consume both the received
//! message (removed from `net`) and the GPS datum (removed from the
//! bus). With exactly those semantics the two-vehicle instance has 12
//! reachable states, while the paper's tool output reports 13 (and
//! 13² = 169 for Fig. 9 vs. our 12² = 144) — an accounting detail of the
//! SH tool that the paper does not specify. This module makes both
//! choices explicit so the ablation bench can chart all four variants;
//! every qualitative result (minima, maxima, dependence matrix,
//! requirement sets) is identical across them.

use serde::{Deserialize, Serialize};

/// Whether an input datum is consumed by the action that uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consumption {
    /// The datum is removed (the paper's printed Δ-relations).
    Consume,
    /// The datum is retained (e.g. a broadcast medium keeps messages).
    Retain,
}

/// Consumption semantics of the vehicle APA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApaSemantics {
    /// Does `rec` remove the message from the shared `net` component?
    pub message: Consumption,
    /// Does `rec` remove the GPS datum from the vehicle bus?
    pub gps: Consumption,
}

impl ApaSemantics {
    /// The semantics of the Δ-relations as printed in §5.1.
    pub const PAPER: ApaSemantics = ApaSemantics {
        message: Consumption::Consume,
        gps: Consumption::Consume,
    };

    /// All four variants, for the ablation bench.
    pub const ALL: [ApaSemantics; 4] = [
        ApaSemantics {
            message: Consumption::Consume,
            gps: Consumption::Consume,
        },
        ApaSemantics {
            message: Consumption::Consume,
            gps: Consumption::Retain,
        },
        ApaSemantics {
            message: Consumption::Retain,
            gps: Consumption::Consume,
        },
        ApaSemantics {
            message: Consumption::Retain,
            gps: Consumption::Retain,
        },
    ];

    /// A short human-readable tag, e.g. `msg=consume/gps=retain`.
    pub fn tag(&self) -> String {
        let t = |c: Consumption| match c {
            Consumption::Consume => "consume",
            Consumption::Retain => "retain",
        };
        format!("msg={}/gps={}", t(self.message), t(self.gps))
    }
}

impl Default for ApaSemantics {
    fn default() -> Self {
        ApaSemantics::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper() {
        assert_eq!(ApaSemantics::default(), ApaSemantics::PAPER);
        assert_eq!(ApaSemantics::PAPER.message, Consumption::Consume);
    }

    #[test]
    fn four_distinct_variants() {
        let mut tags: Vec<String> = ApaSemantics::ALL.iter().map(ApaSemantics::tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 4);
    }

    #[test]
    fn tag_format() {
        assert_eq!(ApaSemantics::PAPER.tag(), "msg=consume/gps=consume");
    }
}
