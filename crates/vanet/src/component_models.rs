//! The functional component models of Fig. 1.
//!
//! * Fig. 1(a): the roadside unit — a single boundary action
//!   `send(cam(pos))`.
//! * Fig. 1(b): the vehicle — `sense`, `pos`, `send`, `rec`, `fwd`,
//!   `show` with the internal flows derived from use cases 2–4. The flow
//!   `pos → fwd` is marked as a *policy* flow: it exists only because of
//!   the position-based forwarding policy ("introduced for performance
//!   reasons", §4.4), which is what demotes requirement (4) from safety
//!   to availability.
//!
//! §5 uses a *reduced* vehicle model without the `fwd` action
//! ([`vehicle_model_reduced`]).

use fsa_core::component_model::{ComponentModel, TemplateActionId};

/// Template-action handles of the full vehicle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VehicleActions {
    /// `sense(ESP_i,sW)`
    pub sense: TemplateActionId,
    /// `pos(GPS_i,pos)`
    pub pos: TemplateActionId,
    /// `send(CU_i,cam(pos))`
    pub send: TemplateActionId,
    /// `rec(CU_i,cam(pos))`
    pub rec: TemplateActionId,
    /// `fwd(CU_i,cam(pos))` — `None` in the reduced model.
    pub fwd: Option<TemplateActionId>,
    /// `show(HMI_i,warn)`
    pub show: TemplateActionId,
}

/// The RSU component model of Fig. 1(a). Returns the model and the
/// handle of its `send(cam(pos))` action.
pub fn rsu_model() -> (ComponentModel, TemplateActionId) {
    let mut m = ComponentModel::new("RSU", "RSU_operator");
    let send = m.action("send(cam(pos))");
    (m, send)
}

/// The full vehicle component model of Fig. 1(b).
pub fn vehicle_model() -> (ComponentModel, VehicleActions) {
    let mut m = ComponentModel::new("V", "D_i");
    let sense = m.action("sense(ESP_i,sW)");
    let pos = m.action("pos(GPS_i,pos)");
    let send = m.action("send(CU_i,cam(pos))");
    let rec = m.action("rec(CU_i,cam(pos))");
    let fwd = m.action("fwd(CU_i,cam(pos))");
    let show = m.action("show(HMI_i,warn)");
    // Use case 2: sense + own position → send warning.
    m.flow(sense, send);
    m.flow(pos, send);
    // Use case 3: received warning + own position → show to driver.
    m.flow(rec, show);
    m.flow(pos, show);
    // Use case 4: received warning → forward; the position check is the
    // forwarding *policy* ("given that the position of this occurrence
    // is not too far away").
    m.flow(rec, fwd);
    m.policy_flow(pos, fwd);
    (
        m,
        VehicleActions {
            sense,
            pos,
            send,
            rec,
            fwd: Some(fwd),
            show,
        },
    )
}

/// The reduced vehicle model used by the §5 analysis ("a reduced version
/// of the functional component model of a vehicle … "that" does not
/// contain the forward action").
pub fn vehicle_model_reduced() -> (ComponentModel, VehicleActions) {
    let mut m = ComponentModel::new("V", "D_i");
    let sense = m.action("sense(ESP_i,sW)");
    let pos = m.action("pos(GPS_i,pos)");
    let send = m.action("send(CU_i,cam(pos))");
    let rec = m.action("rec(CU_i,cam(pos))");
    let show = m.action("show(HMI_i,warn)");
    m.flow(sense, send);
    m.flow(pos, send);
    m.flow(rec, show);
    m.flow(pos, show);
    (
        m,
        VehicleActions {
            sense,
            pos,
            send,
            rec,
            fwd: None,
            show,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::instance::{FlowKind, SosInstanceBuilder};

    #[test]
    fn rsu_is_single_action() {
        let (m, _) = rsu_model();
        assert_eq!(m.actions().len(), 1);
        assert!(m.flows().is_empty());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn vehicle_model_fig1b_shape() {
        let (m, a) = vehicle_model();
        assert_eq!(m.actions().len(), 6);
        assert_eq!(m.flows().len(), 6);
        assert!(m.validate().is_ok());
        assert!(a.fwd.is_some());
    }

    #[test]
    fn reduced_model_has_no_fwd() {
        let (m, a) = vehicle_model_reduced();
        assert_eq!(m.actions().len(), 5);
        assert_eq!(m.flows().len(), 4);
        assert!(a.fwd.is_none());
    }

    #[test]
    fn policy_flow_is_pos_to_fwd() {
        let (m, a) = vehicle_model();
        let mut b = SosInstanceBuilder::new("t");
        let v = m.instantiate("2", &mut b).unwrap();
        let inst = b.build();
        assert_eq!(
            inst.flow_kind(v.node(a.pos), v.node(a.fwd.unwrap())),
            Some(FlowKind::Policy)
        );
        assert_eq!(
            inst.flow_kind(v.node(a.pos), v.node(a.show)),
            Some(FlowKind::Functional)
        );
    }

    #[test]
    fn instantiated_action_names() {
        let (m, a) = vehicle_model();
        let mut b = SosInstanceBuilder::new("t");
        let v = m.instantiate("1", &mut b).unwrap();
        let inst = b.build();
        assert_eq!(inst.action(v.node(a.sense)), &crate::actions::sense("1"));
        assert_eq!(inst.action(v.node(a.show)), &crate::actions::show("1"));
        assert_eq!(inst.stakeholder(v.node(a.show)).name(), "D_1");
    }
}
