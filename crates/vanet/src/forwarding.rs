//! An *extended* APA vehicle model with message forwarding (use case 4)
//! and an attacker, beyond the reduced model of the paper's §5.
//!
//! The §5 analysis deliberately excludes the `fwd` action; this module
//! adds it back so the tool-assisted pipeline can be exercised on the
//! forwarding scenario of Fig. 4 and cross-checked against the manual
//! analysis. Two departures from the printed model are needed (and
//! documented in DESIGN.md):
//!
//! * messages carry the **sender position** in addition to the danger
//!   position — `(cam, V<i>, danger, sender)` — so that multi-hop radio
//!   connectivity is expressible on the one shared `net` component
//!   (separate *radio* range vs. *warning* range);
//! * a forwarding vehicle's `rec` retains the GPS datum and stores the
//!   received payload, so `fwd` can apply the position-based forwarding
//!   policy and re-emit the message from its own position.
//!
//! [`add_attacker`] contributes an injection automaton that forges `cam`
//! messages — the threat the elicited authenticity requirements are
//! meant to exclude. Verifying the requirements against the attacked
//! behaviour yields concrete **attack traces**
//! (see `fsa_core::verify` and the `attack_trace` example).

use crate::position::{Position, Range};
use apa::rule::{FnRule, LocalState};
use apa::{Apa, ApaBuilder, ApaError, Value};

/// Radio and warning ranges of the extended model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeConfig {
    /// Single-hop radio range (sender position → receiver position).
    pub radio: Range,
    /// Warning relevance range (danger position → receiver position).
    pub warn: Range,
    /// Forwarding-policy range (danger position → forwarder position).
    pub forward: Range,
}

impl Default for RangeConfig {
    fn default() -> Self {
        RangeConfig {
            radio: Range(100),
            warn: Range(300),
            forward: Range(300),
        }
    }
}

/// Role of a vehicle in the extended model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Senses the danger and sends the original warning (use case 2).
    Warner,
    /// Receives and forwards (use cases 3 + 4).
    Forwarder,
    /// Receives and shows only (use case 3).
    Receiver,
}

/// Adds one extended vehicle.
///
/// Component names follow the §5 convention (`esp<i>`, `gps<i>`,
/// `bus<i>`, `hmi<i>`, shared `net`); automaton names are `V<i>_sense`,
/// `V<i>_pos`, `V<i>_send`, `V<i>_rec`, `V<i>_show` and — for
/// forwarders — `V<i>_fwd`.
pub fn add_extended_vehicle(
    builder: &mut ApaBuilder,
    tag: &str,
    role: Role,
    position: Position,
    ranges: RangeConfig,
) {
    let esp = builder.component(
        &format!("esp{tag}"),
        matches!(role, Role::Warner)
            .then(|| Value::atom("sW"))
            .into_iter()
            .collect::<Vec<_>>(),
    );
    let gps = builder.component(&format!("gps{tag}"), [Value::int(position.0)]);
    let bus = builder.component(&format!("bus{tag}"), []);
    let hmi = builder.component(&format!("hmi{tag}"), []);
    let net = builder.shared_component("net");

    builder.automaton(
        &format!("V{tag}_sense"),
        [esp, bus],
        apa::rule::move_any(0, 1),
    );
    builder.automaton(
        &format!("V{tag}_pos"),
        [gps, bus],
        apa::rule::move_any(0, 1),
    );

    // send: measurement + own position → message with danger = sender =
    // own position.
    let vehicle_id = format!("V{tag}");
    builder.automaton(
        &format!("V{tag}_send"),
        [bus, net],
        Box::new(FnRule::new({
            let vehicle_id = vehicle_id.clone();
            move |local: &LocalState| {
                let sw = Value::atom("sW");
                if !local[0].contains(&sw) {
                    return vec![];
                }
                local[0]
                    .iter()
                    .filter_map(Value::as_int)
                    .map(|coord| {
                        let mut next = local.clone();
                        next[0].remove(&sw);
                        next[0].remove(&Value::int(coord));
                        let msg = cam_message(&vehicle_id, coord, coord);
                        next[1].insert(msg.clone());
                        (msg.to_string(), next)
                    })
                    .collect()
            }
        })),
    );

    // rec: radio check against the sender position, warning relevance
    // against the danger position. Forwarders retain the GPS datum and
    // keep the payload for fwd.
    let forwards = matches!(role, Role::Forwarder);
    builder.automaton(
        &format!("V{tag}_rec"),
        [net, bus],
        Box::new(FnRule::new(move |local: &LocalState| {
            let mut firings = Vec::new();
            for msg in local[0].iter().filter(|m| m.has_tag("cam")) {
                let (Some(danger), Some(sender)) = (
                    msg.field(2).and_then(Value::as_int),
                    msg.field(3).and_then(Value::as_int),
                ) else {
                    continue;
                };
                for own in local[1].iter().filter_map(Value::as_int) {
                    if !ranges.radio.within(Position(sender), Position(own))
                        || !ranges.warn.within(Position(danger), Position(own))
                    {
                        continue;
                    }
                    let mut next = local.clone();
                    next[0].remove(msg);
                    if !forwards {
                        next[1].remove(&Value::int(own));
                    }
                    next[1].insert(Value::atom("warn"));
                    if forwards {
                        next[1].insert(Value::tuple([Value::atom("relay"), Value::int(danger)]));
                    }
                    firings.push((msg.to_string(), next));
                }
            }
            firings
        })),
    );

    if forwards {
        // fwd: position-based forwarding policy — re-emit the payload
        // from the own position if the danger is still close enough.
        builder.automaton(
            &format!("V{tag}_fwd"),
            [bus, net],
            Box::new(FnRule::new(move |local: &LocalState| {
                let mut firings = Vec::new();
                let relays: Vec<i64> = local[0]
                    .iter()
                    .filter(|v| v.has_tag("relay"))
                    .filter_map(|v| v.field(1).and_then(Value::as_int))
                    .collect();
                for danger in relays {
                    for own in local[0].iter().filter_map(Value::as_int) {
                        if !ranges.forward.within(Position(danger), Position(own)) {
                            continue;
                        }
                        let mut next = local.clone();
                        next[0].remove(&Value::tuple([Value::atom("relay"), Value::int(danger)]));
                        next[0].remove(&Value::int(own));
                        let msg = cam_message(&vehicle_id, danger, own);
                        next[1].insert(msg.clone());
                        firings.push((msg.to_string(), next));
                    }
                }
                firings
            })),
        );
    }

    builder.automaton(
        &format!("V{tag}_show"),
        [bus, hmi],
        apa::rule::move_matching(0, 1, |v| v == &Value::atom("warn")),
    );
}

/// A forged-message attacker: a single injection of a `cam` message
/// claiming `danger` at the given coordinates, sent from `sender`.
///
/// The automaton is named `ATK_inject` — after elicitation one can
/// verify that every requirement `auth(V1_sense, …_show, D)` is violated
/// on the attacked behaviour, with the injection on the attack trace.
pub fn add_attacker(builder: &mut ApaBuilder, danger: Position, sender: Position) {
    let atk = builder.component("atk", [Value::atom("armed")]);
    let net = builder.shared_component("net");
    builder.automaton(
        "ATK_inject",
        [atk, net],
        Box::new(FnRule::new(move |local: &LocalState| {
            let armed = Value::atom("armed");
            if !local[0].contains(&armed) {
                return vec![];
            }
            let mut next = local.clone();
            next[0].remove(&armed);
            let msg = cam_message("ATK", danger.0, sender.0);
            next[1].insert(msg.clone());
            vec![(msg.to_string(), next)]
        })),
    );
}

/// The message term `(cam, <id>, <danger>, <sender>)`.
fn cam_message(id: &str, danger: i64, sender: i64) -> Value {
    Value::tuple([
        Value::atom("cam"),
        Value::atom(id),
        Value::int(danger),
        Value::int(sender),
    ])
}

/// The three-vehicle forwarding instance matching Fig. 4: `V1` (warner,
/// at 0) — `V2` (forwarder, at 80) — `V3` (receiver, at 160). With the
/// default ranges, `V3` is outside `V1`'s radio range and receives the
/// warning only through `V2`.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn forwarding_chain_apa() -> Result<Apa, ApaError> {
    forwarding_chain_apa_with(RangeConfig::default(), false)
}

/// A forwarding chain of arbitrary length: `V1` (warner at 0),
/// `V2 … V{k+1}` (forwarders, 80 apart), `V{k+2}` (receiver) — the APA
/// counterpart of [`crate::instances::forwarding_chain`]. Each vehicle
/// is in radio range only of its direct neighbours, so the warning must
/// travel every hop; warning and forwarding ranges are widened to cover
/// the whole chain.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn forwarding_chain_apa_n(forwarders: usize) -> Result<Apa, ApaError> {
    let ranges = RangeConfig {
        radio: Range(100),
        warn: Range(1_000_000),
        forward: Range(1_000_000),
    };
    let mut b = ApaBuilder::new();
    add_extended_vehicle(&mut b, "1", Role::Warner, Position(0), ranges);
    for k in 0..forwarders {
        let tag = (k + 2).to_string();
        add_extended_vehicle(
            &mut b,
            &tag,
            Role::Forwarder,
            Position(80 * (k as i64 + 1)),
            ranges,
        );
    }
    let last = (forwarders + 2).to_string();
    add_extended_vehicle(
        &mut b,
        &last,
        Role::Receiver,
        Position(80 * (forwarders as i64 + 1)),
        ranges,
    );
    b.build()
}

/// Like [`forwarding_chain_apa`], optionally adding the attacker.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn forwarding_chain_apa_with(ranges: RangeConfig, attacker: bool) -> Result<Apa, ApaError> {
    let mut b = ApaBuilder::new();
    add_extended_vehicle(&mut b, "1", Role::Warner, Position(0), ranges);
    add_extended_vehicle(&mut b, "2", Role::Forwarder, Position(80), ranges);
    add_extended_vehicle(&mut b, "3", Role::Receiver, Position(160), ranges);
    if attacker {
        // The attacker forges a danger right next to V3, transmitting
        // from within V3's radio range.
        add_attacker(&mut b, Position(150), Position(150));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa::ReachOptions;

    fn reach(apa: &Apa) -> apa::ReachGraph {
        apa.reachability(&ReachOptions::default()).unwrap()
    }

    #[test]
    fn chain_minima_and_maxima() {
        let g = reach(&forwarding_chain_apa().unwrap());
        assert_eq!(g.minima(), vec!["V1_pos", "V1_sense", "V2_pos", "V3_pos"]);
        // Both V2 and V3 show a warning; everything else triggers more.
        assert_eq!(g.maxima(), vec!["V2_show", "V3_show"]);
    }

    #[test]
    fn v3_only_reachable_through_forwarder() {
        let g = reach(&forwarding_chain_apa().unwrap());
        let nfa = g.to_nfa();
        // Direct reception from V1 is impossible for V3 (radio range).
        assert!(!nfa.accepts(["V1_sense", "V1_pos", "V1_send", "V3_pos", "V3_rec"]));
        // Via V2 it works.
        assert!(nfa.accepts([
            "V1_sense", "V1_pos", "V1_send", "V2_pos", "V2_rec", "V2_fwd", "V3_pos", "V3_rec",
            "V3_show"
        ]));
    }

    #[test]
    fn v3_show_depends_on_forwarder_position() {
        // The APA analogue of the paper's requirement (4): the
        // forwarding policy makes V3's warning depend on V2's position.
        let g = reach(&forwarding_chain_apa().unwrap());
        let nfa = g.to_nfa();
        for minimum in ["V1_sense", "V1_pos", "V2_pos", "V3_pos"] {
            assert!(
                automata::temporal::precedes(&nfa, minimum, "V3_show"),
                "V3_show must depend on {minimum}"
            );
        }
        assert!(!automata::temporal::precedes(&nfa, "V3_pos", "V2_show"));
    }

    #[test]
    fn attacker_breaks_sense_precedence() {
        let g = reach(&forwarding_chain_apa_with(RangeConfig::default(), true).unwrap());
        let nfa = g.to_nfa();
        // Without the attacker this holds (previous test); with it, V3
        // can be warned although nothing was sensed.
        assert!(!automata::temporal::precedes(&nfa, "V1_sense", "V3_show"));
        let trace =
            automata::temporal::precedence_counterexample(&nfa, "V1_sense", "V3_show").unwrap();
        assert!(trace.contains(&"ATK_inject".to_owned()), "{trace:?}");
        assert_eq!(trace.last().map(String::as_str), Some("V3_show"));
    }

    #[test]
    fn forged_message_propagates_through_the_forwarder() {
        // The attacker transmits at 150 — outside V1's radio range (0),
        // inside V2's (80). V2 dutifully forwards the forged warning,
        // which then reaches V1: multi-hop injection. This is precisely
        // the attack surface the authenticity requirements close.
        let g = reach(&forwarding_chain_apa_with(RangeConfig::default(), true).unwrap());
        let nfa = g.to_nfa();
        assert!(!automata::temporal::precedes(&nfa, "V1_sense", "V2_show"));
        // Without the attacker, V1 never shows anything; with it, the
        // relayed forgery can reach V1's driver.
        let clean = reach(&forwarding_chain_apa().unwrap());
        assert!(!clean.maxima().contains(&"V1_show".to_owned()));
        assert!(g.maxima().contains(&"V1_show".to_owned()));
        assert!(nfa.accepts([
            "ATK_inject",
            "V2_pos",
            "V2_rec",
            "V2_fwd",
            "V1_pos",
            "V1_rec",
            "V1_show"
        ]));
    }

    #[test]
    fn wider_radio_makes_direct_reception_possible() {
        let ranges = RangeConfig {
            radio: Range(1_000),
            ..RangeConfig::default()
        };
        let g = reach(&forwarding_chain_apa_with(ranges, false).unwrap());
        let nfa = g.to_nfa();
        assert!(nfa.accepts(["V1_sense", "V1_pos", "V1_send", "V3_pos", "V3_rec"]));
    }
}
