//! Positions, distances and communication/warning ranges.
//!
//! The paper abstracts positions to named constants (`pos1 … pos4`) and
//! guards the `rec` action with `distance(msg, gps) < range`. This
//! module gives those constants one-dimensional road coordinates so the
//! guard is computable: `pos1`/`pos2` lie within range of each other,
//! `pos3`/`pos4` likewise, but the two pairs are out of range — exactly
//! the configuration of the four-vehicle instance of Fig. 8.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position on the (one-dimensional) road.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Position(pub i64);

impl Position {
    /// Distance to another position.
    pub fn distance(self, other: Position) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A communication / warning range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Range(pub u64);

impl Range {
    /// The default range used by the scenario models.
    pub const DEFAULT: Range = Range(100);

    /// Returns `true` if `a` and `b` are within this range.
    pub fn within(self, a: Position, b: Position) -> bool {
        a.distance(b) < self.0
    }
}

/// The named positions of the paper's APA models (`Z_gps = P({pos1,
/// pos2, pos3, pos4})`), with coordinates realising the Fig. 8
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NamedPosition {
    /// Position of vehicle 1 (warns).
    Pos1,
    /// Position of vehicle 2 (within range of `Pos1`).
    Pos2,
    /// Position of vehicle 3 (warns; far from the first pair).
    Pos3,
    /// Position of vehicle 4 (within range of `Pos3`).
    Pos4,
}

impl NamedPosition {
    /// All named positions, in order.
    pub const ALL: [NamedPosition; 4] = [
        NamedPosition::Pos1,
        NamedPosition::Pos2,
        NamedPosition::Pos3,
        NamedPosition::Pos4,
    ];

    /// The atom name used in APA values (`pos1` …).
    pub fn atom(self) -> &'static str {
        match self {
            NamedPosition::Pos1 => "pos1",
            NamedPosition::Pos2 => "pos2",
            NamedPosition::Pos3 => "pos3",
            NamedPosition::Pos4 => "pos4",
        }
    }

    /// The coordinate of this named position.
    pub fn coordinate(self) -> Position {
        match self {
            NamedPosition::Pos1 => Position(0),
            NamedPosition::Pos2 => Position(50),
            NamedPosition::Pos3 => Position(10_000),
            NamedPosition::Pos4 => Position(10_050),
        }
    }

    /// Looks a named position up by its atom name.
    pub fn from_atom(atom: &str) -> Option<NamedPosition> {
        NamedPosition::ALL.into_iter().find(|p| p.atom() == atom)
    }
}

/// Distance between two positions given by atom name; `None` if either
/// name is unknown.
pub fn atom_distance(a: &str, b: &str) -> Option<u64> {
    Some(
        NamedPosition::from_atom(a)?
            .coordinate()
            .distance(NamedPosition::from_atom(b)?.coordinate()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(Position(3).distance(Position(-4)), 7);
        assert_eq!(Position(0).distance(Position(0)), 0);
    }

    #[test]
    fn range_within() {
        let r = Range(100);
        assert!(r.within(Position(0), Position(99)));
        assert!(!r.within(Position(0), Position(100)));
        assert!(r.within(Position(5), Position(5)));
    }

    #[test]
    fn fig8_configuration() {
        let r = Range::DEFAULT;
        let [p1, p2, p3, p4] = NamedPosition::ALL.map(NamedPosition::coordinate);
        assert!(r.within(p1, p2), "pair 1 in range");
        assert!(r.within(p3, p4), "pair 2 in range");
        assert!(!r.within(p1, p3), "pairs out of range");
        assert!(!r.within(p2, p4));
        assert!(!r.within(p1, p4));
        assert!(!r.within(p2, p3));
    }

    #[test]
    fn atom_round_trip() {
        for p in NamedPosition::ALL {
            assert_eq!(NamedPosition::from_atom(p.atom()), Some(p));
        }
        assert_eq!(NamedPosition::from_atom("nowhere"), None);
    }

    #[test]
    fn atom_distance_lookup() {
        assert_eq!(atom_distance("pos1", "pos2"), Some(50));
        assert_eq!(atom_distance("pos1", "bogus"), None);
    }

    #[test]
    fn display() {
        assert_eq!(Position(-3).to_string(), "-3");
    }
}
