//! The APA models of Figs. 5, 6 and 8.
//!
//! Each vehicle `V_i` contributes the state components `esp_i`, `gps_i`,
//! `bus_i`, `hmi_i` and the elementary automata `Vi_sense`, `Vi_pos`,
//! `Vi_send`, `Vi_rec`, `Vi_show`; all vehicles share the wireless
//! medium `net` (§5.2: "the net components are mapped together").
//!
//! Value conventions: an ESP measurement is the atom `sW`; a GPS datum
//! is an integer road coordinate; a received warning is the atom `warn`;
//! a message is the tuple `(cam, V<i>, <coordinate>)` as in
//! `Z_net = P({cam} × {V₁..V₄} × Z_gps)`.

use crate::position::{Position, Range};
use crate::semantics::{ApaSemantics, Consumption};
use apa::rule::{FnRule, LocalState};
use apa::{Apa, ApaBuilder, ApaError, Value};
use fsa_core::action::Agent;

/// Configuration of one vehicle in an APA instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VehicleConfig {
    /// Instance tag (`"1"`, `"2"`, …) — appears in component and
    /// automaton names.
    pub tag: String,
    /// Pending ESP measurement (use case 2 vehicles sense `sW`).
    pub senses_slippery_wheels: bool,
    /// Pending GPS position, if any.
    pub position: Option<Position>,
}

impl VehicleConfig {
    /// A warning vehicle (has both a measurement and a position).
    pub fn warner(tag: &str, position: Position) -> Self {
        VehicleConfig {
            tag: tag.to_owned(),
            senses_slippery_wheels: true,
            position: Some(position),
        }
    }

    /// A receiving vehicle (has only a position).
    pub fn receiver(tag: &str, position: Position) -> Self {
        VehicleConfig {
            tag: tag.to_owned(),
            senses_slippery_wheels: false,
            position: Some(position),
        }
    }
}

/// Adds one vehicle to `builder` (gluing it to the shared `net`).
pub fn add_vehicle(
    builder: &mut ApaBuilder,
    config: &VehicleConfig,
    semantics: ApaSemantics,
    range: Range,
) {
    let tag = &config.tag;
    let esp = builder.component(
        &format!("esp{tag}"),
        config
            .senses_slippery_wheels
            .then(|| Value::atom("sW"))
            .into_iter()
            .collect::<Vec<_>>(),
    );
    let gps = builder.component(
        &format!("gps{tag}"),
        config
            .position
            .map(|p| Value::int(p.0))
            .into_iter()
            .collect::<Vec<_>>(),
    );
    let bus = builder.component(&format!("bus{tag}"), []);
    let hmi = builder.component(&format!("hmi{tag}"), []);
    let net = builder.shared_component("net");

    // Δ_{Vi_sense}: move a pending measurement from esp to the bus.
    builder.automaton(
        &format!("V{tag}_sense"),
        [esp, bus],
        apa::rule::move_any(0, 1),
    );
    // Δ_{Vi_pos}: move a pending GPS datum from gps to the bus.
    builder.automaton(
        &format!("V{tag}_pos"),
        [gps, bus],
        apa::rule::move_any(0, 1),
    );
    // Δ_{Vi_send}: consume measurement + position from the bus, put a
    // cam message on the net. The rule is shared with the editable
    // model (`fsa_core::delta`), so hand-built scenarios and
    // edit-script sessions cannot drift apart.
    builder.automaton(
        &format!("V{tag}_send"),
        [bus, net],
        fsa_core::delta::send_cam_rule(format!("V{tag}")),
    );
    // Δ_{Vi_rec}: a cam message within range of the own position puts a
    // warning on the bus; consumption per `semantics`. Shared with
    // `fsa_core::delta` like the send rule; the strict `< range`
    // distance guard is `Range::within`'s.
    builder.automaton(
        &format!("V{tag}_rec"),
        [net, bus],
        fsa_core::delta::recv_cam_rule(
            range.0,
            semantics.message == Consumption::Consume,
            semantics.gps == Consumption::Consume,
        ),
    );
    // Δ_{Vi_show}: move a warning from the bus to the HMI.
    builder.automaton(
        &format!("V{tag}_show"),
        [bus, hmi],
        apa::rule::move_matching(0, 1, |v| v == &Value::atom("warn")),
    );
}

/// Adds a roadside unit broadcasting one cooperative awareness message
/// about a danger at `danger` (use case 1). The automaton is named
/// `RSU_send`; the message has the same `(cam, id, coordinate)` shape
/// as vehicle messages.
pub fn add_rsu(builder: &mut ApaBuilder, danger: Position) {
    let rsu = builder.component("rsu", [Value::atom("pending")]);
    let net = builder.shared_component("net");
    builder.automaton(
        "RSU_send",
        [rsu, net],
        Box::new(FnRule::new(move |local: &LocalState| {
            let pending = Value::atom("pending");
            if !local[0].contains(&pending) {
                return vec![];
            }
            let mut next = local.clone();
            next[0].remove(&pending);
            let msg = Value::tuple([Value::atom("cam"), Value::atom("RSU"), Value::int(danger.0)]);
            next[1].insert(msg.clone());
            vec![(msg.to_string(), next)]
        })),
    );
}

/// The Fig. 2 analogue in APA form: a roadside unit warns one receiving
/// vehicle (use cases 1 + 3). Tool-assisted elicitation yields the APA
/// rendering of Example 2's two requirements.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn rsu_vehicle_apa(semantics: ApaSemantics) -> Result<Apa, ApaError> {
    let mut b = ApaBuilder::new();
    add_rsu(&mut b, Position(0));
    add_vehicle(
        &mut b,
        &VehicleConfig::receiver("1", Position(50)),
        semantics,
        Range::DEFAULT,
    );
    b.build()
}

/// The single-vehicle APA model of Fig. 5 (5 state components incl. the
/// shared `net`, 5 elementary automata).
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn single_vehicle_apa() -> Result<Apa, ApaError> {
    let mut b = ApaBuilder::new();
    add_vehicle(
        &mut b,
        &VehicleConfig::warner("i", Position(0)),
        ApaSemantics::PAPER,
        Range::DEFAULT,
    );
    b.build()
}

/// The two-vehicle SoS instance of Fig. 6 / Example 5: `V1` (use case 2)
/// warns `V2` (use case 3); both within range.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn two_vehicle_apa(semantics: ApaSemantics) -> Result<Apa, ApaError> {
    n_pair_apa(1, semantics)
}

/// The four-vehicle instance of Fig. 8: two pairs, each in range, pairs
/// mutually out of range (`V1` warns `V2`, `V3` warns `V4`).
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn four_vehicle_apa(semantics: ApaSemantics) -> Result<Apa, ApaError> {
    n_pair_apa(2, semantics)
}

/// `pairs` disjoint (warner, receiver) pairs on one shared net, pair `k`
/// at coordinates far from every other pair — the generalisation used by
/// the state-explosion bench. Vehicles are tagged `1, 2, …, 2·pairs` in
/// (warner, receiver) order per pair.
///
/// # Errors
///
/// Propagates [`ApaError`] from model construction.
pub fn n_pair_apa(pairs: usize, semantics: ApaSemantics) -> Result<Apa, ApaError> {
    let mut b = ApaBuilder::new();
    for k in 0..pairs {
        let base = (k as i64) * 10_000;
        let warner_tag = (2 * k + 1).to_string();
        let receiver_tag = (2 * k + 2).to_string();
        add_vehicle(
            &mut b,
            &VehicleConfig::warner(&warner_tag, Position(base)),
            semantics,
            Range::DEFAULT,
        );
        add_vehicle(
            &mut b,
            &VehicleConfig::receiver(&receiver_tag, Position(base + 50)),
            semantics,
            Range::DEFAULT,
        );
    }
    b.build()
}

/// The stakeholder of an automaton-named action: `V2_show ↦ D_2` (the
/// driver of the vehicle whose HMI shows the warning); other actions
/// belong to their vehicle's driver as well. Delegates to the editable
/// model's [`fsa_core::delta::default_stakeholder`] convention.
pub fn stakeholder_of(automaton: &str) -> Agent {
    fsa_core::delta::default_stakeholder(automaton)
}

/// The editable-model counterpart of [`n_pair_apa`] with the paper's
/// Δ-semantics: the same components, flows, and declaration order, so
/// it compiles to an identical APA (pinned by test). This is what
/// `fsa serve`'s editable scenario sessions and `fsa elicit
/// --edit-script` start from.
pub fn n_pair_model(pairs: usize) -> fsa_core::delta::EditModel {
    use fsa_core::delta::{Flow, FlowKind, ModelDelta};
    let mut model = fsa_core::delta::EditModel::new();
    let mut apply = |delta: ModelDelta| {
        model
            .apply(&delta)
            .expect("n_pair_model deltas are well-formed");
    };
    let component = |name: String, initial: Vec<i64>, atoms: Vec<&str>| ModelDelta::AddComponent {
        name,
        initial: initial
            .into_iter()
            .map(fsa_core::delta::ValueLit::Int)
            .chain(
                atoms
                    .into_iter()
                    .map(|a| fsa_core::delta::ValueLit::Atom(a.to_owned())),
            )
            .collect(),
    };
    let flow = |name: String, kind: FlowKind, from: String, to: String| ModelDelta::AddFlow {
        flow: Flow {
            name,
            from,
            to,
            kind,
        },
    };
    for k in 0..pairs {
        let base = (k as i64) * 10_000;
        for (tag, position, senses) in [(2 * k + 1, base, true), (2 * k + 2, base + 50, false)] {
            apply(component(
                format!("esp{tag}"),
                vec![],
                if senses { vec!["sW"] } else { vec![] },
            ));
            apply(component(format!("gps{tag}"), vec![position], vec![]));
            apply(component(format!("bus{tag}"), vec![], vec![]));
            apply(component(format!("hmi{tag}"), vec![], vec![]));
            if k == 0 && tag == 1 {
                apply(component("net".to_owned(), vec![], vec![]));
            }
            apply(flow(
                format!("V{tag}_sense"),
                FlowKind::Move,
                format!("esp{tag}"),
                format!("bus{tag}"),
            ));
            apply(flow(
                format!("V{tag}_pos"),
                FlowKind::Move,
                format!("gps{tag}"),
                format!("bus{tag}"),
            ));
            apply(flow(
                format!("V{tag}_send"),
                FlowKind::SendCam {
                    vehicle: format!("V{tag}"),
                },
                format!("bus{tag}"),
                "net".to_owned(),
            ));
            apply(flow(
                format!("V{tag}_rec"),
                FlowKind::RecvCam {
                    range: Range::DEFAULT.0,
                    consume_msg: true,
                    consume_gps: true,
                },
                "net".to_owned(),
                format!("bus{tag}"),
            ));
            apply(flow(
                format!("V{tag}_show"),
                FlowKind::MoveAtom("warn".to_owned()),
                format!("bus{tag}"),
                format!("hmi{tag}"),
            ));
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa::ReachOptions;

    fn reach(apa: &Apa) -> apa::ReachGraph {
        apa.reachability(&ReachOptions::default()).unwrap()
    }

    #[test]
    fn fig5_vehicle_model_shape() {
        let apa = single_vehicle_apa().unwrap();
        assert_eq!(apa.component_count(), 5, "esp, gps, bus, hmi, net");
        assert_eq!(apa.automaton_count(), 5);
        let names: Vec<&str> = apa.automaton_names().collect();
        assert_eq!(
            names,
            vec!["Vi_sense", "Vi_pos", "Vi_send", "Vi_rec", "Vi_show"]
        );
    }

    #[test]
    fn fig7_two_vehicle_reachability() {
        // Paper Δ-semantics: 12 states (see crate::semantics docs), one
        // dead state, minima {V1_pos, V1_sense, V2_pos}, maxima {V2_show}.
        let g = reach(&two_vehicle_apa(ApaSemantics::PAPER).unwrap());
        assert_eq!(g.state_count(), 12);
        assert_eq!(g.dead_states().len(), 1);
        assert_eq!(g.minima(), vec!["V1_pos", "V1_sense", "V2_pos"]);
        assert_eq!(g.maxima(), vec!["V2_show"]);
    }

    #[test]
    fn fig9_four_vehicle_reachability_squares() {
        let g2 = reach(&two_vehicle_apa(ApaSemantics::PAPER).unwrap());
        let g4 = reach(&four_vehicle_apa(ApaSemantics::PAPER).unwrap());
        assert_eq!(g4.state_count(), g2.state_count() * g2.state_count());
        assert_eq!(g4.minima().len(), 6);
        assert_eq!(g4.maxima(), vec!["V2_show", "V4_show"]);
    }

    #[test]
    fn warner_cannot_warn_itself() {
        // After send, V1's bus is empty, so V1_rec never fires and
        // V1_show is not a maximum.
        let g = reach(&two_vehicle_apa(ApaSemantics::PAPER).unwrap());
        assert!(!g
            .to_nfa()
            .accepts(["V1_sense", "V1_pos", "V1_send", "V1_rec"]));
    }

    #[test]
    fn out_of_range_message_not_received() {
        let g = reach(&four_vehicle_apa(ApaSemantics::PAPER).unwrap());
        let nfa = g.to_nfa();
        // V4 must not receive V1's message: V1 sends, V4 has its pos, but
        // the distance guard blocks V4_rec until V3 sends.
        assert!(!nfa.accepts(["V1_sense", "V1_pos", "V1_send", "V4_pos", "V4_rec"]));
        assert!(nfa.accepts(["V3_sense", "V3_pos", "V3_send", "V4_pos", "V4_rec"]));
    }

    #[test]
    fn retain_semantics_changes_state_count_only() {
        for semantics in ApaSemantics::ALL {
            let g = reach(&two_vehicle_apa(semantics).unwrap());
            assert_eq!(
                g.minima(),
                vec!["V1_pos", "V1_sense", "V2_pos"],
                "{}",
                semantics.tag()
            );
            // Maxima are V2_show whenever a dead state exists; the
            // retain/retain variant cycles and has no dead state.
            if !g.dead_states().is_empty() {
                assert_eq!(g.maxima(), vec!["V2_show"], "{}", semantics.tag());
            }
        }
    }

    #[test]
    fn fig2_analogue_rsu_warns_vehicle() {
        let g = reach(&rsu_vehicle_apa(ApaSemantics::PAPER).unwrap());
        assert_eq!(g.minima(), vec!["RSU_send", "V1_pos"]);
        assert_eq!(g.maxima(), vec!["V1_show"]);
        // Example 2's requirements, in automaton-name form.
        let report = crate::apa_model::tests::elicit_prec(&g);
        let reqs: Vec<String> = report.iter().map(ToString::to_string).collect();
        assert_eq!(
            reqs,
            vec!["auth(RSU_send, V1_show, D_1)", "auth(V1_pos, V1_show, D_1)",]
        );
    }

    /// Helper: precedence-based elicitation returning sorted rendering.
    fn elicit_prec(g: &apa::ReachGraph) -> Vec<fsa_core::requirements::AuthRequirement> {
        let behaviour = g.to_nfa();
        let mut out = Vec::new();
        for maximum in g.maxima() {
            for minimum in g.minima() {
                if minimum != maximum
                    && automata::temporal::precedes(&behaviour, &minimum, &maximum)
                {
                    out.push(fsa_core::requirements::AuthRequirement::new(
                        fsa_core::action::Action::parse(&minimum),
                        fsa_core::action::Action::parse(&maximum),
                        stakeholder_of(&maximum),
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn editable_model_compiles_to_the_legacy_apa() {
        for pairs in 1..=2 {
            let legacy = n_pair_apa(pairs, ApaSemantics::PAPER).unwrap();
            let edited = n_pair_model(pairs).compile().unwrap();
            assert_eq!(
                edited.component_count(),
                legacy.component_count(),
                "{pairs} pair(s)"
            );
            assert_eq!(
                edited.automaton_names().collect::<Vec<_>>(),
                legacy.automaton_names().collect::<Vec<_>>()
            );
            let (gl, ge) = (reach(&legacy), reach(&edited));
            assert_eq!(ge.state_count(), gl.state_count());
            assert_eq!(ge.edge_count(), gl.edge_count());
            assert_eq!(ge.minima(), gl.minima());
            assert_eq!(ge.maxima(), gl.maxima());
            assert_eq!(elicit_prec(&ge), elicit_prec(&gl));
        }
    }

    #[test]
    fn stakeholders() {
        assert_eq!(stakeholder_of("V2_show").name(), "D_2");
        assert_eq!(stakeholder_of("V12_rec").name(), "D_12");
        assert_eq!(stakeholder_of("bogus").name(), "D_?");
    }
}
