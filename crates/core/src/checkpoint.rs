//! Checkpoint format of the supervised exploration engine.
//!
//! A checkpoint is a *decision log*, not a state dump: it records which
//! `(multiplicity-vector ordinal, flow-subset mask)` pairs have been
//! accepted as class representatives so far, plus the frontier (the
//! next vector ordinal and the canonical masks of the current vector
//! that are still unbuilt) and the deterministic counters. Resuming
//! re-derives everything else — the certificate class map is rebuilt by
//! re-instantiating the accepted pairs in their original discovery
//! order, which is cheap (no scan, no dedup search space) and exactly
//! deterministic.
//!
//! The on-disk envelope is [`fsa_exec::Snapshot`]: magic, schema
//! version, length, FNV-1a checksum, atomic rename. Every corruption
//! mode (truncation, bit flip, version skew, configuration skew)
//! surfaces as a clean [`FsaError::CorruptCheckpoint`].
//!
//! The configuration fingerprint covers the component models (names,
//! stakeholder templates, multiplicity bounds, template actions,
//! internal flows), the connection rules and the enumeration options —
//! but deliberately *not* the thread count or supervision policy:
//! resuming on a different number of threads is supported and
//! bit-identical.

use crate::component_model::ComponentModel;
use crate::error::FsaError;
use crate::explore::{BudgetPolicy, ConnectionRule, ExploreOptions};
use fsa_exec::{Snapshot, SnapshotError, SnapshotReader};
use std::path::Path;

/// Schema version of [`ExploreCheckpoint`] payloads.
pub const EXPLORE_CHECKPOINT_VERSION: u32 = 1;

/// Deterministic counters persisted with a checkpoint, so a resumed
/// run reports the same statistics as an uninterrupted one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// See [`crate::explore::ExploreStats::multiplicity_vectors`].
    pub multiplicity_vectors: usize,
    /// See [`crate::explore::ExploreStats::subsets_total`].
    pub subsets_total: usize,
    /// See [`crate::explore::ExploreStats::orbits_skipped`].
    pub orbits_skipped: usize,
    /// See [`crate::explore::ExploreStats::candidates`].
    pub candidates: usize,
    /// See [`crate::explore::ExploreStats::candidates_built`].
    pub candidates_built: usize,
    /// See [`crate::explore::ExploreStats::disconnected_skipped`].
    pub disconnected_skipped: usize,
    /// See [`crate::explore::ExploreStats::certificate_hits`].
    pub certificate_hits: usize,
    /// See [`crate::explore::ExploreStats::exact_iso_fallbacks`].
    pub exact_iso_fallbacks: usize,
    /// See [`crate::explore::ExploreStats::truncated`].
    pub truncated: bool,
    /// See [`crate::explore::ExploreStats::vectors_completed`].
    pub vectors_completed: usize,
    /// See [`crate::explore::ExploreStats::failures`].
    pub failures: usize,
    /// See [`crate::explore::ExploreStats::retries`].
    pub retries: u64,
}

/// One persisted snapshot of a supervised exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreCheckpoint {
    /// Fingerprint of models, rules and options (see
    /// [`config_fingerprint`]); a mismatch on resume is rejected.
    pub fingerprint: u64,
    /// Ordinal (in [`crate::explore`]'s canonical odometer order over
    /// non-empty multiplicity vectors) of the vector being processed;
    /// equal to the total vector count when the run had completed.
    pub next_ordinal: u64,
    /// Canonical masks of vector `next_ordinal` not yet instantiated.
    /// Empty ⇔ the checkpoint sits at a vector boundary.
    pub pending_masks: Vec<u64>,
    /// `(vector ordinal, mask)` of every accepted class representative,
    /// in discovery order.
    pub accepted: Vec<(u64, u64)>,
    /// Deterministic counters at checkpoint time.
    pub counters: CheckpointCounters,
}

fn corrupt(e: SnapshotError) -> FsaError {
    FsaError::CorruptCheckpoint {
        reason: e.to_string(),
    }
}

impl ExploreCheckpoint {
    /// Writes the checkpoint atomically (tmp file + rename).
    ///
    /// # Errors
    ///
    /// [`FsaError::CorruptCheckpoint`] wrapping the filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), FsaError> {
        let mut s = Snapshot::new(EXPLORE_CHECKPOINT_VERSION);
        s.put_u64(self.fingerprint);
        s.put_u64(self.next_ordinal);
        s.put_usize(self.pending_masks.len());
        for &mask in &self.pending_masks {
            s.put_u64(mask);
        }
        s.put_usize(self.accepted.len());
        for &(ordinal, mask) in &self.accepted {
            s.put_u64(ordinal);
            s.put_u64(mask);
        }
        let c = &self.counters;
        s.put_usize(c.multiplicity_vectors);
        s.put_usize(c.subsets_total);
        s.put_usize(c.orbits_skipped);
        s.put_usize(c.candidates);
        s.put_usize(c.candidates_built);
        s.put_usize(c.disconnected_skipped);
        s.put_usize(c.certificate_hits);
        s.put_usize(c.exact_iso_fallbacks);
        s.put_bool(c.truncated);
        s.put_usize(c.vectors_completed);
        s.put_usize(c.failures);
        s.put_u64(c.retries);
        s.write_atomic(path).map_err(corrupt)
    }

    /// Reads and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`FsaError::CorruptCheckpoint`] on any of: missing file,
    /// truncation, bit flip (checksum mismatch), version skew, or a
    /// structurally impossible payload.
    pub fn read(path: &Path) -> Result<Self, FsaError> {
        let mut r = SnapshotReader::read(path, EXPLORE_CHECKPOINT_VERSION).map_err(corrupt)?;
        let inner = |r: &mut SnapshotReader| -> Result<ExploreCheckpoint, SnapshotError> {
            let fingerprint = r.u64()?;
            let next_ordinal = r.u64()?;
            let pending_len = r.usize()?;
            let mut pending_masks = Vec::new();
            for _ in 0..pending_len {
                pending_masks.push(r.u64()?);
            }
            let accepted_len = r.usize()?;
            let mut accepted = Vec::new();
            for _ in 0..accepted_len {
                let ordinal = r.u64()?;
                let mask = r.u64()?;
                accepted.push((ordinal, mask));
            }
            let counters = CheckpointCounters {
                multiplicity_vectors: r.usize()?,
                subsets_total: r.usize()?,
                orbits_skipped: r.usize()?,
                candidates: r.usize()?,
                candidates_built: r.usize()?,
                disconnected_skipped: r.usize()?,
                certificate_hits: r.usize()?,
                exact_iso_fallbacks: r.usize()?,
                truncated: r.bool()?,
                vectors_completed: r.usize()?,
                failures: r.usize()?,
                retries: r.u64()?,
            };
            Ok(ExploreCheckpoint {
                fingerprint,
                next_ordinal,
                pending_masks,
                accepted,
                counters,
            })
        };
        let checkpoint = inner(&mut r).map_err(corrupt)?;
        r.finish().map_err(corrupt)?;
        Ok(checkpoint)
    }
}

/// Incremental FNV-1a with length-prefixed framing (so `("ab","c")` and
/// `("a","bc")` hash differently).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Domain-separation tag hashed into every configuration fingerprint.
/// Bump when the fingerprint's field coverage changes so checkpoints
/// written under the old coverage can never alias the new one.
const FINGERPRINT_DOMAIN: &str = "fsa-explore-config/v3";

/// Fingerprint of the enumeration configuration: component models
/// (name, stakeholder template, multiplicity bound, template actions,
/// internal flows), connection rules, and [`ExploreOptions`] — minus
/// the thread count, which a resumed run may legitimately change.
///
/// Coverage contract (audited; every semantics-affecting knob of a
/// resumable enumeration must appear here so `--resume` under changed
/// flags fails closed as a fingerprint mismatch):
///
/// * **max-vehicles** — the multiplicity bound of the vehicle model is
///   the `usize` paired with each [`ComponentModel`], hashed below;
/// * **budget** (`--budget`) — [`ExploreOptions::max_candidates`];
/// * **truncation policy** (`--truncate`) — [`ExploreOptions::on_budget`];
/// * **connectivity filter** (`--all`) —
///   [`ExploreOptions::require_connected`];
/// * **shard range** — [`ExploreOptions::shard`]; a checkpoint written
///   while exploring one shard of the multiplicity space must fail
///   closed when resumed against another shard (or against the whole
///   universe), because its frontier and accepted log only cover that
///   range.
///
/// Deliberately excluded: `threads` (a laptop run may finish on a
/// bigger box, bit-identically) and the observability handle (exports
/// never change the enumeration).
#[must_use]
pub fn config_fingerprint(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> u64 {
    let mut h = Fnv::new();
    h.str(FINGERPRINT_DOMAIN);
    h.u64(models.len() as u64);
    for (model, max) in models {
        h.str(model.name());
        h.str(model.stakeholder_template());
        h.u64(*max as u64);
        h.u64(model.actions().len() as u64);
        for action in model.actions() {
            h.str(&action.to_string());
        }
        h.u64(model.flows().len() as u64);
        for &(from, to, policy) in model.flows() {
            h.u64(from as u64);
            h.u64(to as u64);
            h.u64(u64::from(policy));
        }
    }
    h.u64(rules.len() as u64);
    for rule in rules {
        h.str(&rule.from_model);
        h.u64(rule.from_action as u64);
        h.str(&rule.to_model);
        h.u64(rule.to_action as u64);
    }
    h.u64(u64::from(options.require_connected));
    h.u64(options.max_candidates as u64);
    h.u64(match options.on_budget {
        BudgetPolicy::Error => 0,
        BudgetPolicy::Truncate => 1,
    });
    match options.shard {
        None => h.u64(0),
        Some(shard) => {
            h.u64(1);
            h.u64(shard.start);
            h.u64(shard.end);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExploreCheckpoint {
        ExploreCheckpoint {
            fingerprint: 0xFEED,
            next_ordinal: 3,
            pending_masks: vec![5, 9],
            accepted: vec![(0, 0), (1, 3), (3, 1)],
            counters: CheckpointCounters {
                multiplicity_vectors: 4,
                subsets_total: 20,
                orbits_skipped: 6,
                candidates: 14,
                candidates_built: 12,
                disconnected_skipped: 2,
                certificate_hits: 7,
                exact_iso_fallbacks: 1,
                truncated: false,
                vectors_completed: 3,
                failures: 0,
                retries: 2,
            },
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fsa_ckpt_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = temp_path("roundtrip");
        let cp = sample();
        cp.write(&path).unwrap();
        assert_eq!(ExploreCheckpoint::read(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_truncated_and_flipped_files_are_corrupt_checkpoints() {
        let path = temp_path("corrupt");
        // Missing file.
        std::fs::remove_file(&path).ok();
        let err = ExploreCheckpoint::read(&path).unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }), "{err}");
        // Truncated file.
        sample().write(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = ExploreCheckpoint::read(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Bit-flipped file.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = ExploreCheckpoint::read(&path).unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_skew_is_reported() {
        let path = temp_path("skew");
        let mut s = Snapshot::new(EXPLORE_CHECKPOINT_VERSION + 1);
        s.put_u64(1);
        s.write_atomic(&path).unwrap();
        let err = ExploreCheckpoint::read(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let mut model = ComponentModel::new("S", "Op");
        model.action("emit(SNS_i,val)");
        let models = vec![(model.clone(), 2usize)];
        let rules: Vec<ConnectionRule> = Vec::new();
        let options = ExploreOptions::default();
        let base = config_fingerprint(&models, &rules, &options);
        // Same configuration ⇒ same fingerprint.
        assert_eq!(base, config_fingerprint(&models, &rules, &options));
        // Multiplicity bound, action set, and options all separate.
        assert_ne!(
            base,
            config_fingerprint(&[(model.clone(), 3)], &rules, &options)
        );
        let mut bigger = model.clone();
        bigger.action("emit2(SNS_i,val)");
        assert_ne!(base, config_fingerprint(&[(bigger, 2)], &rules, &options));
        let other_options = ExploreOptions {
            require_connected: !options.require_connected,
            ..options.clone()
        };
        assert_ne!(base, config_fingerprint(&models, &rules, &other_options));
        // Thread count does NOT change the fingerprint (cross-thread
        // resume is supported).
        let threaded = ExploreOptions {
            threads: 8,
            ..options
        };
        assert_eq!(base, config_fingerprint(&models, &rules, &threaded));
    }

    #[test]
    fn fingerprint_separates_shard_ranges() {
        use crate::explore::ShardRange;
        let mut model = ComponentModel::new("S", "Op");
        model.action("emit(SNS_i,val)");
        let models = vec![(model, 2usize)];
        let rules: Vec<ConnectionRule> = Vec::new();
        let unsharded = config_fingerprint(&models, &rules, &ExploreOptions::default());
        let shard = |start, end| ExploreOptions {
            shard: Some(ShardRange::new(start, end)),
            ..Default::default()
        };
        let first = config_fingerprint(&models, &rules, &shard(0, 1));
        let second = config_fingerprint(&models, &rules, &shard(1, 2));
        // A shard checkpoint can be resumed neither against the whole
        // universe nor against a different shard.
        assert_ne!(unsharded, first);
        assert_ne!(first, second);
        assert_eq!(first, config_fingerprint(&models, &rules, &shard(0, 1)));
    }
}
