//! The tool-assisted elicitation pipeline (§5 of the paper).
//!
//! "The tool-assisted approach will proceed in reverse order. First we
//! will identify the maxima and minima of the partial order – without
//! deriving the actual partial order – and then we will identify
//! combinations of maxima and minima that are related by functional
//! dependence."
//!
//! Inputs are an APA reachability graph ([`apa::ReachGraph`]) and a
//! stakeholder assignment for the output actions. Minima and maxima are
//! read off the graph (§5.4); each (maximum, minimum) pair is then
//! tested for functional dependence, either
//!
//! * by **abstraction** (§5.5): apply the alphabetic homomorphism that
//!   erases every other action, compute the minimal automaton of the
//!   image, and check whether the maximum can occur without the minimum
//!   (Figs. 10/11), or
//! * by a direct **precedence check** on the behaviour — an equivalent
//!   decision procedure offered for cross-validation and benchmarking.

use crate::action::{Action, Agent};
use crate::requirements::{AuthRequirement, RequirementSet};
use apa::ReachGraph;
use automata::{ops, temporal, Dfa, Homomorphism, Nfa};

/// The decision procedure for functional dependence of a (max, min)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceMethod {
    /// Homomorphic abstraction + minimal automaton (the paper's §5.5).
    Abstraction,
    /// Direct precedence check on the full behaviour.
    Precedence,
}

/// The verdict for one (minimum, maximum) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairVerdict {
    /// The minimum (incoming boundary action).
    pub minimum: String,
    /// The maximum (outgoing boundary action).
    pub maximum: String,
    /// Whether the maximum functionally depends on the minimum.
    pub dependent: bool,
    /// States of the minimal automaton of the homomorphic image
    /// (present when [`DependenceMethod::Abstraction`] was used) —
    /// 3 for the chain of Fig. 10, 4 for the diamond of Fig. 11.
    pub minimal_automaton_states: Option<usize>,
}

/// The result of one tool-assisted elicitation run.
#[derive(Debug, Clone)]
pub struct AssistedReport {
    /// Number of states of the reachability graph.
    pub state_count: usize,
    /// Number of transitions of the reachability graph.
    pub edge_count: usize,
    /// The minima (actions leaving the initial state).
    pub minima: Vec<String>,
    /// The maxima (actions entering dead states).
    pub maxima: Vec<String>,
    /// The dependence verdict for every (minimum, maximum) pair.
    pub verdicts: Vec<PairVerdict>,
    /// The elicited requirements.
    pub requirements: RequirementSet,
}

/// Decides dependence of (`minimum`, `maximum`) by homomorphic
/// abstraction, returning the verdict together with the minimal
/// automaton of the image (the paper's Figs. 10/11).
///
/// The pair is *dependent* iff in the abstract behaviour the maximum
/// cannot occur before the minimum has occurred.
pub fn dependence_by_abstraction(behaviour: &Nfa, minimum: &str, maximum: &str) -> (bool, Dfa) {
    let h = Homomorphism::erase_all_except([minimum, maximum]);
    let minimal = ops::minimize(&ops::determinize(&h.apply(behaviour)));
    let dependent = temporal::precedes(&minimal.to_nfa(), minimum, maximum);
    (dependent, minimal)
}

/// Decides dependence of (`minimum`, `maximum`) by a precedence check on
/// the full behaviour (no abstraction).
pub fn dependence_by_precedence(behaviour: &Nfa, minimum: &str, maximum: &str) -> bool {
    temporal::precedes(behaviour, minimum, maximum)
}

/// Runs the tool-assisted pipeline on a reachability graph.
///
/// `stakeholder` assigns the responsible agent to each *maximum* action
/// name (e.g. `V2_show ↦ D_2`).
pub fn elicit_from_graph(
    graph: &ReachGraph,
    method: DependenceMethod,
    stakeholder: impl Fn(&str) -> Agent,
) -> AssistedReport {
    let behaviour = graph.to_nfa();
    let minima = graph.minima();
    let maxima = graph.maxima();
    let mut verdicts = Vec::with_capacity(minima.len() * maxima.len());
    let mut requirements = RequirementSet::new();
    for maximum in &maxima {
        for minimum in &minima {
            if minimum == maximum {
                continue;
            }
            let (dependent, automaton_states) = match method {
                DependenceMethod::Abstraction => {
                    let (dep, minimal) = dependence_by_abstraction(&behaviour, minimum, maximum);
                    (dep, Some(minimal.state_count()))
                }
                DependenceMethod::Precedence => {
                    (dependence_by_precedence(&behaviour, minimum, maximum), None)
                }
            };
            if dependent {
                requirements.insert(AuthRequirement::new(
                    Action::parse(minimum),
                    Action::parse(maximum),
                    stakeholder(maximum),
                ));
            }
            verdicts.push(PairVerdict {
                minimum: minimum.clone(),
                maximum: maximum.clone(),
                dependent,
                minimal_automaton_states: automaton_states,
            });
        }
    }
    AssistedReport {
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        minima,
        maxima,
        verdicts,
        requirements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa::{rule, ApaBuilder, ReachOptions, Value};

    /// A two-stage pipeline APA: `in_a`/`in_b` feed `combine`, which
    /// feeds `out`; `noise` is independent.
    fn pipeline_graph() -> ReachGraph {
        let mut b = ApaBuilder::new();
        let src_a = b.component("src_a", [Value::atom("x")]);
        let src_b = b.component("src_b", [Value::atom("y")]);
        let mid = b.component("mid", []);
        let dst = b.component("dst", []);
        let n_src = b.component("n_src", [Value::atom("n")]);
        let n_dst = b.component("n_dst", []);
        b.automaton("in_a", [src_a, mid], rule::move_any(0, 1));
        b.automaton("in_b", [src_b, mid], rule::move_any(0, 1));
        b.automaton(
            "combine",
            [mid, dst],
            Box::new(rule::FnRule::new(|local: &Vec<_>| {
                let (x, y) = (Value::atom("x"), Value::atom("y"));
                if local[0].contains(&x) && local[0].contains(&y) {
                    let mut next = local.clone();
                    next[0].remove(&x);
                    next[0].remove(&y);
                    next[1].insert(Value::atom("z"));
                    vec![("xy".to_owned(), next)]
                } else {
                    vec![]
                }
            })),
        );
        b.automaton("out", [dst, n_dst], rule::move_matching(0, 1, |v| v == &Value::atom("z")));
        b.automaton("noise", [n_src, n_dst], rule::move_any(0, 1));
        b.build()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap()
    }

    #[test]
    fn minima_and_maxima_read_off_graph() {
        let g = pipeline_graph();
        assert_eq!(g.minima(), vec!["in_a", "in_b", "noise"]);
        assert_eq!(g.maxima(), vec!["noise", "out"]);
    }

    #[test]
    fn abstraction_decides_dependence() {
        let g = pipeline_graph();
        let behaviour = g.to_nfa();
        let (dep, minimal) = dependence_by_abstraction(&behaviour, "in_a", "out");
        assert!(dep);
        assert_eq!(minimal.state_count(), 3, "chain shape (Fig. 10)");
        let (dep, minimal) = dependence_by_abstraction(&behaviour, "noise", "out");
        assert!(!dep);
        assert_eq!(minimal.state_count(), 4, "diamond shape (Fig. 11)");
    }

    #[test]
    fn both_methods_agree() {
        let g = pipeline_graph();
        let behaviour = g.to_nfa();
        for minimum in g.minima() {
            for maximum in g.maxima() {
                if minimum == maximum {
                    continue;
                }
                let (by_abs, _) = dependence_by_abstraction(&behaviour, &minimum, &maximum);
                let by_prec = dependence_by_precedence(&behaviour, &minimum, &maximum);
                assert_eq!(by_abs, by_prec, "({minimum}, {maximum})");
            }
        }
    }

    #[test]
    fn elicit_from_graph_produces_requirements() {
        let g = pipeline_graph();
        let report = elicit_from_graph(&g, DependenceMethod::Abstraction, |name| {
            Agent::new(&format!("stakeholder_of_{name}"))
        });
        // out depends on in_a and in_b; noise on nothing; out not on noise.
        let reqs: Vec<String> = report.requirements.iter().map(ToString::to_string).collect();
        assert_eq!(
            reqs,
            vec![
                "auth(in_a, out, stakeholder_of_out)",
                "auth(in_b, out, stakeholder_of_out)",
            ]
        );
        // verdicts cover all pairs except (noise, noise).
        assert_eq!(report.verdicts.len(), 3 * 2 - 1);
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.minimal_automaton_states.is_some()));
    }

    #[test]
    fn precedence_method_omits_automaton_sizes() {
        let g = pipeline_graph();
        let report = elicit_from_graph(&g, DependenceMethod::Precedence, |_| Agent::new("P"));
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.minimal_automaton_states.is_none()));
        assert_eq!(report.requirements.len(), 2);
    }
}
