//! The tool-assisted elicitation pipeline (§5 of the paper).
//!
//! "The tool-assisted approach will proceed in reverse order. First we
//! will identify the maxima and minima of the partial order – without
//! deriving the actual partial order – and then we will identify
//! combinations of maxima and minima that are related by functional
//! dependence."
//!
//! Inputs are an APA reachability graph ([`apa::ReachGraph`]) and a
//! stakeholder assignment for the output actions. Minima and maxima are
//! read off the graph (§5.4); each (maximum, minimum) pair is then
//! tested for functional dependence, either
//!
//! * by **abstraction** (§5.5): apply the alphabetic homomorphism that
//!   erases every other action, compute the minimal automaton of the
//!   image, and check whether the maximum can occur without the minimum
//!   (Figs. 10/11), or
//! * by a direct **precedence check** on the behaviour — an equivalent
//!   decision procedure offered for cross-validation and benchmarking.

use crate::action::{Action, Agent};
use crate::requirements::{AuthRequirement, RequirementSet};
use apa::ReachGraph;
use automata::temporal::PrecedenceIndex;
use automata::{ops, temporal, Dfa, Homomorphism, Nfa, Symbol};
use fsa_obs::Obs;
use std::time::Duration;

/// The decision procedure for functional dependence of a (max, min)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceMethod {
    /// Homomorphic abstraction + minimal automaton (the paper's §5.5).
    Abstraction,
    /// Direct precedence check on the full behaviour.
    Precedence,
}

/// The verdict for one (minimum, maximum) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairVerdict {
    /// The minimum (incoming boundary action).
    pub minimum: String,
    /// The maximum (outgoing boundary action).
    pub maximum: String,
    /// Whether the maximum functionally depends on the minimum.
    pub dependent: bool,
    /// States of the minimal automaton of the homomorphic image
    /// (present when [`DependenceMethod::Abstraction`] was used) —
    /// 3 for the chain of Fig. 10, 4 for the diamond of Fig. 11.
    pub minimal_automaton_states: Option<usize>,
}

/// The result of one tool-assisted elicitation run.
#[derive(Debug, Clone)]
pub struct AssistedReport {
    /// Number of states of the reachability graph.
    pub state_count: usize,
    /// Number of transitions of the reachability graph.
    pub edge_count: usize,
    /// The minima (actions leaving the initial state).
    pub minima: Vec<String>,
    /// The maxima (actions entering dead states).
    pub maxima: Vec<String>,
    /// The dependence verdict for every (minimum, maximum) pair.
    pub verdicts: Vec<PairVerdict>,
    /// The elicited requirements.
    pub requirements: RequirementSet,
    /// Per-stage timings and cache counters of this run.
    pub stats: PipelineStats,
}

/// Tuning knobs of the dependence-checking engine
/// (see [`elicit_with_options`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElicitOptions {
    /// The decision procedure per (maximum, minimum) pair.
    pub method: DependenceMethod,
    /// Worker threads for the pair grid; `0` or `1` evaluates
    /// sequentially. The verdict vector is identical for every thread
    /// count (deterministic index-ordered merge).
    pub threads: usize,
    /// Skip pairs whose minimum provably never occurs on any path to a
    /// firing of the maximum (verdict `dependent = false`,
    /// `minimal_automaton_states = None`, no automaton is built).
    pub prune: bool,
}

impl Default for ElicitOptions {
    fn default() -> Self {
        ElicitOptions {
            method: DependenceMethod::Abstraction,
            threads: 1,
            prune: false,
        }
    }
}

impl ElicitOptions {
    /// The one options constructor every serving surface uses — the
    /// resident service's `elicit` frames and the one-shot CLI
    /// cross-check build *these* options, so served and one-shot runs
    /// are the same engine configuration by construction (they used to
    /// diverge on `prune`, which preserves verdicts and rendered output
    /// but skews the `pairs_pruned`/`prune_pass` stats between paths).
    ///
    /// Precedence method, co-reachability pruning on.
    #[must_use]
    pub fn service(threads: usize) -> Self {
        ElicitOptions {
            method: DependenceMethod::Precedence,
            threads,
            prune: true,
        }
    }
}

/// Per-stage timings and work counters of one elicitation run
/// (§5.5 pipeline: behaviour → minima/maxima → pair grid).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Time to build the behaviour NFA from the reachability graph.
    pub behaviour_nfa: Duration,
    /// Time to read the minima and maxima off the graph.
    pub min_max: Duration,
    /// Time for the occurrence/co-reachability pruning pre-pass.
    pub prune_pass: Duration,
    /// Time to evaluate the (maxima × minima) grid.
    pub pair_eval: Duration,
    /// Pairs in the grid (minimum ≠ maximum).
    pub pairs_total: usize,
    /// Pairs decided by the pruning pre-pass alone.
    pub pairs_pruned: usize,
    /// Pair evaluations that reused a cached per-maximum backward
    /// reachability instead of recomputing it.
    pub coreach_cache_hits: usize,
    /// Worker threads used for the pair grid (1 = sequential).
    pub threads: usize,
}

impl PipelineStats {
    /// Reconstructs the stats as a *thin view* over an observability
    /// [`fsa_obs::Snapshot`] of a **single** elicitation run: stage
    /// durations come from the `elicit.*` spans, work counters from the
    /// `elicit.*` counters. For a snapshot produced by
    /// [`elicit_observed`], this equals the [`AssistedReport::stats`]
    /// struct filled live (both read the same span measurements).
    ///
    /// # Errors
    ///
    /// [`crate::FsaError::CounterOutOfRange`] when a recorded `u64`
    /// counter does not fit this target's `usize` (fail closed instead
    /// of truncating on 32-bit targets).
    pub fn from_snapshot(snapshot: &fsa_obs::Snapshot) -> Result<PipelineStats, crate::FsaError> {
        let count = |name: &str| -> Result<usize, crate::FsaError> {
            let value = snapshot.counter(name).unwrap_or(0);
            usize::try_from(value).map_err(|_| crate::FsaError::CounterOutOfRange {
                name: name.to_owned(),
                value,
            })
        };
        Ok(PipelineStats {
            behaviour_nfa: snapshot.span_total("elicit.behaviour_nfa"),
            min_max: snapshot.span_total("elicit.min_max"),
            prune_pass: snapshot.span_total("elicit.prune_pass"),
            pair_eval: snapshot.span_total("elicit.pair_eval"),
            pairs_total: count("elicit.pairs_total")?,
            pairs_pruned: count("elicit.pairs_pruned")?,
            coreach_cache_hits: count("elicit.coreach_cache_hits")?,
            threads: count("elicit.threads")?,
        })
    }
}

/// Decides dependence of (`minimum`, `maximum`) by homomorphic
/// abstraction, returning the verdict together with the minimal
/// automaton of the image (the paper's Figs. 10/11).
///
/// The pair is *dependent* iff in the abstract behaviour the maximum
/// cannot occur before the minimum has occurred.
pub fn dependence_by_abstraction(behaviour: &Nfa, minimum: &str, maximum: &str) -> (bool, Dfa) {
    let h = Homomorphism::erase_all_except([minimum, maximum]);
    let minimal = ops::minimize(&ops::determinize(&h.apply(behaviour)));
    let dependent = temporal::precedes(&minimal.to_nfa(), minimum, maximum);
    (dependent, minimal)
}

/// Decides dependence of (`minimum`, `maximum`) by a precedence check on
/// the full behaviour (no abstraction).
pub fn dependence_by_precedence(behaviour: &Nfa, minimum: &str, maximum: &str) -> bool {
    temporal::precedes(behaviour, minimum, maximum)
}

/// Builds the requirement set from a verdict vector: one authenticity
/// requirement per *dependent* pair, with the responsible agent
/// assigned by `stakeholder` from the maximum's action name.
///
/// Shared between [`elicit_observed`] and the incremental engine
/// ([`crate::incremental::IncrementalElicitor`]), so both derive
/// requirements from verdicts in exactly the same way.
pub fn requirements_from_verdicts(
    verdicts: &[PairVerdict],
    stakeholder: impl Fn(&str) -> Agent,
) -> RequirementSet {
    let mut requirements = RequirementSet::new();
    for v in verdicts {
        if v.dependent {
            requirements.insert(AuthRequirement::new(
                Action::parse(&v.minimum),
                Action::parse(&v.maximum),
                stakeholder(&v.maximum),
            ));
        }
    }
    requirements
}

/// Runs the tool-assisted pipeline on a reachability graph with the
/// default engine options (sequential, no pruning) — byte-identical to
/// the original per-pair loop.
///
/// `stakeholder` assigns the responsible agent to each *maximum* action
/// name (e.g. `V2_show ↦ D_2`).
pub fn elicit_from_graph(
    graph: &ReachGraph,
    method: DependenceMethod,
    stakeholder: impl Fn(&str) -> Agent,
) -> AssistedReport {
    elicit_with_options(
        graph,
        &ElicitOptions {
            method,
            ..ElicitOptions::default()
        },
        stakeholder,
    )
}

/// The per-maximum backward-reachability pruning index.
///
/// Shared work across the pair grid: the reversed graph (as one flat
/// CSR) and the per-symbol edge occurrence sets are built once; for
/// each *maximum* `m` the set of states that can still reach an
/// `m`-firing state is computed once — by the word-parallel
/// [`fsa_graph::bitset::bfs_reachable`] frontier kernel over the
/// reversed CSR — and the resulting [`BitSet`] is reused for every
/// minimum paired with `m`.
struct PruneIndex {
    /// State count (bitset capacity of every co-reachability sweep).
    n: usize,
    /// Reversed CSR: the predecessors of state `s` are
    /// `rev_pred[rev_off[s] as usize..rev_off[s + 1] as usize]`
    /// (deduplicated).
    rev_off: Vec<u32>,
    rev_pred: Vec<u32>,
    /// Per-symbol CSR: states with an outgoing edge labelled `y` are
    /// `fire_src[fire_off[y]..fire_off[y + 1]]` (as `usize` ranges).
    fire_off: Vec<u32>,
    fire_src: Vec<u32>,
    /// Per-symbol CSR of edge *target* states, same shape.
    tgt_off: Vec<u32>,
    tgt_state: Vec<u32>,
}

impl PruneIndex {
    fn new(graph: &ReachGraph) -> Self {
        let n = graph.state_count();
        let n_syms = graph.symbols().len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut fire_sources: Vec<Vec<u32>> = vec![Vec::new(); n_syms];
        let mut edge_targets: Vec<Vec<u32>> = vec![Vec::new(); n_syms];
        for (f, l, t) in graph.edges() {
            rev[t].push(f as u32);
            fire_sources[l.automaton.index()].push(f as u32);
            edge_targets[l.automaton.index()].push(t as u32);
        }
        for preds in &mut rev {
            preds.sort_unstable();
            preds.dedup();
        }
        let flatten = |lists: Vec<Vec<u32>>| -> (Vec<u32>, Vec<u32>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            off.push(0u32);
            let mut flat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
            for list in lists {
                flat.extend_from_slice(&list);
                off.push(u32::try_from(flat.len()).expect("CSR offset exceeds u32"));
            }
            (off, flat)
        };
        let (rev_off, rev_pred) = flatten(rev);
        let (fire_off, fire_src) = flatten(fire_sources);
        let (tgt_off, tgt_state) = flatten(edge_targets);
        PruneIndex {
            n,
            rev_off,
            rev_pred,
            fire_off,
            fire_src,
            tgt_off,
            tgt_state,
        }
    }

    /// The states that can reach (in ≥ 0 steps) a state with an
    /// outgoing `max`-labelled edge — one bitset frontier sweep over
    /// the reversed CSR.
    fn coreach(&self, max: Symbol) -> fsa_graph::BitSet {
        let mut seeds = fsa_graph::BitSet::new(self.n);
        let y = max.index();
        for &s in &self.fire_src[self.fire_off[y] as usize..self.fire_off[y + 1] as usize] {
            seeds.insert(s as usize);
        }
        fsa_graph::bitset::bfs_reachable(&self.rev_off, &self.rev_pred, &seeds)
    }

    /// `true` iff `min` can occur strictly before some later (or
    /// immediate) firing of `max` on a path of the graph. When `false`,
    /// the pair is independent without running a decision procedure:
    /// every firing of the maximum happens on a run with no earlier
    /// minimum, so the precedence property is violated.
    fn min_before_max_possible(&self, min: Symbol, max_coreach: &fsa_graph::BitSet) -> bool {
        let y = min.index();
        self.tgt_state[self.tgt_off[y] as usize..self.tgt_off[y + 1] as usize]
            .iter()
            .any(|&v| max_coreach.contains(v as usize))
    }
}

/// Runs the tool-assisted pipeline with explicit engine options:
/// worker threads over the (maxima × minima) grid and the
/// occurrence-set pruning pre-pass.
///
/// For any fixed options, the verdict vector is deterministic; for any
/// *thread count*, it is bit-identical to the sequential run (pairs are
/// chunked, evaluated independently, and merged in index order).
/// Pruned pairs report `dependent = false` with
/// `minimal_automaton_states = None`.
pub fn elicit_with_options(
    graph: &ReachGraph,
    options: &ElicitOptions,
    stakeholder: impl Fn(&str) -> Agent,
) -> AssistedReport {
    elicit_observed(graph, options, &Obs::disabled(), stakeholder)
}

/// [`elicit_with_options`] with an observability handle: every pipeline
/// stage runs under an `elicit.*` span and the work counters are
/// mirrored into `elicit.*` counters. With [`Obs::disabled`] (what
/// [`elicit_with_options`] passes) nothing is recorded and the report —
/// including [`PipelineStats`] — is identical to the unobserved run:
/// the stats are filled from the very same span measurements.
pub fn elicit_observed(
    graph: &ReachGraph,
    options: &ElicitOptions,
    obs: &Obs,
    stakeholder: impl Fn(&str) -> Agent,
) -> AssistedReport {
    let run = obs.span("elicit");
    let mut stats = PipelineStats::default();

    let span = obs.span("elicit.behaviour_nfa");
    let behaviour = graph.to_nfa();
    stats.behaviour_nfa = span.finish();

    let span = obs.span("elicit.min_max");
    let minima_syms = graph.minima_syms();
    let maxima_syms = graph.maxima_syms();
    let minima: Vec<String> = minima_syms
        .iter()
        .map(|&s| graph.name(s).to_owned())
        .collect();
    let maxima: Vec<String> = maxima_syms
        .iter()
        .map(|&s| graph.name(s).to_owned())
        .collect();
    stats.min_max = span.finish();

    // The deterministic pair grid: maxima outer, minima inner — the
    // same order as the original nested loop.
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(maxima_syms.len() * minima_syms.len());
    for (ma, &max_sym) in maxima_syms.iter().enumerate() {
        for (mi, &min_sym) in minima_syms.iter().enumerate() {
            if min_sym != max_sym {
                pairs.push((ma, mi));
            }
        }
    }
    stats.pairs_total = pairs.len();

    // Pruning pre-pass: one backward reachability per *maximum*,
    // reused across all its minima.
    let span = obs.span("elicit.prune_pass");
    let pruned: Vec<bool> = if options.prune {
        let index = PruneIndex::new(graph);
        let mut coreach_cache: Vec<Option<fsa_graph::BitSet>> = vec![None; maxima_syms.len()];
        pairs
            .iter()
            .map(|&(ma, mi)| {
                let slot = &mut coreach_cache[ma];
                if slot.is_some() {
                    stats.coreach_cache_hits += 1;
                }
                let coreach = slot.get_or_insert_with(|| index.coreach(maxima_syms[ma]));
                !index.min_before_max_possible(minima_syms[mi], coreach)
            })
            .collect()
    } else {
        vec![false; pairs.len()]
    };
    stats.pairs_pruned = pruned.iter().filter(|&&p| p).count();
    stats.prune_pass = span.finish();

    // Shared-work caches for the decision procedures: the behaviour NFA
    // (both methods) and its adjacency index (precedence method).
    let precedence_index = match options.method {
        DependenceMethod::Precedence => Some(PrecedenceIndex::new(&behaviour)),
        DependenceMethod::Abstraction => None,
    };

    let eval_pair = |(&(ma, mi), &is_pruned): (&(usize, usize), &bool)| -> PairVerdict {
        let minimum = &minima[mi];
        let maximum = &maxima[ma];
        let (dependent, automaton_states) = if is_pruned {
            (false, None)
        } else {
            match options.method {
                DependenceMethod::Abstraction => {
                    let (dep, minimal) = dependence_by_abstraction(&behaviour, minimum, maximum);
                    (dep, Some(minimal.state_count()))
                }
                DependenceMethod::Precedence => {
                    let index = precedence_index.as_ref().expect("built for this method");
                    (index.precedes_names(minimum, maximum), None)
                }
            }
        };
        PairVerdict {
            minimum: minimum.clone(),
            maximum: maximum.clone(),
            dependent,
            minimal_automaton_states: automaton_states,
        }
    };

    let span = obs.span("elicit.pair_eval");
    let threads = options.threads.max(1);
    stats.threads = threads;
    let verdicts: Vec<PairVerdict> = if threads == 1 || pairs.len() < 2 {
        pairs.iter().zip(pruned.iter()).map(eval_pair).collect()
    } else {
        // Chunked fork-join over the grid; the merge walks chunks in
        // order, so the verdict vector is identical to the sequential
        // one for every thread count.
        let chunk = pairs.len().div_ceil(threads);
        let pair_chunks: Vec<_> = pairs.chunks(chunk).collect();
        let pruned_chunks: Vec<_> = pruned.chunks(chunk).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = pair_chunks
                .iter()
                .zip(pruned_chunks.iter())
                .map(|(ps, fs)| {
                    scope.spawn(|| ps.iter().zip(fs.iter()).map(eval_pair).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pair worker panicked"))
                .collect()
        })
    };
    stats.pair_eval = span.finish();

    if obs.is_enabled() {
        obs.counter_add("elicit.pairs_total", stats.pairs_total as u64);
        obs.counter_add("elicit.pairs_pruned", stats.pairs_pruned as u64);
        obs.counter_add("elicit.coreach_cache_hits", stats.coreach_cache_hits as u64);
        obs.counter_add("elicit.threads", stats.threads as u64);
    }
    drop(run);

    let requirements = requirements_from_verdicts(&verdicts, stakeholder);

    AssistedReport {
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        minima,
        maxima,
        verdicts,
        requirements,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa::{rule, ApaBuilder, ReachOptions, Value};

    /// A two-stage pipeline APA: `in_a`/`in_b` feed `combine`, which
    /// feeds `out`; `noise` is independent.
    fn pipeline_graph() -> ReachGraph {
        let mut b = ApaBuilder::new();
        let src_a = b.component("src_a", [Value::atom("x")]);
        let src_b = b.component("src_b", [Value::atom("y")]);
        let mid = b.component("mid", []);
        let dst = b.component("dst", []);
        let n_src = b.component("n_src", [Value::atom("n")]);
        let n_dst = b.component("n_dst", []);
        b.automaton("in_a", [src_a, mid], rule::move_any(0, 1));
        b.automaton("in_b", [src_b, mid], rule::move_any(0, 1));
        b.automaton(
            "combine",
            [mid, dst],
            Box::new(rule::FnRule::new(|local: &Vec<_>| {
                let (x, y) = (Value::atom("x"), Value::atom("y"));
                if local[0].contains(&x) && local[0].contains(&y) {
                    let mut next = local.clone();
                    next[0].remove(&x);
                    next[0].remove(&y);
                    next[1].insert(Value::atom("z"));
                    vec![("xy".to_owned(), next)]
                } else {
                    vec![]
                }
            })),
        );
        b.automaton(
            "out",
            [dst, n_dst],
            rule::move_matching(0, 1, |v| v == &Value::atom("z")),
        );
        b.automaton("noise", [n_src, n_dst], rule::move_any(0, 1));
        b.build()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap()
    }

    #[test]
    fn minima_and_maxima_read_off_graph() {
        let g = pipeline_graph();
        assert_eq!(g.minima(), vec!["in_a", "in_b", "noise"]);
        assert_eq!(g.maxima(), vec!["noise", "out"]);
    }

    #[test]
    fn abstraction_decides_dependence() {
        let g = pipeline_graph();
        let behaviour = g.to_nfa();
        let (dep, minimal) = dependence_by_abstraction(&behaviour, "in_a", "out");
        assert!(dep);
        assert_eq!(minimal.state_count(), 3, "chain shape (Fig. 10)");
        let (dep, minimal) = dependence_by_abstraction(&behaviour, "noise", "out");
        assert!(!dep);
        assert_eq!(minimal.state_count(), 4, "diamond shape (Fig. 11)");
    }

    #[test]
    fn both_methods_agree() {
        let g = pipeline_graph();
        let behaviour = g.to_nfa();
        for minimum in g.minima() {
            for maximum in g.maxima() {
                if minimum == maximum {
                    continue;
                }
                let (by_abs, _) = dependence_by_abstraction(&behaviour, &minimum, &maximum);
                let by_prec = dependence_by_precedence(&behaviour, &minimum, &maximum);
                assert_eq!(by_abs, by_prec, "({minimum}, {maximum})");
            }
        }
    }

    #[test]
    fn elicit_from_graph_produces_requirements() {
        let g = pipeline_graph();
        let report = elicit_from_graph(&g, DependenceMethod::Abstraction, |name| {
            Agent::new(&format!("stakeholder_of_{name}"))
        });
        // out depends on in_a and in_b; noise on nothing; out not on noise.
        let reqs: Vec<String> = report
            .requirements
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            reqs,
            vec![
                "auth(in_a, out, stakeholder_of_out)",
                "auth(in_b, out, stakeholder_of_out)",
            ]
        );
        // verdicts cover all pairs except (noise, noise).
        assert_eq!(report.verdicts.len(), 3 * 2 - 1);
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.minimal_automaton_states.is_some()));
    }

    #[test]
    fn parallel_grid_is_bit_identical_to_sequential() {
        let g = pipeline_graph();
        for method in [DependenceMethod::Abstraction, DependenceMethod::Precedence] {
            let seq = elicit_with_options(
                &g,
                &ElicitOptions {
                    method,
                    threads: 1,
                    prune: false,
                },
                |_| Agent::new("P"),
            );
            for threads in [2, 4, 8] {
                let par = elicit_with_options(
                    &g,
                    &ElicitOptions {
                        method,
                        threads,
                        prune: false,
                    },
                    |_| Agent::new("P"),
                );
                assert_eq!(par.verdicts, seq.verdicts, "threads = {threads}");
                assert_eq!(
                    par.requirements.iter().collect::<Vec<_>>(),
                    seq.requirements.iter().collect::<Vec<_>>()
                );
                assert_eq!(par.stats.threads, threads);
            }
        }
    }

    #[test]
    fn pruning_agrees_with_full_evaluation() {
        let g = pipeline_graph();
        let full = elicit_with_options(&g, &ElicitOptions::default(), |_| Agent::new("P"));
        let pruned = elicit_with_options(
            &g,
            &ElicitOptions {
                prune: true,
                ..ElicitOptions::default()
            },
            |_| Agent::new("P"),
        );
        // Pruning never changes a dependence verdict — only how it is
        // reached (pruned pairs skip the minimal automaton).
        for (f, p) in full.verdicts.iter().zip(pruned.verdicts.iter()) {
            assert_eq!((&f.minimum, &f.maximum), (&p.minimum, &p.maximum));
            assert_eq!(f.dependent, p.dependent, "({}, {})", f.minimum, f.maximum);
            if p.minimal_automaton_states.is_none() {
                assert!(!p.dependent, "only independent pairs are pruned");
            }
        }
        assert_eq!(
            full.requirements.iter().collect::<Vec<_>>(),
            pruned.requirements.iter().collect::<Vec<_>>()
        );
        // (noise, out) is prunable: noise never occurs on a path that
        // still reaches an `out` firing? It does interleave, so at
        // minimum the counters must be consistent.
        assert!(pruned.stats.pairs_pruned <= pruned.stats.pairs_total);
        assert_eq!(pruned.stats.pairs_total, full.verdicts.len());
    }

    #[test]
    fn prune_pass_skips_unreachable_minima() {
        // Chain `first → second` plus a detached `late` automaton that
        // can only fire after `second` — i.e. `late` never occurs
        // before `second`'s own inputs. Build: src -first-> mid
        // -second-> dst, and an independent `spare` that fires from a
        // separate component only after dst is filled.
        let mut b = ApaBuilder::new();
        let c0 = b.component("c0", [Value::atom("x")]);
        let c1 = b.component("c1", []);
        let c2 = b.component("c2", []);
        let c3 = b.component("c3", []);
        b.automaton("first", [c0, c1], rule::move_any(0, 1));
        b.automaton("second", [c1, c2], rule::move_any(0, 1));
        b.automaton("third", [c2, c3], rule::move_any(0, 1));
        let g = b
            .build()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap();
        // Single minimum `first`, single maximum `third`: the pair is
        // dependent, so nothing is pruned — but stats must show the
        // cache was consulted once per pair beyond the first.
        let report = elicit_with_options(
            &g,
            &ElicitOptions {
                prune: true,
                ..ElicitOptions::default()
            },
            |_| Agent::new("P"),
        );
        assert_eq!(report.stats.pairs_total, 1);
        assert_eq!(report.stats.pairs_pruned, 0);
        assert_eq!(report.stats.coreach_cache_hits, 0);
        assert!(report.verdicts[0].dependent);
    }

    #[test]
    fn stats_are_populated() {
        let g = pipeline_graph();
        let report = elicit_from_graph(&g, DependenceMethod::Abstraction, |_| Agent::new("P"));
        assert_eq!(report.stats.pairs_total, report.verdicts.len());
        assert_eq!(
            report.stats.pairs_pruned, 0,
            "legacy entry point never prunes"
        );
        assert_eq!(report.stats.threads, 1);
        assert!(report.stats.pair_eval >= std::time::Duration::ZERO);
    }

    #[test]
    fn precedence_method_omits_automaton_sizes() {
        let g = pipeline_graph();
        let report = elicit_from_graph(&g, DependenceMethod::Precedence, |_| Agent::new("P"));
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.minimal_automaton_states.is_none()));
        assert_eq!(report.requirements.len(), 2);
    }

    #[test]
    fn observed_run_matches_unobserved_and_stats_are_a_snapshot_view() {
        let g = pipeline_graph();
        let options = ElicitOptions {
            prune: true,
            threads: 2,
            ..ElicitOptions::default()
        };
        let plain = elicit_with_options(&g, &options, |_| Agent::new("P"));
        let obs = Obs::enabled();
        let observed = elicit_observed(&g, &options, &obs, |_| Agent::new("P"));

        // Observability never changes the analysis result.
        assert_eq!(observed.verdicts, plain.verdicts);
        assert_eq!(observed.requirements, plain.requirements);
        assert_eq!(observed.minima, plain.minima);
        assert_eq!(observed.maxima, plain.maxima);

        // The legacy stats struct is a thin view over the snapshot: the
        // reconstructed view equals the struct filled live.
        let snap = obs.snapshot();
        let view = PipelineStats::from_snapshot(&snap).unwrap();
        assert_eq!(view, observed.stats);
        assert_eq!(snap.span_count("elicit"), 1);
        for stage in [
            "elicit.behaviour_nfa",
            "elicit.min_max",
            "elicit.prune_pass",
            "elicit.pair_eval",
        ] {
            assert_eq!(snap.span_count(stage), 1, "{stage}");
            let rec = snap.spans.iter().find(|s| s.name == stage).unwrap();
            assert!(rec.parent.is_some(), "{stage} is parented under elicit");
        }
    }
}
