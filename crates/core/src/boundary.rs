//! Boundary actions and boundary statistics.
//!
//! §4.3: "Let the term *boundary action* refer to the actions that form
//! the interaction of the internals of the system with the outside
//! world. These are actions that are either triggered by occurrences
//! outside of the system or actions that involve changes to the outside
//! of the system."
//!
//! Two boundary notions are distinguished, matching the statistics
//! reported at the end of §4.4 for the EVITA application ("a system
//! model comprising 38 *component boundary actions* with 16 *system
//! boundary actions* comprising 9 maximal and 7 minimal elements"):
//!
//! * **system boundary actions** — sources and sinks of the composed SoS
//!   flow graph: the minimal (incoming) and maximal (outgoing) elements
//!   of the dependency order;
//! * **component boundary actions** — actions at a *component* boundary:
//!   they either participate in a flow that crosses component ownership
//!   or interact with the environment (i.e. are system boundary
//!   actions).

use crate::instance::SosInstance;
use fsa_graph::NodeId;

/// Boundary statistics of one SoS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryStats {
    /// Incoming system boundary actions (sources / minimal elements).
    pub minimal: Vec<NodeId>,
    /// Outgoing system boundary actions (sinks / maximal elements).
    pub maximal: Vec<NodeId>,
    /// Actions at a component boundary (see module docs).
    pub component_boundary: Vec<NodeId>,
}

impl BoundaryStats {
    /// Number of system boundary actions (`minimal ∪ maximal`; an
    /// isolated action counts once).
    pub fn system_boundary_count(&self) -> usize {
        let mut all: Vec<NodeId> = self
            .minimal
            .iter()
            .chain(self.maximal.iter())
            .copied()
            .collect();
        all.sort();
        all.dedup();
        all.len()
    }

    /// Number of component boundary actions.
    pub fn component_boundary_count(&self) -> usize {
        self.component_boundary.len()
    }
}

/// Computes the boundary statistics of `instance`.
///
/// # Examples
///
/// ```
/// use fsa_core::action::Action;
/// use fsa_core::boundary::boundary_stats;
/// use fsa_core::instance::SosInstanceBuilder;
///
/// let mut b = SosInstanceBuilder::new("t");
/// let x = b.action_owned(Action::parse("in"), "P", "A");
/// let y = b.action_owned(Action::parse("mid"), "P", "A");
/// let z = b.action_owned(Action::parse("out"), "Q", "B");
/// b.flow(x, y);
/// b.flow(y, z);
/// let inst = b.build();
/// let stats = boundary_stats(&inst);
/// assert_eq!(stats.minimal, vec![x]);
/// assert_eq!(stats.maximal, vec![z]);
/// // x and z touch the environment; y and z share a cross-component flow.
/// assert_eq!(stats.component_boundary_count(), 3);
/// ```
pub fn boundary_stats(instance: &SosInstance) -> BoundaryStats {
    let g = instance.graph();
    let minimal = g.sources();
    let maximal = g.sinks();
    let mut component_boundary: Vec<NodeId> = Vec::new();
    for id in g.node_ids() {
        let crosses = g
            .successors(id)
            .any(|s| instance.owner(s) != instance.owner(id))
            || g.predecessors(id)
                .any(|p| instance.owner(p) != instance.owner(id));
        let env = g.in_degree(id) == 0 || g.out_degree(id) == 0;
        if crosses || env {
            component_boundary.push(id);
        }
    }
    BoundaryStats {
        minimal,
        maximal,
        component_boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::instance::SosInstanceBuilder;

    /// Fig. 3: V1 warns Vw.
    fn fig3() -> SosInstance {
        let mut b = SosInstanceBuilder::new("fig3");
        let sense = b.action_owned(Action::parse("sense(ESP_1,sW)"), "D_1", "V1");
        let pos1 = b.action_owned(Action::parse("pos(GPS_1,pos)"), "D_1", "V1");
        let send = b.action_owned(Action::parse("send(CU_1,cam(pos))"), "D_1", "V1");
        let rec = b.action_owned(Action::parse("rec(CU_w,cam(pos))"), "D_w", "Vw");
        let posw = b.action_owned(Action::parse("pos(GPS_w,pos)"), "D_w", "Vw");
        let show = b.action_owned(Action::parse("show(HMI_w,warn)"), "D_w", "Vw");
        b.flow(sense, send);
        b.flow(pos1, send);
        b.flow(send, rec);
        b.flow(rec, show);
        b.flow(posw, show);
        b.build()
    }

    #[test]
    fn fig3_system_boundary() {
        let stats = boundary_stats(&fig3());
        assert_eq!(stats.minimal.len(), 3, "sense, pos_1, pos_w");
        assert_eq!(stats.maximal.len(), 1, "show");
        assert_eq!(stats.system_boundary_count(), 4);
    }

    #[test]
    fn fig3_component_boundary() {
        let stats = boundary_stats(&fig3());
        // sense, pos_1, pos_w, show touch the environment;
        // send and rec share the cross-component flow.
        assert_eq!(stats.component_boundary_count(), 6);
    }

    #[test]
    fn isolated_action_counts_once_in_system_boundary() {
        let mut b = SosInstanceBuilder::new("t");
        b.action(Action::parse("lonely"), "P");
        let stats = boundary_stats(&b.build());
        assert_eq!(stats.minimal.len(), 1);
        assert_eq!(stats.maximal.len(), 1);
        assert_eq!(stats.system_boundary_count(), 1);
    }

    #[test]
    fn purely_internal_action_not_component_boundary() {
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action_owned(Action::parse("a"), "P", "A");
        let m = b.action_owned(Action::parse("m"), "P", "A");
        let z = b.action_owned(Action::parse("z"), "P", "A");
        b.flow(a, m);
        b.flow(m, z);
        let stats = boundary_stats(&b.build());
        assert_eq!(stats.component_boundary_count(), 2, "only a and z");
    }
}
