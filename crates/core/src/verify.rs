//! Verification of authenticity requirements against behaviours.
//!
//! The paper notes (§6) that "the systematic approach that incorporates
//! formal semantics leads directly to the formal validation of
//! security". This module closes that loop: given a behaviour (an APA
//! reachability graph converted to an NFA over action names) and a set
//! of elicited requirements, it checks every `auth(a, b, P)` as the
//! precedence property "`b` never occurs before the first `a`" and — on
//! violation — extracts a shortest **attack trace**: a run on which the
//! safety-critical output happens without the authentic input having
//! occurred.
//!
//! Two checkers are provided and cross-validated by property tests:
//! a direct graph search ([`automata::temporal`]) and language inclusion
//! against a precedence monitor ([`automata::monitor`]).

use crate::requirements::{AuthRequirement, RequirementSet};
use automata::{monitor, temporal, Nfa};
use std::fmt;

/// The verification verdict for a single requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The requirement checked.
    pub requirement: AuthRequirement,
    /// `None` — the behaviour satisfies the requirement; `Some(trace)` —
    /// a shortest run violating it (ending in the consequent action).
    pub violation: Option<Vec<String>>,
}

impl Verdict {
    /// Returns `true` if the requirement holds.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.violation {
            None => write!(f, "{}: holds", self.requirement),
            Some(trace) => write!(
                f,
                "{}: VIOLATED by trace [{}]",
                self.requirement,
                trace.join(", ")
            ),
        }
    }
}

/// The checker to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checker {
    /// Direct precedence search on the behaviour graph.
    Precedence,
    /// Language inclusion against a two-state precedence monitor.
    Monitor,
}

/// Verifies every requirement of `set` against `behaviour`. Action
/// names in the behaviour's alphabet are matched against the rendered
/// antecedent/consequent terms.
pub fn verify_requirements(
    behaviour: &Nfa,
    set: &RequirementSet,
    checker: Checker,
) -> Vec<Verdict> {
    set.iter()
        .map(|req| verify_one(behaviour, req, checker))
        .collect()
}

/// Verifies a single requirement (see [`verify_requirements`]).
pub fn verify_one(behaviour: &Nfa, req: &AuthRequirement, checker: Checker) -> Verdict {
    let a = req.antecedent.to_string();
    let b = req.consequent.to_string();
    let violation = match checker {
        Checker::Precedence => temporal::precedence_counterexample(behaviour, &a, &b),
        Checker::Monitor => {
            let symbols: Vec<String> = behaviour
                .alphabet()
                .iter()
                .map(|(_, n)| n.to_owned())
                .collect();
            let m = monitor::precedence_monitor(symbols.iter().map(String::as_str), &a, &b);
            // The monitor rejects exactly the runs where b precedes the
            // first a; the inclusion counterexample is an attack trace.
            monitor::inclusion_counterexample(behaviour, &m)
        }
    };
    Verdict {
        requirement: req.clone(),
        violation,
    }
}

/// Returns `true` if every requirement holds on the behaviour.
pub fn all_hold(behaviour: &Nfa, set: &RequirementSet, checker: Checker) -> bool {
    verify_requirements(behaviour, set, checker)
        .iter()
        .all(Verdict::holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Agent};

    fn req(a: &str, b: &str) -> AuthRequirement {
        AuthRequirement::new(Action::parse(a), Action::parse(b), Agent::new("P"))
    }

    /// sense → show, but also a rogue branch where show fires directly.
    fn tampered_behaviour() -> Nfa {
        let mut bld = Nfa::builder();
        let sense = bld.symbol("sense");
        let inject = bld.symbol("inject");
        let show = bld.symbol("show");
        let s0 = bld.state(true);
        let s1 = bld.state(true);
        let s2 = bld.state(true);
        let s3 = bld.state(true);
        bld.initial(s0);
        bld.edge(s0, Some(sense), s1);
        bld.edge(s1, Some(show), s2);
        bld.edge(s0, Some(inject), s3);
        bld.edge(s3, Some(show), s2);
        bld.build()
    }

    fn honest_behaviour() -> Nfa {
        let mut bld = Nfa::builder();
        let sense = bld.symbol("sense");
        let show = bld.symbol("show");
        let s0 = bld.state(true);
        let s1 = bld.state(true);
        let s2 = bld.state(true);
        bld.initial(s0);
        bld.edge(s0, Some(sense), s1);
        bld.edge(s1, Some(show), s2);
        bld.build()
    }

    #[test]
    fn honest_behaviour_satisfies() {
        let set: RequirementSet = [req("sense", "show")].into_iter().collect();
        for checker in [Checker::Precedence, Checker::Monitor] {
            assert!(all_hold(&honest_behaviour(), &set, checker));
        }
    }

    #[test]
    fn tampered_behaviour_yields_attack_trace() {
        let set: RequirementSet = [req("sense", "show")].into_iter().collect();
        for checker in [Checker::Precedence, Checker::Monitor] {
            let verdicts = verify_requirements(&tampered_behaviour(), &set, checker);
            assert_eq!(verdicts.len(), 1);
            let trace = verdicts[0].violation.clone().expect("violated");
            assert_eq!(trace, vec!["inject", "show"], "{checker:?}");
            assert!(!verdicts[0].holds());
            assert!(verdicts[0].to_string().contains("VIOLATED"));
        }
    }

    #[test]
    fn checkers_agree_on_mixed_sets() {
        let set: RequirementSet = [
            req("sense", "show"),
            req("inject", "show"), // does NOT hold either (sense path)
        ]
        .into_iter()
        .collect();
        let behaviour = tampered_behaviour();
        let by_prec = verify_requirements(&behaviour, &set, Checker::Precedence);
        let by_mon = verify_requirements(&behaviour, &set, Checker::Monitor);
        for (p, m) in by_prec.iter().zip(&by_mon) {
            assert_eq!(p.holds(), m.holds(), "{}", p.requirement);
        }
    }

    #[test]
    fn holding_verdict_displays() {
        let v = verify_one(
            &honest_behaviour(),
            &req("sense", "show"),
            Checker::Precedence,
        );
        assert!(v.to_string().ends_with("holds"));
    }
}
