//! Text rendering of elicitation results.
//!
//! Used by the `repro` binary to regenerate the paper's listings
//! (Examples 3, 6, 7 and the requirement lists of §4.4).

use crate::assisted::AssistedReport;
use crate::manual::ElicitationReport;
use crate::param::{parameterise, ReqForm};
use std::fmt::Write as _;

/// Renders a manual-pipeline report in the style of §4.4.
pub fn render_manual(report: &ElicitationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Functional security analysis: {} ==",
        report.instance_name()
    );
    let _ = writeln!(
        s,
        "zeta (direct functional flows): {} pairs",
        report.zeta().len()
    );
    for (a, b) in report.zeta() {
        let _ = writeln!(s, "  ({a}, {b})");
    }
    let _ = writeln!(
        s,
        "zeta* (reflexive transitive closure): {} pairs",
        report.closure_size()
    );
    let _ = writeln!(s, "minimal elements (incoming boundary actions):");
    for a in report.minima() {
        let _ = writeln!(s, "  {a}");
    }
    let _ = writeln!(s, "maximal elements (outgoing boundary actions):");
    for a in report.maxima() {
        let _ = writeln!(s, "  {a}");
    }
    let _ = writeln!(
        s,
        "chi (min x max restriction): {} pairs",
        report.chi().len()
    );
    let _ = writeln!(s, "authenticity requirements:");
    for c in report.classified_requirements() {
        let _ = writeln!(s, "  {}   [{}]", c.requirement, c.relevance);
    }
    let _ = writeln!(
        s,
        "boundary statistics: {} component boundary actions, {} system boundary actions ({} maximal, {} minimal)",
        report.boundary().component_boundary_count(),
        report.boundary().system_boundary_count(),
        report.boundary().maximal.len(),
        report.boundary().minimal.len(),
    );
    s
}

/// Renders the parameterised (first-order) form of the requirement set.
pub fn render_parameterised(report: &ElicitationReport, min_group_size: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "parameterised requirements:");
    for form in parameterise(&report.requirement_set(), min_group_size) {
        match &form {
            ReqForm::Plain(r) => {
                let _ = writeln!(s, "  {r}");
            }
            ReqForm::ForAll { .. } => {
                let _ = writeln!(s, "  {form}");
            }
        }
    }
    s
}

/// Renders a manual-pipeline report as a Markdown document (summary
/// table per requirement with classification), for inclusion in design
/// documentation.
pub fn render_markdown(report: &ElicitationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "## Functional security analysis: {}\n",
        report.instance_name()
    );
    let _ = writeln!(
        s,
        "*|ζ| = {}, |ζ*| = {}; {} minimal and {} maximal elements; {} component boundary actions.*\n",
        report.zeta().len(),
        report.closure_size(),
        report.minima().len(),
        report.maxima().len(),
        report.boundary().component_boundary_count(),
    );
    let _ = writeln!(
        s,
        "| # | antecedent | consequent | stakeholder | relevance |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|");
    for (i, c) in report.classified_requirements().iter().enumerate() {
        let _ = writeln!(
            s,
            "| {} | `{}` | `{}` | {} | {} |",
            i + 1,
            c.requirement.antecedent,
            c.requirement.consequent,
            c.requirement.stakeholder,
            c.relevance
        );
    }
    s
}

/// Renders an SoS instance to Graphviz DOT with one cluster per owning
/// component instance — the boxed-vehicle convention of the paper's
/// Figs. 2–4. Policy flows are dashed.
pub fn instance_to_dot(instance: &crate::SosInstance) -> String {
    use std::collections::BTreeMap;
    let g = instance.graph();
    let mut clusters: BTreeMap<&str, Vec<fsa_graph::NodeId>> = BTreeMap::new();
    for id in g.node_ids() {
        clusters.entry(instance.owner(id)).or_default().push(id);
    }
    let mut s = String::new();
    let _ = writeln!(s, "digraph instance {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=box, fontsize=10];");
    for (i, (owner, nodes)) in clusters.iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{i} {{");
        let _ = writeln!(s, "    label=\"{}\";", owner.replace('"', "'"));
        for id in nodes {
            let _ = writeln!(
                s,
                "    n{} [label=\"{}\"];",
                id.index(),
                instance.action(*id).to_string().replace('"', "'")
            );
        }
        let _ = writeln!(s, "  }}");
    }
    for (a, b) in g.edges() {
        let style = match instance.flow_kind(a, b) {
            Some(crate::instance::FlowKind::Policy) => " [style=dashed]",
            _ => "",
        };
        let _ = writeln!(s, "  n{} -> n{}{style};", a.index(), b.index());
    }
    s.push_str("}\n");
    s
}

/// Renders a tool-assisted report in the style of Examples 6/7.
pub fn render_assisted(report: &AssistedReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "reachability graph: {} states, {} transitions",
        report.state_count, report.edge_count
    );
    let _ = writeln!(s, "minima: {}", report.minima.join(", "));
    let _ = writeln!(s, "maxima: {}", report.maxima.join(", "));
    let _ = writeln!(s, "dependence matrix (min x max):");
    for v in &report.verdicts {
        let states = v
            .minimal_automaton_states
            .map(|n| format!(" ({n}-state minimal automaton)"))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  {} -> {}: {}{}",
            v.minimum,
            v.maximum,
            if v.dependent {
                "dependent"
            } else {
                "independent"
            },
            states
        );
    }
    let _ = writeln!(s, "requirements:");
    for r in &report.requirements {
        let _ = writeln!(s, "  {r}");
    }
    s
}

/// Renders the dependence-checking engine's per-stage statistics
/// (the `--stats` output of the `fsa` binary).
pub fn render_stats(stats: &crate::assisted::PipelineStats) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "pipeline stats ({} thread(s)):", stats.threads);
    let _ = writeln!(s, "  behaviour NFA:   {:?}", stats.behaviour_nfa);
    let _ = writeln!(s, "  min/max scan:    {:?}", stats.min_max);
    let _ = writeln!(
        s,
        "  prune pass:      {:?} ({}/{} pairs pruned, {} co-reach cache hit(s))",
        stats.prune_pass, stats.pairs_pruned, stats.pairs_total, stats.coreach_cache_hits
    );
    let _ = writeln!(s, "  pair evaluation: {:?}", stats.pair_eval);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::instance::SosInstanceBuilder;
    use crate::manual::elicit;

    fn sample_report() -> ElicitationReport {
        let mut b = SosInstanceBuilder::new("sample");
        let a = b.action(Action::parse("pos(GPS_2,pos)"), "D_2");
        let c = b.action(Action::parse("pos(GPS_3,pos)"), "D_3");
        let z = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
        b.flow(a, z);
        b.flow(c, z);
        elicit(&b.build()).unwrap()
    }

    #[test]
    fn render_manual_contains_sections() {
        let text = render_manual(&sample_report());
        assert!(text.contains("zeta"));
        assert!(text.contains("minimal elements"));
        assert!(text.contains("authenticity requirements"));
        assert!(text.contains("auth(pos(GPS_2,pos), show(HMI_w,warn), D_w)"));
        assert!(text.contains("[safety]"));
    }

    #[test]
    fn render_markdown_table() {
        let text = render_markdown(&sample_report());
        assert!(text.starts_with("## Functional security analysis"));
        assert!(text.contains("| # | antecedent |"));
        assert!(text.contains("| 1 | `pos(GPS_2,pos)` | `show(HMI_w,warn)` | D_w | safety |"));
        assert!(text.contains("|ζ| = 2"));
    }

    #[test]
    fn render_parameterised_groups() {
        let text = render_parameterised(&sample_report(), 2);
        assert!(text.contains("forall x in {2,3}"));
    }

    #[test]
    fn instance_to_dot_clusters_by_owner() {
        use crate::instance::SosInstanceBuilder;
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action_owned(Action::parse("sense(ESP_1,sW)"), "D_1", "V1");
        let c = b.action_owned(Action::parse("rec(CU_w,cam(pos))"), "D_w", "Vw");
        let d = b.action_owned(Action::parse("fwd(CU_w,cam(pos))"), "D_w", "Vw");
        b.flow(a, c);
        b.policy_flow(c, d);
        let dot = instance_to_dot(&b.build());
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"V1\";"));
        assert!(dot.contains("label=\"Vw\";"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2 [style=dashed];"));
    }

    #[test]
    fn render_assisted_lists_verdicts() {
        use crate::action::Agent;
        use crate::assisted::{AssistedReport, PairVerdict};
        use crate::requirements::{AuthRequirement, RequirementSet};
        let report = AssistedReport {
            state_count: 12,
            edge_count: 20,
            minima: vec!["V1_sense".into()],
            maxima: vec!["V2_show".into()],
            verdicts: vec![PairVerdict {
                minimum: "V1_sense".into(),
                maximum: "V2_show".into(),
                dependent: true,
                minimal_automaton_states: Some(3),
            }],
            requirements: [AuthRequirement::new(
                Action::parse("V1_sense"),
                Action::parse("V2_show"),
                Agent::new("D_2"),
            )]
            .into_iter()
            .collect::<RequirementSet>(),
            stats: crate::assisted::PipelineStats::default(),
        };
        let text = render_assisted(&report);
        assert!(text.contains("12 states"));
        assert!(text.contains("dependent (3-state minimal automaton)"));
        assert!(text.contains("auth(V1_sense, V2_show, D_2)"));
    }

    #[test]
    fn render_stats_lists_stages() {
        let stats = crate::assisted::PipelineStats {
            pairs_total: 6,
            pairs_pruned: 2,
            coreach_cache_hits: 4,
            threads: 4,
            ..Default::default()
        };
        let text = render_stats(&stats);
        assert!(text.contains("pipeline stats (4 thread(s))"));
        assert!(text.contains("2/6 pairs pruned"));
        assert!(text.contains("4 co-reach cache hit(s)"));
        assert!(text.contains("pair evaluation"));
    }
}
