//! Functional security analysis — the paper's core method.
//!
//! Implements both elicitation pipelines of Fuchs & Rieke:
//!
//! * **Manual method (§4)** — [`manual::elicit`]: from an
//!   [`SosInstance`] (a composed functional model), interpret the
//!   functional flow as a relation `ζ`, build the reflexive transitive
//!   closure `ζ*`, restrict it to (minimal, maximal) pairs `χ`, and emit
//!   one authenticity requirement `auth(x, y, stakeholder(y))` per pair.
//! * **Tool-assisted method (§5)** — [`assisted::elicit_from_graph`]:
//!   from an APA reachability graph, read minima and maxima off the
//!   graph and decide functional dependence of each (maximum, minimum)
//!   pair by homomorphic abstraction onto the pair and inspection of the
//!   minimal automaton (or, equivalently, a direct precedence check).
//!
//! Supporting modules: [`action`] (the action terms of Table 1),
//! [`component_model`] (functional component models, Fig. 1),
//! [`instance`] (SoS instance composition, Figs. 2–4), [`boundary`]
//! (boundary-action statistics), [`requirements`] / [`param`]
//! (requirement sets and their first-order parameterisation), and
//! [`classify`] (safety vs. availability evaluation of requirements).
//!
//! # Examples
//!
//! The paper's Example 3 end to end:
//!
//! ```
//! use fsa_core::action::Action;
//! use fsa_core::instance::SosInstanceBuilder;
//! use fsa_core::manual::elicit;
//!
//! let mut b = SosInstanceBuilder::new("two-vehicle");
//! let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
//! let pos1 = b.action(Action::parse("pos(GPS_1,pos)"), "D_1");
//! let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
//! let rec = b.action(Action::parse("rec(CU_w,cam(pos))"), "D_w");
//! let posw = b.action(Action::parse("pos(GPS_w,pos)"), "D_w");
//! let show = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
//! b.flow(sense, send);
//! b.flow(pos1, send);
//! b.flow(send, rec);
//! b.flow(rec, show);
//! b.flow(posw, show);
//! let instance = b.build();
//!
//! let report = elicit(&instance)?;
//! let reqs: Vec<String> = report.requirements().iter().map(ToString::to_string).collect();
//! assert_eq!(reqs, vec![
//!     "auth(sense(ESP_1,sW), show(HMI_w,warn), D_w)",
//!     "auth(pos(GPS_1,pos), show(HMI_w,warn), D_w)",
//!     "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)",
//! ]);
//! # Ok::<(), fsa_core::FsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod assisted;
pub mod boundary;
pub mod certcache;
pub mod checkpoint;
pub mod classify;
pub mod component_model;
pub mod confidential;
pub mod dataflow;
pub mod delta;
pub mod error;
pub mod explore;
pub mod family;
pub mod incremental;
pub mod instance;
pub mod manual;
pub mod memo;
pub mod param;
pub mod prioritise;
pub mod refine;
pub mod report;
pub mod requirements;
pub mod service;
pub mod verify;

pub use action::{Action, Agent, Param};
pub use error::FsaError;
pub use instance::{SosInstance, SosInstanceBuilder};
pub use requirements::{AuthRequirement, RequirementSet};
