//! Error type of the elicitation pipelines.

use crate::action::Action;
use std::error::Error;
use std::fmt;

/// Errors produced by functional security analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsaError {
    /// The functional flow contains a circular dependency. The paper:
    /// "an infinite loop among actions in the system would indicate that
    /// the system described will not terminate".
    CircularDependency {
        /// Two actions that transitively depend on each other.
        first: Action,
        /// See `first`.
        second: Action,
    },
    /// An action referenced by a flow or query is not in the instance.
    UnknownAction(String),
    /// A component model referenced an action index out of range.
    InvalidComponentModel {
        /// Explanation.
        reason: String,
    },
    /// An enumeration exceeded its candidate budget (see
    /// [`crate::explore::ExploreOptions::max_candidates`]).
    BudgetExceeded {
        /// The configured budget that was exceeded.
        limit: usize,
    },
    /// A parallel worker panicked in a *non-supervised* engine path.
    /// The supervised execution layer ([`crate::explore`]'s
    /// `enumerate_instances_supervised`) subsumes this by quarantining
    /// and retrying the chunk instead; the variant remains the
    /// fallback for the plain fork-join entry points.
    WorkerPanicked {
        /// Engine stage (e.g. `explore:scan`, `explore:build`,
        /// `explore:union`).
        stage: &'static str,
        /// Chunk index of the panicked worker.
        chunk: usize,
    },
    /// An exported observability counter does not fit the native
    /// `usize` of this target (32-bit truncation hazard). Snapshot
    /// *views* (`ExploreStats::from_snapshot` & friends) fail closed
    /// with this instead of silently wrapping, mirroring the
    /// checkpoint-counter discipline of [`FsaError::CorruptCheckpoint`].
    CounterOutOfRange {
        /// Counter name (e.g. `explore.candidates`).
        name: String,
        /// The recorded value that does not fit.
        value: u64,
    },
    /// A checkpoint file could not be loaded: missing, truncated,
    /// bit-flipped (checksum mismatch), version-skewed, or written by a
    /// run with a different configuration. Never a panic, never a
    /// silent partial load.
    CorruptCheckpoint {
        /// Explanation.
        reason: String,
    },
    /// The cross-run certificate cache failed: the file is unreadable,
    /// truncated, bit-flipped (checksum mismatch), version-skewed or
    /// structurally malformed, or the cache was combined with an
    /// execution mode it cannot honour (checkpoint/resume). Fail
    /// closed — a suspect cache is never consulted.
    CertCache {
        /// Explanation.
        reason: String,
    },
    /// A shard range restriction was malformed or used with an engine
    /// that cannot honour it (see
    /// [`crate::explore::ExploreOptions::shard`]).
    InvalidShard {
        /// Explanation.
        reason: String,
    },
    /// A bounded store was constructed with capacity 0. Capacity-0
    /// stores used to be silently clamped to 1; they are rejected with
    /// this typed error instead, so a misconfigured cache surfaces at
    /// construction, not as surprising evict-on-insert behaviour.
    InvalidCapacity {
        /// Which store rejected the construction (e.g. `MemoStore`).
        what: &'static str,
    },
    /// The underlying APA analysis failed.
    Apa(apa::ApaError),
}

impl fmt::Display for FsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsaError::CircularDependency { first, second } => write!(
                f,
                "circular functional dependency between `{first}` and `{second}`"
            ),
            FsaError::UnknownAction(name) => write!(f, "unknown action `{name}`"),
            FsaError::InvalidComponentModel { reason } => {
                write!(f, "invalid component model: {reason}")
            }
            FsaError::BudgetExceeded { limit } => {
                write!(f, "enumeration exceeded the budget of {limit} candidates")
            }
            FsaError::WorkerPanicked { stage, chunk } => {
                write!(f, "worker panicked in stage `{stage}` chunk {chunk}")
            }
            FsaError::CounterOutOfRange { name, value } => write!(
                f,
                "observability counter `{name}` value {value} does not fit in usize on this target"
            ),
            FsaError::CorruptCheckpoint { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            FsaError::CertCache { reason } => {
                write!(f, "certificate cache: {reason}")
            }
            FsaError::InvalidShard { reason } => {
                write!(f, "invalid shard range: {reason}")
            }
            FsaError::InvalidCapacity { what } => {
                write!(
                    f,
                    "invalid capacity: {what} requires a capacity of at least 1"
                )
            }
            FsaError::Apa(e) => write!(f, "APA analysis failed: {e}"),
        }
    }
}

impl Error for FsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FsaError::Apa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<apa::ApaError> for FsaError {
    fn from(e: apa::ApaError) -> Self {
        FsaError::Apa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FsaError::CircularDependency {
            first: Action::parse("a"),
            second: Action::parse("b"),
        };
        assert!(e.to_string().contains("circular"));
        let e = FsaError::Apa(apa::ApaError::StateLimitExceeded { limit: 5 });
        assert!(e.to_string().contains("APA"));
        assert!(e.source().is_some());
        let e = FsaError::UnknownAction("x".into());
        assert!(e.to_string().contains('x'));
        let e = FsaError::BudgetExceeded { limit: 42 };
        assert!(e.to_string().contains("42"));
        let e = FsaError::WorkerPanicked {
            stage: "explore:build",
            chunk: 7,
        };
        assert!(e.to_string().contains("explore:build") && e.to_string().contains('7'));
        let e = FsaError::CorruptCheckpoint {
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("corrupt checkpoint"));
        assert!(e.to_string().contains("checksum"));
        let e = FsaError::InvalidShard {
            reason: "start beyond end".into(),
        };
        assert!(e.to_string().contains("invalid shard range"));
        let e = FsaError::InvalidCapacity { what: "MemoStore" };
        assert!(e.to_string().contains("MemoStore") && e.to_string().contains("at least 1"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsaError>();
    }
}
