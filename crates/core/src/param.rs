//! First-order parameterisation of requirement sets.
//!
//! §4.4: the elements of `χᵢ` beyond the stable core "can be expressed
//! in terms of first-order predicates", e.g.
//!
//! ```text
//! ∀ x ∈ V_forward : auth(pos(GPS_x, pos), show(HMI_w, warn), D_w)
//! ```
//!
//! [`parameterise`] groups requirements that are identical up to the
//! instance index of their antecedent and abstracts that index into a
//! variable.

use crate::action::{Action, Agent};
use crate::requirements::{AuthRequirement, RequirementSet};
use std::collections::BTreeMap;
use std::fmt;

/// The variable name used for abstracted indices.
pub const VARIABLE: &str = "x";

/// A possibly-parameterised requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqForm {
    /// An unparameterised requirement.
    Plain(AuthRequirement),
    /// A universally quantified family:
    /// `∀ x ∈ domain : auth(template.antecedent, template.consequent, P)`
    /// where the template's antecedent uses the index [`VARIABLE`].
    ForAll {
        /// The index values the variable ranges over (the paper's
        /// `V_forward` set), sorted.
        domain: Vec<String>,
        /// The requirement template with [`VARIABLE`] as index.
        template: AuthRequirement,
    },
}

impl ReqForm {
    /// Expands the form back into concrete requirements.
    pub fn expand(&self) -> Vec<AuthRequirement> {
        match self {
            ReqForm::Plain(r) => vec![r.clone()],
            ReqForm::ForAll { domain, template } => domain
                .iter()
                .map(|v| {
                    AuthRequirement::new(
                        template.antecedent.rename_index(VARIABLE, v),
                        template.consequent.clone(),
                        template.stakeholder.clone(),
                    )
                })
                .collect(),
        }
    }
}

impl fmt::Display for ReqForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReqForm::Plain(r) => write!(f, "{r}"),
            ReqForm::ForAll { domain, template } => {
                write!(
                    f,
                    "forall {} in {{{}}}: {}",
                    VARIABLE,
                    domain.join(","),
                    template
                )
            }
        }
    }
}

/// Groups requirements identical up to the (first) instance index of
/// their antecedent; groups of at least `min_group_size` members become
/// [`ReqForm::ForAll`], the rest stay [`ReqForm::Plain`]. Output order
/// is canonical.
///
/// # Examples
///
/// ```
/// use fsa_core::action::{Action, Agent};
/// use fsa_core::param::{parameterise, ReqForm};
/// use fsa_core::requirements::{AuthRequirement, RequirementSet};
///
/// let set: RequirementSet = (2..=4)
///     .map(|i| AuthRequirement::new(
///         Action::parse(&format!("pos(GPS_{i},pos)")),
///         Action::parse("show(HMI_w,warn)"),
///         Agent::new("D_w"),
///     ))
///     .collect();
/// let forms = parameterise(&set, 2);
/// assert_eq!(forms.len(), 1);
/// assert_eq!(
///     forms[0].to_string(),
///     "forall x in {2,3,4}: auth(pos(GPS_x,pos), show(HMI_w,warn), D_w)"
/// );
/// ```
pub fn parameterise(set: &RequirementSet, min_group_size: usize) -> Vec<ReqForm> {
    parameterise_over(set, min_group_size, None)
}

/// Like [`parameterise`], but abstracts only antecedent indices in
/// `domain` (the paper's `V_forward`: "the set of vehicles per system
/// instance, that forward the warning message"). Requirements whose
/// index is outside the domain stay plain, so `pos(GPS_1)` and
/// `pos(GPS_w)` are not folded into the forwarder family.
pub fn parameterise_over(
    set: &RequirementSet,
    min_group_size: usize,
    domain: Option<&[&str]>,
) -> Vec<ReqForm> {
    // Key: (abstracted antecedent, consequent, stakeholder).
    type Key = (Action, Action, Agent);
    let mut groups: BTreeMap<Key, Vec<(String, AuthRequirement)>> = BTreeMap::new();
    let mut plain: Vec<AuthRequirement> = Vec::new();

    for r in set {
        let indices = r.antecedent.indices();
        let eligible = indices
            .first()
            .filter(|idx| domain.is_none_or(|d| d.contains(idx)));
        match eligible {
            Some(&idx) => {
                let template = r.antecedent.rename_index(idx, VARIABLE);
                let key = (template, r.consequent.clone(), r.stakeholder.clone());
                groups
                    .entry(key)
                    .or_default()
                    .push((idx.to_owned(), r.clone()));
            }
            None => plain.push(r.clone()),
        }
    }

    let mut out: Vec<ReqForm> = Vec::new();
    for ((template, consequent, stakeholder), mut members) in groups {
        members.sort();
        members.dedup();
        if members.len() >= min_group_size.max(1) && members.len() > 1 {
            let domain: Vec<String> = members.iter().map(|(v, _)| v.clone()).collect();
            out.push(ReqForm::ForAll {
                domain,
                template: AuthRequirement::new(template, consequent, stakeholder),
            });
        } else {
            plain.extend(members.into_iter().map(|(_, r)| r));
        }
    }
    plain.sort();
    plain.dedup();
    out.extend(plain.into_iter().map(ReqForm::Plain));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(a: &str, b: &str) -> AuthRequirement {
        AuthRequirement::new(Action::parse(a), Action::parse(b), Agent::new("D_w"))
    }

    #[test]
    fn forwarders_collapse_to_forall() {
        // §4.4: χᵢ grows by one pos(GPS_i) per forwarding vehicle.
        let set: RequirementSet = [
            req("pos(GPS_2,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_3,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_4,pos)", "show(HMI_w,warn)"),
            req("sense(ESP_1,sW)", "show(HMI_w,warn)"),
        ]
        .into_iter()
        .collect();
        let forms = parameterise(&set, 2);
        assert_eq!(forms.len(), 2);
        match &forms[0] {
            ReqForm::ForAll { domain, template } => {
                assert_eq!(domain, &["2", "3", "4"]);
                assert_eq!(template.antecedent.to_string(), "pos(GPS_x,pos)");
            }
            other => panic!("expected ForAll, got {other:?}"),
        }
        assert!(
            matches!(&forms[1], ReqForm::Plain(r) if r.antecedent == Action::parse("sense(ESP_1,sW)"))
        );
    }

    #[test]
    fn domain_restricted_grouping() {
        // pos(GPS_1) and pos(GPS_w) must stay plain when quantifying
        // over the forwarder set only.
        let set: RequirementSet = [
            req("pos(GPS_1,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_2,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_3,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_w,pos)", "show(HMI_w,warn)"),
        ]
        .into_iter()
        .collect();
        let forms = parameterise_over(&set, 2, Some(&["2", "3"]));
        let rendered: Vec<String> = forms.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![
                "forall x in {2,3}: auth(pos(GPS_x,pos), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_1,pos), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)",
            ]
        );
    }

    #[test]
    fn singletons_stay_plain() {
        let set: RequirementSet = [req("pos(GPS_1,pos)", "show(HMI_w,warn)")]
            .into_iter()
            .collect();
        let forms = parameterise(&set, 2);
        assert_eq!(forms.len(), 1);
        assert!(matches!(forms[0], ReqForm::Plain(_)));
    }

    #[test]
    fn no_index_requirements_stay_plain() {
        let set: RequirementSet = [req("send(cam(pos))", "show(HMI_w,warn)")]
            .into_iter()
            .collect();
        let forms = parameterise(&set, 2);
        assert!(matches!(forms[0], ReqForm::Plain(_)));
    }

    #[test]
    fn expand_round_trips() {
        let original: RequirementSet = (1..=5)
            .map(|i| req(&format!("pos(GPS_{i},pos)"), "show(HMI_w,warn)"))
            .collect();
        let forms = parameterise(&original, 2);
        let expanded: RequirementSet = forms.iter().flat_map(ReqForm::expand).collect();
        assert_eq!(expanded, original);
    }

    #[test]
    fn different_consequents_not_grouped() {
        let set: RequirementSet = [
            req("pos(GPS_2,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_3,pos)", "show(HMI_v,warn)"),
        ]
        .into_iter()
        .collect();
        let forms = parameterise(&set, 2);
        assert_eq!(forms.len(), 2);
        assert!(forms.iter().all(|f| matches!(f, ReqForm::Plain(_))));
    }

    #[test]
    fn display_forms() {
        let set: RequirementSet = [
            req("pos(GPS_2,pos)", "show(HMI_w,warn)"),
            req("pos(GPS_3,pos)", "show(HMI_w,warn)"),
        ]
        .into_iter()
        .collect();
        let forms = parameterise(&set, 2);
        assert_eq!(
            forms[0].to_string(),
            "forall x in {2,3}: auth(pos(GPS_x,pos), show(HMI_w,warn), D_w)"
        );
    }
}
