//! SoS instances: composed functional models.
//!
//! §4.2 of the paper: "the overall system of systems … consists of a
//! number of instances of the functional components. The synthesis of
//! the internal flow between the actions within the component instances
//! and the external flow between systems … builds the global system of
//! systems behaviour." An [`SosInstance`] is the resulting action graph,
//! with stakeholders and component ownership attached to each action.

use crate::action::{Action, Agent};
use fsa_graph::{iso, DiGraph, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a functional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKind {
    /// A flow required by the system's (safety) function.
    Functional,
    /// A flow introduced by a policy for non-safety reasons (e.g. the
    /// position-based forwarding policy, introduced "for performance
    /// reasons, such that bandwidth is saved"). Dependencies that exist
    /// *only* through policy flows yield availability — not safety —
    /// requirements (§4.4, requirement (4)).
    Policy,
}

/// A concrete SoS instance: a functional flow graph over actions.
#[derive(Debug, Clone)]
pub struct SosInstance {
    name: String,
    graph: DiGraph<Action>,
    stakeholders: Vec<Agent>,
    owners: Vec<String>,
    policy_edges: BTreeSet<(NodeId, NodeId)>,
}

impl SosInstance {
    /// The instance name (e.g. `"fig3: V1 warns Vw"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional flow graph.
    pub fn graph(&self) -> &DiGraph<Action> {
        &self.graph
    }

    /// Number of actions.
    pub fn action_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The action at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn action(&self, id: NodeId) -> &Action {
        self.graph.payload(id)
    }

    /// The stakeholder of the action at `id` — the agent that must be
    /// assured of requirements concerning this action.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stakeholder(&self, id: NodeId) -> &Agent {
        &self.stakeholders[id.index()]
    }

    /// The owning component instance of the action at `id` (e.g. `"V1"`,
    /// `"RSU"`); actions without an explicit owner belong to `"env"`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn owner(&self, id: NodeId) -> &str {
        &self.owners[id.index()]
    }

    /// Finds the node of an action.
    pub fn find(&self, action: &Action) -> Option<NodeId> {
        self.graph.find_payload(action)
    }

    /// The kind of the flow `from → to`; `None` if there is no such
    /// flow.
    pub fn flow_kind(&self, from: NodeId, to: NodeId) -> Option<FlowKind> {
        if !self.graph.has_edge(from, to) {
            return None;
        }
        Some(if self.policy_edges.contains(&(from, to)) {
            FlowKind::Policy
        } else {
            FlowKind::Functional
        })
    }

    /// The subgraph containing only functional (non-policy) flows, used
    /// by the safety classification.
    pub fn functional_subgraph(&self) -> DiGraph<Action> {
        let mut g = DiGraph::with_capacity(self.graph.node_count());
        for (_, a) in self.graph.nodes() {
            g.add_node(a.clone());
        }
        for (x, y) in self.graph.edges() {
            if !self.policy_edges.contains(&(x, y)) {
                g.add_edge(x, y);
            }
        }
        g
    }

    /// The *shape* graph: actions with instance indices erased, labelled
    /// with the owning component's template identity. Two instances are
    /// structurally interchangeable iff their shape graphs are
    /// isomorphic.
    pub fn shape_graph(&self) -> DiGraph<String> {
        self.graph.map(|_, a| a.shape().to_string())
    }

    /// De-duplicates instances up to isomorphism of their shape graphs,
    /// keeping the first representative of each class. §4.2:
    /// "Isomorphic combinations can be neglected."
    pub fn dedup_isomorphic(instances: Vec<SosInstance>) -> Vec<SosInstance> {
        let mut reps: Vec<SosInstance> = Vec::new();
        for inst in instances {
            let shape = inst.shape_graph();
            if !reps
                .iter()
                .any(|r| iso::are_isomorphic(&r.shape_graph(), &shape))
            {
                reps.push(inst);
            }
        }
        reps
    }
}

impl fmt::Display for SosInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SoS instance `{}`:", self.name)?;
        for (id, a) in self.graph.nodes() {
            writeln!(
                f,
                "  [{}] {} (owner {})",
                id.index(),
                a,
                self.owners[id.index()]
            )?;
        }
        for (x, y) in self.graph.edges() {
            let kind = if self.policy_edges.contains(&(x, y)) {
                " [policy]"
            } else {
                ""
            };
            writeln!(
                f,
                "  {} -> {}{kind}",
                self.graph.payload(x),
                self.graph.payload(y)
            )?;
        }
        Ok(())
    }
}

/// Builder for [`SosInstance`].
///
/// # Examples
///
/// ```
/// use fsa_core::action::Action;
/// use fsa_core::instance::SosInstanceBuilder;
///
/// let mut b = SosInstanceBuilder::new("demo");
/// let a = b.action(Action::parse("in(x)"), "P");
/// let c = b.action(Action::parse("out(y)"), "P");
/// b.flow(a, c);
/// let inst = b.build();
/// assert_eq!(inst.action_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SosInstanceBuilder {
    name: String,
    graph: DiGraph<Action>,
    stakeholders: Vec<Agent>,
    owners: Vec<String>,
    policy_edges: BTreeSet<(NodeId, NodeId)>,
}

impl SosInstanceBuilder {
    /// Starts a new instance named `name`.
    pub fn new(name: &str) -> Self {
        SosInstanceBuilder {
            name: name.to_owned(),
            graph: DiGraph::new(),
            stakeholders: Vec::new(),
            owners: Vec::new(),
            policy_edges: BTreeSet::new(),
        }
    }

    /// Adds an action with its stakeholder; the owner defaults to the
    /// stakeholder's name.
    pub fn action(&mut self, action: Action, stakeholder: &str) -> NodeId {
        self.action_owned(action, stakeholder, stakeholder)
    }

    /// Adds an action with an explicit owning component instance.
    pub fn action_owned(&mut self, action: Action, stakeholder: &str, owner: &str) -> NodeId {
        let id = self.graph.add_node(action);
        self.stakeholders.push(Agent::new(stakeholder));
        self.owners.push(owner.to_owned());
        id
    }

    /// Adds a functional flow `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either id was not created by this builder.
    pub fn flow(&mut self, from: NodeId, to: NodeId) {
        self.graph.add_edge(from, to);
        // A functional flow overrides an earlier policy marking.
        self.policy_edges.remove(&(from, to));
    }

    /// Adds a policy-motivated flow `from → to` (see
    /// [`FlowKind::Policy`]).
    ///
    /// # Panics
    ///
    /// Panics if either id was not created by this builder.
    pub fn policy_flow(&mut self, from: NodeId, to: NodeId) {
        if self.graph.add_edge(from, to) {
            self.policy_edges.insert((from, to));
        }
    }

    /// Number of actions added so far.
    pub fn action_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Finishes construction. (Loop-freedom is *not* checked here — the
    /// elicitation pipeline reports cycles with the offending actions.)
    pub fn build(self) -> SosInstance {
        SosInstance {
            name: self.name,
            graph: self.graph,
            stakeholders: self.stakeholders,
            owners: self.owners,
            policy_edges: self.policy_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> SosInstance {
        let mut b = SosInstanceBuilder::new("t");
        let x = b.action_owned(Action::parse("sense(ESP_1,sW)"), "D_1", "V1");
        let y = b.action_owned(Action::parse("send(CU_1,cam(pos))"), "D_1", "V1");
        let z = b.action_owned(Action::parse("rec(CU_2,cam(pos))"), "D_2", "V2");
        b.flow(x, y);
        b.flow(y, z);
        b.build()
    }

    #[test]
    fn build_and_query() {
        let inst = simple();
        assert_eq!(inst.name(), "t");
        assert_eq!(inst.action_count(), 3);
        let x = inst.find(&Action::parse("sense(ESP_1,sW)")).unwrap();
        assert_eq!(inst.stakeholder(x).name(), "D_1");
        assert_eq!(inst.owner(x), "V1");
        assert!(inst.find(&Action::parse("nope")).is_none());
    }

    #[test]
    fn flow_kinds() {
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action(Action::parse("a"), "P");
        let c = b.action(Action::parse("c"), "P");
        let d = b.action(Action::parse("d"), "P");
        b.flow(a, c);
        b.policy_flow(a, d);
        let inst = b.build();
        assert_eq!(inst.flow_kind(a, c), Some(FlowKind::Functional));
        assert_eq!(inst.flow_kind(a, d), Some(FlowKind::Policy));
        assert_eq!(inst.flow_kind(c, d), None);
    }

    #[test]
    fn functional_flow_overrides_policy() {
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action(Action::parse("a"), "P");
        let c = b.action(Action::parse("c"), "P");
        b.policy_flow(a, c);
        b.flow(a, c);
        let inst = b.build();
        assert_eq!(inst.flow_kind(a, c), Some(FlowKind::Functional));
    }

    #[test]
    fn functional_subgraph_drops_policy_edges() {
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action(Action::parse("a"), "P");
        let c = b.action(Action::parse("c"), "P");
        let d = b.action(Action::parse("d"), "P");
        b.flow(a, c);
        b.policy_flow(c, d);
        let inst = b.build();
        let g = inst.functional_subgraph();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(c, d));
    }

    #[test]
    fn shape_graph_erases_indices() {
        let inst = simple();
        let shape = inst.shape_graph();
        let labels: Vec<&String> = shape.nodes().map(|(_, l)| l).collect();
        assert!(labels.contains(&&"sense(ESP,sW)".to_owned()));
        assert!(labels.contains(&&"rec(CU,cam(pos))".to_owned()));
    }

    #[test]
    fn dedup_isomorphic_instances() {
        // Same structure with different instance indices → one class.
        let make = |i: &str, j: &str| {
            let mut b = SosInstanceBuilder::new("x");
            let s = b.action(Action::parse(&format!("sense(ESP_{i},sW)")), "D");
            let t = b.action(Action::parse(&format!("send(CU_{j},cam(pos))")), "D");
            b.flow(s, t);
            b.build()
        };
        let reps = SosInstance::dedup_isomorphic(vec![make("1", "1"), make("3", "7")]);
        assert_eq!(reps.len(), 1);
        // Different structure survives.
        let mut b = SosInstanceBuilder::new("y");
        b.action(Action::parse("sense(ESP_1,sW)"), "D");
        let only_node = b.build();
        let reps = SosInstance::dedup_isomorphic(vec![make("1", "1"), only_node]);
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn display_lists_actions_and_flows() {
        let inst = simple();
        let s = inst.to_string();
        assert!(s.contains("sense(ESP_1,sW)"));
        assert!(s.contains("->"));
    }
}
