//! Incremental elicitation: delta recomputation on model edits
//! (ROADMAP item 2).
//!
//! [`IncrementalElicitor`] runs the paper's §5 assisted pipeline over
//! the *fragments* of an [`EditModel`] (see [`crate::delta`]) instead
//! of its full reachability graph, memoising per-fragment analyses in
//! a bounded [`MemoStore`] and recomposing the full
//! [`AssistedReport`] by product. The recomposition is exact, not a
//! heuristic — the report is bit-identical (stats aside) to a
//! from-scratch [`crate::assisted::elicit_with_options`] run on the
//! compiled model, which the property tests in
//! `tests/incremental_props.rs` check over random edit sequences.
//!
//! Two memo namespaces are used (DESIGN.md §2.11):
//!
//! * `"frag"` — content-addressed: FNV over the fragment sub-model's
//!   canonical encoding plus the dependence method. Invalidated by
//!   edits through the fragment's element names.
//! * `"cert"` — structure-addressed: FNV over the canonical
//!   certificate of the fragment's *labeled reachability digraph*
//!   (the `fsa_graph::iso` machinery), verified by an exact
//!   isomorphism check on hit so a certificate collision degrades to
//!   a miss. Entries have no dependencies and survive invalidation:
//!   an edit-undo pair re-uses the pre-edit analysis even though the
//!   frag entry was invalidated in between.

use crate::assisted::{
    dependence_by_abstraction, requirements_from_verdicts, AssistedReport, DependenceMethod,
    PairVerdict, PipelineStats,
};
use crate::delta::{DeltaError, EditModel, ModelDelta};
use crate::memo::{MemoCounters, MemoStore};
use crate::FsaError;
use apa::{ReachGraph, ReachOptions};
use automata::temporal::PrecedenceIndex;
use automata::{ops, shuffle::shuffle_product, Homomorphism, Nfa};
use fsa_graph::iso::canonical_certificate;
use fsa_graph::{iso::find_isomorphism, DiGraph};
use fsa_obs::Obs;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A unary prefix-closed language over one symbol: either all words up
/// to a bound, or the full `a*`. This is the exact shape of any
/// fragment behaviour projected onto a single action, and the whole
/// input a cross-fragment abstraction verdict needs from each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnaryLang {
    /// `{aⁱ | i ≤ bound}`.
    Bounded(usize),
    /// `a*`.
    Unbounded,
}

/// The memoised analysis of one fragment.
#[derive(Debug, Clone)]
pub struct FragmentAnalysis {
    /// States of the fragment's reachability graph.
    pub state_count: usize,
    /// Edges of the fragment's reachability graph.
    pub edge_count: usize,
    /// The fragment's minima (sorted by name).
    pub minima: Vec<String>,
    /// The fragment's maxima (sorted by name).
    pub maxima: Vec<String>,
    /// Whether the fragment's graph has a dead state. The full model
    /// has maxima iff *every* fragment does: an edge into a dead state
    /// of the product needs all other fragments dead too.
    pub has_dead: bool,
    /// Dependence verdicts for the fragment's own (maximum, minimum)
    /// grid, keyed `(maximum, minimum)`.
    pub verdicts: BTreeMap<(String, String), (bool, Option<usize>)>,
    /// Projection of the fragment behaviour onto each single minimum or
    /// maximum action (abstraction method only) — the input for
    /// cross-fragment minimal-automaton sizes.
    pub unary: BTreeMap<String, UnaryLang>,
    /// The labeled reachability digraph (states labeled `s0`/`s`, one
    /// node per edge labeled with its automaton name): the exact-
    /// verification witness behind the `"cert"` namespace.
    pub graph: DiGraph<String>,
}

/// Encodes a reachability graph as a labeled digraph for the
/// certificate namespace: state `i` becomes a node labeled `s0` (the
/// initial state) or `s`; every edge becomes its own node labeled with
/// the firing automaton's *name*, arc'd source → edge-node → target.
///
/// A label-preserving isomorphism of two such digraphs guarantees equal
/// state/edge counts, minima, maxima, and — because the NFA over
/// automaton names is preserved — equal dependence verdicts, so a
/// memoised [`FragmentAnalysis`] transfers wholesale. Interpretations
/// are deliberately dropped: no elicitation output depends on them.
pub fn labeled_digraph(graph: &ReachGraph) -> DiGraph<String> {
    let mut g = DiGraph::with_capacity(graph.state_count() + graph.edge_count());
    let states: Vec<_> = (0..graph.state_count())
        .map(|i| {
            g.add_node(if i == 0 {
                "s0".to_owned()
            } else {
                "s".to_owned()
            })
        })
        .collect();
    for (f, l, t) in graph.edges() {
        let e = g.add_node(graph.name(l.automaton).to_owned());
        g.add_edge(states[f], e);
        g.add_edge(e, states[t]);
    }
    g
}

/// The incremental elicitation engine: an [`EditModel`] session's
/// memo store plus the engine options. See the module docs.
pub struct IncrementalElicitor {
    store: MemoStore<FragmentAnalysis>,
    /// Cross-fragment minimal-automaton sizes depend only on the two
    /// unary languages — a handful of entries, kept outside the
    /// bounded store.
    cross_cache: BTreeMap<(UnaryLang, UnaryLang), usize>,
    method: DependenceMethod,
    threads: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl IncrementalElicitor {
    /// An engine whose memo store holds at most `capacity` entries
    /// (abstraction method, sequential).
    ///
    /// # Errors
    ///
    /// [`FsaError::InvalidCapacity`] when `capacity` is 0 (a zero-entry
    /// memo store would evict on every insert — see
    /// [`MemoStore::new`]).
    pub fn new(capacity: usize) -> Result<IncrementalElicitor, FsaError> {
        Ok(IncrementalElicitor {
            store: MemoStore::new(capacity)?,
            cross_cache: BTreeMap::new(),
            method: DependenceMethod::Abstraction,
            threads: 1,
            hits: 0,
            misses: 0,
            invalidated: 0,
        })
    }

    /// Selects the dependence method (default
    /// [`DependenceMethod::Abstraction`]).
    pub fn method(mut self, method: DependenceMethod) -> IncrementalElicitor {
        self.method = method;
        self
    }

    /// Sets the worker-thread count for fragment pair grids (default 1;
    /// the report is bit-identical for every thread count).
    pub fn threads(mut self, threads: usize) -> IncrementalElicitor {
        self.threads = threads.max(1);
        self
    }

    /// Re-sets the worker-thread count on a live engine (a resident
    /// session adjusts it per request); all memoised state survives.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Engine-level memo counters: `hits`/`misses` count *fragments*
    /// served from / analysed into the store, `invalidated` the entries
    /// dropped by edits, `evictions` the capacity-bound drops.
    pub fn memo_counters(&self) -> MemoCounters {
        MemoCounters {
            hits: self.hits,
            misses: self.misses,
            evictions: self.store.counters().evictions,
            invalidated: self.invalidated,
        }
    }

    /// Applies one edit to `model`, invalidating exactly the memo
    /// entries whose dependencies the edit touches, and returns the
    /// touched element names. A failed apply changes neither the model
    /// nor the store.
    pub fn apply(
        &mut self,
        model: &mut EditModel,
        delta: &ModelDelta,
        obs: &Obs,
    ) -> Result<BTreeSet<String>, DeltaError> {
        let touched = model.apply(delta)?;
        let dropped = self.store.invalidate_touching(&touched) as u64;
        self.invalidated += dropped;
        if obs.is_enabled() {
            obs.counter_add("elicit.memo.invalidated", dropped);
        }
        Ok(touched)
    }

    /// Elicits the requirement set of `model` incrementally. The
    /// returned report is bit-identical — stats aside — to
    /// [`crate::assisted::elicit_with_options`] with this engine's
    /// method on the compiled model's reachability graph.
    pub fn elicit(&mut self, model: &EditModel, obs: &Obs) -> Result<AssistedReport, FsaError> {
        let run = obs.span("elicit.incremental");
        let evictions_before = self.store.counters().evictions;
        let mut run_hits = 0u64;
        let mut run_misses = 0u64;

        let fragments = model.fragments();
        let method_tag = match self.method {
            DependenceMethod::Abstraction => "abstraction",
            DependenceMethod::Precedence => "precedence",
        };
        let mut analyses: Vec<Arc<FragmentAnalysis>> = Vec::with_capacity(fragments.len());
        for fragment in &fragments {
            let payload = format!("{method_tag}\n{}", fragment.model.canonical_encoding());
            if let Some(hit) = self.store.lookup("frag", &payload, |_| true) {
                run_hits += 1;
                analyses.push(hit);
                continue;
            }
            let graph = fragment
                .model
                .compile()?
                .reachability(&ReachOptions::default())?;
            let labeled = labeled_digraph(&graph);
            let cert = canonical_certificate(&labeled);
            let cert_payload = format!("{method_tag}/{cert:016x}");
            let analysis = match self.store.lookup("cert", &cert_payload, |stored| {
                find_isomorphism(&stored.graph, &labeled).is_some()
            }) {
                Some(stored) => {
                    run_hits += 1;
                    stored
                }
                None => {
                    run_misses += 1;
                    let fresh =
                        Arc::new(analyze_fragment(&graph, labeled, self.method, self.threads));
                    self.store
                        .insert("cert", cert_payload, BTreeSet::new(), Arc::clone(&fresh));
                    fresh
                }
            };
            self.store.insert(
                "frag",
                payload,
                fragment.deps.clone(),
                Arc::clone(&analysis),
            );
            analyses.push(analysis);
        }
        self.hits += run_hits;
        self.misses += run_misses;

        let report = self.recompose(&analyses, model)?;

        if obs.is_enabled() {
            obs.counter_add("elicit.memo.hits", run_hits);
            obs.counter_add("elicit.memo.misses", run_misses);
            obs.counter_add(
                "elicit.memo.evictions",
                self.store.counters().evictions - evictions_before,
            );
        }
        drop(run);
        Ok(report)
    }

    /// Recomposes the full report from the fragment analyses (see the
    /// invariants on [`FragmentAnalysis`] and DESIGN.md §2.11).
    fn recompose(
        &mut self,
        analyses: &[Arc<FragmentAnalysis>],
        model: &EditModel,
    ) -> Result<AssistedReport, FsaError> {
        let too_large = |what: &str| FsaError::InvalidComponentModel {
            reason: format!("incremental recomposition: {what} overflows usize"),
        };
        let state_product: u128 = analyses.iter().map(|a| a.state_count as u128).product();
        let state_count = usize::try_from(state_product).map_err(|_| too_large("state count"))?;
        let mut edge_total: u128 = 0;
        for (i, a) in analyses.iter().enumerate() {
            let others: u128 = analyses
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, b)| b.state_count as u128)
                .product();
            edge_total += a.edge_count as u128 * others;
        }
        let edge_count = usize::try_from(edge_total).map_err(|_| too_large("edge count"))?;

        let mut frag_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, a) in analyses.iter().enumerate() {
            for name in a.minima.iter().chain(a.maxima.iter()) {
                frag_of.insert(name, i);
            }
        }
        let mut minima: Vec<String> = analyses
            .iter()
            .flat_map(|a| a.minima.iter().cloned())
            .collect();
        minima.sort();
        let mut maxima: Vec<String> = if analyses.iter().all(|a| a.has_dead) {
            analyses
                .iter()
                .flat_map(|a| a.maxima.iter().cloned())
                .collect()
        } else {
            Vec::new()
        };
        maxima.sort();

        let mut verdicts = Vec::with_capacity(maxima.len() * minima.len());
        for maximum in &maxima {
            for minimum in &minima {
                if minimum == maximum {
                    continue;
                }
                let (fmin, fmax) = (frag_of[minimum.as_str()], frag_of[maximum.as_str()]);
                let (dependent, minimal_automaton_states) = if fmin == fmax {
                    *analyses[fmax]
                        .verdicts
                        .get(&(maximum.clone(), minimum.clone()))
                        .expect("fragment grid covers its own pairs")
                } else {
                    // Cross-fragment: the other fragment can always run
                    // to the maximum with no minimum in between, so the
                    // pair is independent; under abstraction the
                    // minimal automaton of the projected shuffle is
                    // still reported, from the two unary projections.
                    let states = match self.method {
                        DependenceMethod::Abstraction => Some(self.cross_pair_states(
                            analyses[fmin].unary[minimum.as_str()],
                            analyses[fmax].unary[maximum.as_str()],
                        )),
                        DependenceMethod::Precedence => None,
                    };
                    (false, states)
                };
                verdicts.push(PairVerdict {
                    minimum: minimum.clone(),
                    maximum: maximum.clone(),
                    dependent,
                    minimal_automaton_states,
                });
            }
        }

        let requirements = requirements_from_verdicts(&verdicts, |max| model.stakeholder(max));
        let stats = PipelineStats {
            pairs_total: verdicts.len(),
            threads: self.threads,
            ..PipelineStats::default()
        };
        Ok(AssistedReport {
            state_count,
            edge_count,
            minima,
            maxima,
            verdicts,
            requirements,
            stats,
        })
    }

    /// The minimal-DFA size of the shuffle of two unary languages over
    /// distinct symbols — what the full pipeline's
    /// `minimize(determinize(erase_all_except([min, max])))` computes
    /// for a cross-fragment pair. Independent of the symbol names, so
    /// memoised per language pair.
    fn cross_pair_states(&mut self, min: UnaryLang, max: UnaryLang) -> usize {
        if let Some(&states) = self.cross_cache.get(&(min, max)) {
            return states;
        }
        let product = shuffle_product(&unary_nfa(min, "a"), &unary_nfa(max, "b"));
        let states = ops::minimize(&ops::determinize(&product)).state_count();
        self.cross_cache.insert((min, max), states);
        states
    }
}

/// Builds the NFA of a unary language over `sym`.
fn unary_nfa(lang: UnaryLang, sym: &str) -> Nfa {
    let mut b = Nfa::builder();
    let s = b.symbol(sym);
    match lang {
        UnaryLang::Bounded(bound) => {
            let states: Vec<_> = (0..=bound).map(|_| b.state(true)).collect();
            b.initial(states[0]);
            for w in states.windows(2) {
                b.edge(w[0], Some(s), w[1]);
            }
        }
        UnaryLang::Unbounded => {
            let state = b.state(true);
            b.initial(state);
            b.edge(state, Some(s), state);
        }
    }
    b.build()
}

/// Runs the §5 pipeline on one fragment graph: minima/maxima, the
/// fragment-local dependence grid (chunked over `threads` workers,
/// merged in index order — deterministic for every thread count), and
/// the per-action unary projections for cross-fragment pairs.
fn analyze_fragment(
    graph: &ReachGraph,
    labeled: DiGraph<String>,
    method: DependenceMethod,
    threads: usize,
) -> FragmentAnalysis {
    let behaviour = graph.to_nfa();
    let minima = graph.minima();
    let maxima = graph.maxima();
    let has_dead = !graph.dead_states().is_empty();

    let mut pairs: Vec<(String, String)> = Vec::with_capacity(maxima.len() * minima.len());
    for maximum in &maxima {
        for minimum in &minima {
            if minimum != maximum {
                pairs.push((maximum.clone(), minimum.clone()));
            }
        }
    }
    let precedence_index = match method {
        DependenceMethod::Precedence => Some(PrecedenceIndex::new(&behaviour)),
        DependenceMethod::Abstraction => None,
    };
    let eval = |(maximum, minimum): &(String, String)| -> (bool, Option<usize>) {
        match method {
            DependenceMethod::Abstraction => {
                let (dep, minimal) = dependence_by_abstraction(&behaviour, minimum, maximum);
                (dep, Some(minimal.state_count()))
            }
            DependenceMethod::Precedence => {
                let index = precedence_index.as_ref().expect("built for this method");
                (index.precedes_names(minimum, maximum), None)
            }
        }
    };
    let results: Vec<(bool, Option<usize>)> = if threads <= 1 || pairs.len() < 2 {
        pairs.iter().map(eval).collect()
    } else {
        let chunk = pairs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|ps| scope.spawn(|| ps.iter().map(eval).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pair worker panicked"))
                .collect()
        })
    };
    let verdicts: BTreeMap<(String, String), (bool, Option<usize>)> =
        pairs.into_iter().zip(results).collect();

    let mut unary = BTreeMap::new();
    if method == DependenceMethod::Abstraction {
        let mut actions: BTreeSet<&String> = minima.iter().collect();
        actions.extend(maxima.iter());
        for action in actions {
            let h = Homomorphism::erase_all_except([action.as_str()]);
            let minimal = ops::minimize(&ops::determinize(&h.apply(&behaviour)));
            let n = minimal.state_count();
            // The projection of a prefix-closed language onto one
            // symbol is {aⁱ | i ≤ j} or a*; probe the minimal DFA by
            // acceptance. If aⁿ is accepted the language pumps.
            let lang = if minimal.accepts(vec![action.as_str(); n]) {
                UnaryLang::Unbounded
            } else {
                let bound = (0..n)
                    .rev()
                    .find(|&i| minimal.accepts(vec![action.as_str(); i]))
                    .unwrap_or(0);
                UnaryLang::Bounded(bound)
            };
            unary.insert(action.clone(), lang);
        }
    }

    FragmentAnalysis {
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        minima,
        maxima,
        has_dead,
        verdicts,
        unary,
        graph: labeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assisted::{elicit_with_options, ElicitOptions};

    fn model_from(lines: &[&str]) -> EditModel {
        let mut m = EditModel::new();
        for line in lines {
            m.apply(&ModelDelta::parse(line).expect(line)).expect(line);
        }
        m
    }

    /// Two CAM pairs out of range of each other — two fragments.
    fn two_zone_model() -> EditModel {
        let mut lines = Vec::new();
        for (k, base) in [(0usize, 0i64), (1, 10_000)] {
            let (w, r) = (2 * k + 1, 2 * k + 2);
            lines.push(format!("add-component esp{w} sW"));
            lines.push(format!("add-component gps{w} {base}"));
            lines.push(format!("add-component bus{w}"));
            lines.push(format!("add-component hmi{w}"));
            if k == 0 {
                lines.push("add-component net".to_owned());
            }
            lines.push(format!("add-flow V{w}_sense move esp{w} bus{w}"));
            lines.push(format!("add-flow V{w}_pos move gps{w} bus{w}"));
            lines.push(format!("add-flow V{w}_send send-cam:V{w} bus{w} net"));
            lines.push(format!("add-flow V{w}_rec recv-cam:100 net bus{w}"));
            lines.push(format!("add-flow V{w}_show move-atom:warn bus{w} hmi{w}"));
            lines.push(format!("add-component esp{r}"));
            lines.push(format!("add-component gps{r} {}", base + 50));
            lines.push(format!("add-component bus{r}"));
            lines.push(format!("add-component hmi{r}"));
            lines.push(format!("add-flow V{r}_sense move esp{r} bus{r}"));
            lines.push(format!("add-flow V{r}_pos move gps{r} bus{r}"));
            lines.push(format!("add-flow V{r}_send send-cam:V{r} bus{r} net"));
            lines.push(format!("add-flow V{r}_rec recv-cam:100 net bus{r}"));
            lines.push(format!("add-flow V{r}_show move-atom:warn bus{r} hmi{r}"));
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        model_from(&refs)
    }

    fn from_scratch(model: &EditModel, method: DependenceMethod) -> AssistedReport {
        let graph = model
            .compile()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap();
        elicit_with_options(
            &graph,
            &ElicitOptions {
                method,
                threads: 1,
                prune: false,
            },
            |max| model.stakeholder(max),
        )
    }

    fn assert_report_eq(incremental: &AssistedReport, scratch: &AssistedReport) {
        assert_eq!(incremental.state_count, scratch.state_count);
        assert_eq!(incremental.edge_count, scratch.edge_count);
        assert_eq!(incremental.minima, scratch.minima);
        assert_eq!(incremental.maxima, scratch.maxima);
        assert_eq!(incremental.verdicts, scratch.verdicts);
        assert_eq!(incremental.requirements, scratch.requirements);
    }

    #[test]
    fn matches_from_scratch_on_the_multi_fragment_model() {
        let model = two_zone_model();
        for method in [DependenceMethod::Abstraction, DependenceMethod::Precedence] {
            let mut engine = IncrementalElicitor::new(64).unwrap().method(method);
            let report = engine.elicit(&model, &Obs::disabled()).unwrap();
            assert_report_eq(&report, &from_scratch(&model, method));
            assert!(report.state_count > 100, "product recomposition expected");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let model = two_zone_model();
        let baseline = IncrementalElicitor::new(64)
            .unwrap()
            .elicit(&model, &Obs::disabled())
            .unwrap();
        for threads in [2, 4, 8] {
            let report = IncrementalElicitor::new(64)
                .unwrap()
                .threads(threads)
                .elicit(&model, &Obs::disabled())
                .unwrap();
            assert_report_eq(&report, &baseline);
        }
    }

    #[test]
    fn edits_invalidate_only_the_touched_fragment() {
        let mut model = two_zone_model();
        let mut engine = IncrementalElicitor::new(64).unwrap();
        let obs = Obs::disabled();
        engine.elicit(&model, &obs).unwrap();
        let first = engine.memo_counters();
        assert_eq!((first.hits, first.misses), (0, 2));

        // Re-elicit without edits: all fragments hit.
        engine.elicit(&model, &obs).unwrap();
        let second = engine.memo_counters();
        assert_eq!((second.hits, second.misses), (2, 2));

        // Move zone 2's receiver out of range: zone 1 still hits; the
        // reshaped zone 2 (and the now-isolated V4_pos fragment) are
        // fresh analyses — the certificate namespace cannot help
        // because the fragment graphs genuinely changed shape.
        engine
            .apply(
                &mut model,
                &ModelDelta::parse("set-initial gps4 20000").unwrap(),
                &obs,
            )
            .unwrap();
        let report = engine.elicit(&model, &obs).unwrap();
        let third = engine.memo_counters();
        assert_eq!((third.hits, third.misses), (3, 4));
        assert_eq!(third.invalidated, 1);
        assert_report_eq(
            &report,
            &from_scratch(&model, DependenceMethod::Abstraction),
        );
    }

    #[test]
    fn edit_undo_reuses_the_certificate_namespace() {
        let mut model = two_zone_model();
        let mut engine = IncrementalElicitor::new(64).unwrap();
        let obs = Obs::disabled();
        engine.elicit(&model, &obs).unwrap();
        engine
            .apply(
                &mut model,
                &ModelDelta::parse("set-initial gps2 99").unwrap(),
                &obs,
            )
            .unwrap();
        engine.elicit(&model, &obs).unwrap();
        let before_undo = engine.memo_counters();
        engine
            .apply(
                &mut model,
                &ModelDelta::parse("set-initial gps2 50").unwrap(),
                &obs,
            )
            .unwrap();
        // The frag entry for zone 1 was invalidated twice, but the
        // cert entry survives: the undone model's fragment graph is
        // isomorphic to the original's, so no fresh analysis runs.
        let report = engine.elicit(&model, &obs).unwrap();
        let after = engine.memo_counters();
        assert_eq!(after.misses, before_undo.misses);
        assert!(after.hits > before_undo.hits);
        assert_report_eq(
            &report,
            &from_scratch(&model, DependenceMethod::Abstraction),
        );
    }

    #[test]
    fn cross_fragment_states_match_the_full_abstraction() {
        // The cross-fragment minimal-automaton sizes come out of the
        // unary shuffle; check them against the from-scratch pipeline
        // pair by pair on a model where every (max, min) pair of
        // interest crosses fragments.
        let model = two_zone_model();
        let report = IncrementalElicitor::new(64)
            .unwrap()
            .elicit(&model, &Obs::disabled())
            .unwrap();
        let scratch = from_scratch(&model, DependenceMethod::Abstraction);
        let crossing = report
            .verdicts
            .iter()
            .filter(|v| {
                let zone = |s: &str| s.contains('1') || s.contains('2');
                zone(&v.minimum) != zone(&v.maximum)
            })
            .count();
        assert!(crossing > 0, "model should produce cross-fragment pairs");
        assert_eq!(report.verdicts, scratch.verdicts);
    }

    #[test]
    fn unary_probing_recognises_bounds_and_pumping() {
        let model = model_from(&[
            "add-component a x",
            "add-component b",
            "add-flow f move a b",
        ]);
        let graph = model
            .compile()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap();
        let analysis = analyze_fragment(
            &graph,
            labeled_digraph(&graph),
            DependenceMethod::Abstraction,
            1,
        );
        // `f` can fire exactly once.
        assert_eq!(analysis.unary["f"], UnaryLang::Bounded(1));

        // A ping-pong pair fires forever.
        let model = model_from(&[
            "add-component a x",
            "add-component b",
            "add-flow f move a b",
            "add-flow g move b a",
        ]);
        let graph = model
            .compile()
            .unwrap()
            .reachability(&ReachOptions::default())
            .unwrap();
        let analysis = analyze_fragment(
            &graph,
            labeled_digraph(&graph),
            DependenceMethod::Abstraction,
            1,
        );
        assert_eq!(analysis.unary["f"], UnaryLang::Unbounded);
    }
}
