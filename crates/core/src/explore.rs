//! Enumeration of SoS instances from component models.
//!
//! §4.2 of the paper: "In order to model instances of the global system
//! of systems, all structurally different combinations of component
//! instances shall be considered. Isomorphic combinations can be
//! neglected." And §4.4: "the union of all these requirements for the
//! different instances poses the set of requirements for the whole
//! system."
//!
//! [`enumerate_instances`] generates every composition of component
//! instances (up to per-model multiplicity bounds) and every subset of
//! the external flows allowed by the [`ConnectionRule`]s, de-duplicates
//! the results up to isomorphism of their shape graphs, and optionally
//! keeps only weakly connected compositions. [`union_requirements`]
//! elicits and unions the requirement sets.
//!
//! # The streaming certificate engine
//!
//! The enumeration is *streaming*: every candidate composition is
//! bucketed by its [`canonical certificate`](fsa_graph::iso::canonical_certificate)
//! (a colour-refinement invariant of its shape graph) the moment it is
//! built, with exact [`fsa_graph::iso::find_isomorphism`] fallbacks
//! confined to certificate buckets. Memory is proportional to the number
//! of *equivalence classes*, never to the `2^flows` candidate space.
//! Flow subsets are additionally enumerated up to *copy-permutation
//! symmetry* — copies of one component model are interchangeable, so a
//! whole orbit of subsets is skipped once its minimal representative has
//! been instantiated. Candidate building and certificate computation run
//! on `ExploreOptions::threads` scoped worker threads; the merged result
//! is bit-identical for every thread count.

use crate::component_model::{ComponentModel, TemplateActionId};
use crate::error::FsaError;
use crate::instance::{SosInstance, SosInstanceBuilder};
use crate::manual::{elicit, ElicitationReport};
use crate::requirements::RequirementSet;
use fsa_graph::iso::{canonical_certificate, CertifiedClasses};
use fsa_graph::{DiGraph, NodeId};
use std::time::{Duration, Instant};

/// An allowed external flow: an output action of one component model
/// may feed an input action of another component instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRule {
    /// Name of the source component model.
    pub from_model: String,
    /// Template action in the source model (e.g. `send`).
    pub from_action: TemplateActionId,
    /// Name of the target component model.
    pub to_model: String,
    /// Template action in the target model (e.g. `rec`).
    pub to_action: TemplateActionId,
}

impl ConnectionRule {
    /// Creates a rule.
    pub fn new(
        from_model: &str,
        from_action: TemplateActionId,
        to_model: &str,
        to_action: TemplateActionId,
    ) -> Self {
        ConnectionRule {
            from_model: from_model.to_owned(),
            from_action,
            to_model: to_model.to_owned(),
            to_action,
        }
    }
}

/// What to do when the enumeration exceeds
/// [`ExploreOptions::max_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Abort with [`FsaError::BudgetExceeded`].
    #[default]
    Error,
    /// Stop enumerating and return the *deduped partial universe*
    /// explored so far, with [`ExploreStats::truncated`] set.
    Truncate,
}

/// Bounds for the enumeration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Keep only weakly connected compositions (the paper's instances
    /// are connected collaborations).
    pub require_connected: bool,
    /// Budget of *instantiated* candidate compositions (canonical flow
    /// subsets, pre-dedup; orbit-skipped subsets are free).
    pub max_candidates: usize,
    /// What happens when `max_candidates` is exceeded.
    pub on_budget: BudgetPolicy,
    /// Worker threads for candidate building and certificate
    /// computation. Results are bit-identical for every thread count.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            require_connected: true,
            max_candidates: 100_000,
            on_budget: BudgetPolicy::Error,
            threads: 1,
        }
    }
}

/// Per-stage statistics of one enumeration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Non-empty multiplicity vectors visited.
    pub multiplicity_vectors: usize,
    /// All flow subsets considered (including orbit-skipped ones).
    pub subsets_total: usize,
    /// Subsets skipped because a copy-permutation maps them to a
    /// smaller representative (whole isomorphism orbits pruned before
    /// instantiation).
    pub orbits_skipped: usize,
    /// Candidate compositions actually instantiated.
    pub candidates: usize,
    /// Candidates dropped by the weak-connectivity filter.
    pub disconnected_skipped: usize,
    /// Candidates whose certificate hit a non-empty bucket.
    pub certificate_hits: usize,
    /// Exact isomorphism checks run inside certificate buckets.
    pub exact_iso_fallbacks: usize,
    /// Structurally different instances (equivalence classes) found.
    pub classes: usize,
    /// `true` if the run stopped early under [`BudgetPolicy::Truncate`].
    pub truncated: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Time spent scanning flow subsets for orbit-minimal
    /// representatives.
    pub scan_time: Duration,
    /// Time spent instantiating candidates and computing certificates
    /// (parallel phase).
    pub build_time: Duration,
    /// Time spent inserting candidates into the certificate class map.
    pub dedup_time: Duration,
}

impl std::fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "exploration stats:")?;
        writeln!(f, "  multiplicity vectors  {}", self.multiplicity_vectors)?;
        writeln!(f, "  flow subsets          {}", self.subsets_total)?;
        writeln!(f, "  orbit-skipped         {}", self.orbits_skipped)?;
        writeln!(f, "  candidates            {}", self.candidates)?;
        writeln!(f, "  disconnected          {}", self.disconnected_skipped)?;
        writeln!(f, "  certificate hits      {}", self.certificate_hits)?;
        writeln!(f, "  exact iso fallbacks   {}", self.exact_iso_fallbacks)?;
        writeln!(f, "  classes               {}", self.classes)?;
        writeln!(f, "  truncated             {}", self.truncated)?;
        writeln!(f, "  threads               {}", self.threads)?;
        writeln!(f, "  subset scan           {:?}", self.scan_time)?;
        writeln!(f, "  candidate build       {:?}", self.build_time)?;
        writeln!(f, "  certificate dedup     {:?}", self.dedup_time)
    }
}

/// Result of [`enumerate_instances_with_stats`]: the structurally
/// different instances plus the engine statistics.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// One representative per isomorphism class, in discovery order.
    pub instances: Vec<SosInstance>,
    /// Per-stage statistics.
    pub stats: ExploreStats,
}

/// Enumerates the structurally different SoS instances built from
/// `models` — each given with its maximum multiplicity — under the
/// connection rules.
///
/// # Errors
///
/// * [`FsaError::InvalidComponentModel`] if a model fails validation, a
///   rule references an unknown model/action, or the flow-subset space
///   of one multiplicity vector is too large to scan.
/// * [`FsaError::BudgetExceeded`] if the enumeration exceeds
///   `options.max_candidates` under [`BudgetPolicy::Error`].
pub fn enumerate_instances(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> Result<Vec<SosInstance>, FsaError> {
    enumerate_instances_with_stats(models, rules, options).map(|e| e.instances)
}

/// Hard cap on the flow-subset space of one multiplicity vector: beyond
/// this even *scanning* the subsets is infeasible.
const SUBSET_SCAN_CAP: usize = 1 << 26;

/// Copy-permutation groups larger than this are not used for orbit
/// pruning (correctness is unaffected — the certificate dedup still
/// collapses the orbits, just later).
const ORBIT_GROUP_CAP: usize = 720;

/// Like [`enumerate_instances`], but also returns [`ExploreStats`].
///
/// # Errors
///
/// See [`enumerate_instances`].
pub fn enumerate_instances_with_stats(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> Result<Exploration, FsaError> {
    for (m, _) in models {
        m.validate()?;
    }
    let resolved = resolve_rules(models, rules)?;

    let threads = options.threads.max(1);
    let mut stats = ExploreStats {
        threads,
        ..ExploreStats::default()
    };
    let mut classes: CertifiedClasses<String> = CertifiedClasses::new();
    let mut instances: Vec<SosInstance> = Vec::new();

    // Enumerate multiplicities: the cartesian product of 0..=max per
    // model, skipping the empty composition.
    let mut counts = vec![0usize; models.len()];
    'vectors: loop {
        if counts.iter().sum::<usize>() > 0 {
            stats.multiplicity_vectors += 1;
            let done = explore_vector(
                models,
                &resolved,
                &counts,
                options,
                threads,
                &mut stats,
                &mut classes,
                &mut instances,
            )?;
            if done {
                // Budget truncation: return the deduped partial
                // universe explored so far.
                break 'vectors;
            }
        }
        let mut i = 0;
        loop {
            if i == models.len() {
                break 'vectors;
            }
            counts[i] += 1;
            if counts[i] <= models[i].1 {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
    }

    stats.classes = instances.len();
    stats.certificate_hits = classes.certificate_hits();
    stats.exact_iso_fallbacks = classes.exact_fallbacks();
    Ok(Exploration { instances, stats })
}

/// A connection rule with its model positions resolved.
struct ResolvedRule {
    from_idx: usize,
    from_action: TemplateActionId,
    to_idx: usize,
    to_action: TemplateActionId,
}

/// Validates the rules against the models and resolves model positions.
fn resolve_rules(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
) -> Result<Vec<ResolvedRule>, FsaError> {
    rules
        .iter()
        .map(|rule| {
            let resolve = |name: &str, action: TemplateActionId, side: &str| {
                let idx = models
                    .iter()
                    .position(|(m, _)| m.name() == name)
                    .ok_or_else(|| FsaError::InvalidComponentModel {
                        reason: format!("connection rule references unknown {side} model `{name}`"),
                    })?;
                if action >= models[idx].0.actions().len() {
                    return Err(FsaError::InvalidComponentModel {
                        reason: format!(
                            "connection rule references {side} action {action} out of range for `{name}`"
                        ),
                    });
                }
                Ok(idx)
            };
            Ok(ResolvedRule {
                from_idx: resolve(&rule.from_model, rule.from_action, "source")?,
                from_action: rule.from_action,
                to_idx: resolve(&rule.to_model, rule.to_action, "target")?,
                to_action: rule.to_action,
            })
        })
        .collect()
}

/// One candidate external flow of a multiplicity vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FlowCandidate {
    rule: usize,
    from_copy: usize,
    to_copy: usize,
}

/// Explores every flow subset of one multiplicity vector, streaming the
/// candidates into the certificate class map. Returns `true` if the
/// enumeration was truncated (caller stops).
#[allow(clippy::too_many_arguments)]
fn explore_vector(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    options: &ExploreOptions,
    threads: usize,
    stats: &mut ExploreStats,
    classes: &mut CertifiedClasses<String>,
    instances: &mut Vec<SosInstance>,
) -> Result<bool, FsaError> {
    // Candidate external flows: for each rule, each ordered pair of
    // distinct instances of the involved models.
    let mut flows: Vec<FlowCandidate> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        for fc in 0..counts[rule.from_idx] {
            for tc in 0..counts[rule.to_idx] {
                if rule.from_idx == rule.to_idx && fc == tc {
                    continue; // no self-connection
                }
                flows.push(FlowCandidate {
                    rule: ri,
                    from_copy: fc,
                    to_copy: tc,
                });
            }
        }
    }
    let subsets: usize = 1usize
        .checked_shl(flows.len() as u32)
        .filter(|&s| s <= SUBSET_SCAN_CAP)
        .ok_or_else(|| FsaError::InvalidComponentModel {
            reason: "too many candidate external flows to enumerate".to_owned(),
        })?;
    stats.subsets_total += subsets;

    // The copy-permutation symmetry group, as permutations of the flow
    // candidates (identity dropped, duplicates collapsed).
    let flow_perms = flow_permutations(rules, counts, &flows);
    let group_len = flow_perms.len() + 1;

    // Orbit-minimal flow subsets. Every canonical subset counts against
    // the candidate budget; a provably exceeded budget short-circuits
    // the scan entirely.
    let remaining = options.max_candidates.saturating_sub(stats.candidates);
    let mut truncated = false;
    let t = Instant::now();
    let mut canonical: Vec<usize> = if subsets.div_ceil(group_len) > remaining {
        match options.on_budget {
            BudgetPolicy::Error => {
                return Err(FsaError::BudgetExceeded {
                    limit: options.max_candidates,
                })
            }
            BudgetPolicy::Truncate => {
                // Early-stop sequential scan: collect only as many
                // canonical subsets as the budget still allows.
                truncated = true;
                let mut picked = Vec::with_capacity(remaining);
                for mask in 0..subsets {
                    if is_orbit_minimal(mask, &flow_perms) {
                        if picked.len() == remaining {
                            break;
                        }
                        picked.push(mask);
                    } else {
                        stats.orbits_skipped += 1;
                    }
                }
                picked
            }
        }
    } else if threads > 1 && subsets >= 4096 {
        // Chunked parallel scan, merged in ascending mask order.
        let chunk = subsets.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(subsets)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let per_range: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let flow_perms = &flow_perms;
                    scope.spawn(move || {
                        (lo..hi)
                            .filter(|&mask| is_orbit_minimal(mask, flow_perms))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("orbit scan worker panicked"))
                .collect()
        });
        per_range.into_iter().flatten().collect()
    } else {
        (0..subsets)
            .filter(|&mask| is_orbit_minimal(mask, &flow_perms))
            .collect()
    };
    if !truncated {
        stats.orbits_skipped += subsets - canonical.len();
        if canonical.len() > remaining {
            match options.on_budget {
                BudgetPolicy::Error => {
                    return Err(FsaError::BudgetExceeded {
                        limit: options.max_candidates,
                    })
                }
                BudgetPolicy::Truncate => {
                    truncated = true;
                    canonical.truncate(remaining);
                }
            }
        }
    }
    stats.scan_time += t.elapsed();
    stats.candidates += canonical.len();

    // Instantiate the canonical subsets (chunked parallel) and compute
    // their shape-graph certificates; merge in mask order so the stream
    // into the class map is bit-identical for every thread count.
    let t = Instant::now();
    type Built = (SosInstance, DiGraph<String>, u64);
    let build = |mask: usize| -> Result<Option<Built>, FsaError> {
        let instance = build_composition(models, rules, counts, &flows, mask)?;
        if options.require_connected && !is_weakly_connected(&instance) {
            return Ok(None);
        }
        let shape = instance.shape_graph();
        let certificate = canonical_certificate(&shape);
        Ok(Some((instance, shape, certificate)))
    };
    let built: Vec<Option<Built>> = if threads > 1 && canonical.len() >= 2 {
        let chunk = canonical.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = canonical
                .chunks(chunk)
                .map(|masks| {
                    let build = &build;
                    scope.spawn(move || {
                        masks
                            .iter()
                            .map(|&m| build(m))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(canonical.len());
            for h in handles {
                merged.extend(h.join().expect("candidate build worker panicked")?);
            }
            Ok::<_, FsaError>(merged)
        })?
    } else {
        canonical
            .iter()
            .map(|&m| build(m))
            .collect::<Result<Vec<_>, _>>()?
    };
    stats.build_time += t.elapsed();

    // Stream into the certificate class map.
    let t = Instant::now();
    for item in built {
        let Some((instance, shape, certificate)) = item else {
            stats.disconnected_skipped += 1;
            continue;
        };
        if classes
            .insert_with_certificate(shape, certificate)
            .is_some()
        {
            instances.push(instance);
        }
    }
    stats.dedup_time += t.elapsed();
    stats.truncated |= truncated;
    Ok(truncated)
}

/// The copy-permutation group of one multiplicity vector, induced on the
/// flow candidates: permuting the interchangeable copies of a model maps
/// every flow subset to an isomorphic composition, so only the
/// orbit-minimal subsets need instantiation. Returns the non-identity
/// induced permutations (empty when the group exceeds
/// [`ORBIT_GROUP_CAP`] — pruning is then skipped, not the candidates).
fn flow_permutations(
    rules: &[ResolvedRule],
    counts: &[usize],
    flows: &[FlowCandidate],
) -> Vec<Vec<usize>> {
    let group_size = counts
        .iter()
        .try_fold(1usize, |acc, &c| {
            (1..=c)
                .try_fold(acc, |a, k| a.checked_mul(k))
                .filter(|&a| a <= ORBIT_GROUP_CAP)
        })
        .unwrap_or(usize::MAX);
    if flows.is_empty() || group_size > ORBIT_GROUP_CAP {
        return Vec::new();
    }

    let flow_index: std::collections::HashMap<FlowCandidate, usize> =
        flows.iter().enumerate().map(|(i, &f)| (f, i)).collect();

    // All copy permutations per model (cartesian product across models),
    // walked via an odometer over per-model permutation lists.
    let per_model: Vec<Vec<Vec<usize>>> = counts.iter().map(|&c| permutations(c)).collect();
    let mut choice = vec![0usize; per_model.len()];
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut result: Vec<Vec<usize>> = Vec::new();
    loop {
        let perm: Vec<usize> = flows
            .iter()
            .map(|f| {
                let rule = &rules[f.rule];
                let mapped = FlowCandidate {
                    rule: f.rule,
                    from_copy: per_model[rule.from_idx][choice[rule.from_idx]][f.from_copy],
                    to_copy: per_model[rule.to_idx][choice[rule.to_idx]][f.to_copy],
                };
                flow_index[&mapped]
            })
            .collect();
        let identity = perm.iter().enumerate().all(|(i, &p)| i == p);
        if !identity && seen.insert(perm.clone()) {
            result.push(perm);
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == per_model.len() {
                return result;
            }
            choice[i] += 1;
            if choice[i] < per_model[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// All permutations of `0..n` (n! entries, `n` capped by the caller).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(current: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        heap_permute(current, k - 1, out);
        if k.is_multiple_of(2) {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

/// Returns `true` if `mask` is the smallest element of its orbit under
/// the induced flow permutations (early exit on the first witness).
fn is_orbit_minimal(mask: usize, flow_perms: &[Vec<usize>]) -> bool {
    for perm in flow_perms {
        let mut image = 0usize;
        let mut bits = mask;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            image |= 1 << perm[k];
        }
        if image < mask {
            return false;
        }
    }
    true
}

/// Builds the composition of one multiplicity vector and one flow
/// subset.
fn build_composition(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    flows: &[FlowCandidate],
    mask: usize,
) -> Result<SosInstance, FsaError> {
    let name = models
        .iter()
        .zip(counts)
        .filter(|(_, c)| **c > 0)
        .map(|((m, _), c)| format!("{}x{}", c, m.name()))
        .collect::<Vec<_>>()
        .join("+");
    let mut builder = SosInstanceBuilder::new(&name);
    // Instantiate components with global per-model indices 1, 2, …
    let mut handles: Vec<Vec<crate::component_model::ComponentInstance>> = Vec::new();
    for (mi, (model, _)) in models.iter().enumerate() {
        let mut copies = Vec::new();
        for c in 0..counts[mi] {
            let index = if counts[mi] == 1 && model.actions().iter().all(|a| a.indices().is_empty())
            {
                String::new()
            } else {
                (c + 1).to_string()
            };
            copies.push(model.instantiate(&index, &mut builder)?);
        }
        handles.push(copies);
    }
    for (k, cand) in flows.iter().enumerate() {
        if mask & (1 << k) == 0 {
            continue;
        }
        let rule = &rules[cand.rule];
        let from = handles[rule.from_idx][cand.from_copy].node(rule.from_action);
        let to = handles[rule.to_idx][cand.to_copy].node(rule.to_action);
        builder.flow(from, to);
    }
    Ok(builder.build())
}

/// Weak connectivity of the action graph (single component, ignoring
/// edge direction). The empty graph counts as connected.
fn is_weakly_connected(instance: &SosInstance) -> bool {
    let g = instance.graph();
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId::new(0)];
    seen[0] = true;
    let mut visited = 1;
    while let Some(v) = stack.pop() {
        for u in g.successors(v).chain(g.predecessors(v)) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                visited += 1;
                stack.push(u);
            }
        }
    }
    visited == n
}

/// Elicits every instance and unions the requirement sets (§4.4).
///
/// # Errors
///
/// Propagates elicitation errors (e.g. a cyclic composition produced by
/// bidirectional connection rules).
pub fn union_requirements(instances: &[SosInstance]) -> Result<RequirementSet, FsaError> {
    union_requirements_threaded(instances, 1)
}

/// Like [`union_requirements`], with the elicitation fanned out over
/// `threads` scoped worker threads (chunked, merged in instance order —
/// bit-identical to the sequential run).
///
/// # Errors
///
/// Propagates elicitation errors.
pub fn union_requirements_threaded(
    instances: &[SosInstance],
    threads: usize,
) -> Result<RequirementSet, FsaError> {
    union_with(instances, threads, &elicit, false).map(|(set, _)| set)
}

/// Like [`union_requirements`], but skips instances whose composition is
/// cyclic (bidirectional rules can produce `A sends to B sends to A`
/// loops, which the paper's loop-freedom assumption excludes). Returns
/// the union together with the number of skipped instances.
///
/// # Errors
///
/// *Only* [`FsaError::CircularDependency`] counts as a loop-skip; every
/// other elicitation error is a real failure and propagates.
pub fn union_requirements_loop_free(
    instances: &[SosInstance],
) -> Result<(RequirementSet, usize), FsaError> {
    union_with(instances, 1, &elicit, true)
}

/// Like [`union_requirements_loop_free`], fanned out over `threads`
/// scoped worker threads (bit-identical to the sequential run).
///
/// # Errors
///
/// See [`union_requirements_loop_free`].
pub fn union_requirements_loop_free_threaded(
    instances: &[SosInstance],
    threads: usize,
) -> Result<(RequirementSet, usize), FsaError> {
    union_with(instances, threads, &elicit, true)
}

/// Chunked fork-join union of per-instance elicitations. `skip_cycles`
/// turns [`FsaError::CircularDependency`] into a skip count; all other
/// errors propagate, first-in-instance-order.
fn union_with<F>(
    instances: &[SosInstance],
    threads: usize,
    elicit_fn: &F,
    skip_cycles: bool,
) -> Result<(RequirementSet, usize), FsaError>
where
    F: Fn(&SosInstance) -> Result<ElicitationReport, FsaError> + Sync,
{
    let worker = |chunk: &[SosInstance]| -> Result<(RequirementSet, usize), FsaError> {
        let mut union = RequirementSet::new();
        let mut skipped = 0usize;
        for inst in chunk {
            match elicit_fn(inst) {
                Ok(report) => union = union.union(&report.requirement_set()),
                Err(FsaError::CircularDependency { .. }) if skip_cycles => skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((union, skipped))
    };
    let threads = threads.max(1);
    if threads == 1 || instances.len() < 2 {
        return worker(instances);
    }
    let chunk = instances.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .chunks(chunk)
            .map(|c| scope.spawn(move || worker(c)))
            .collect();
        let mut union = RequirementSet::new();
        let mut skipped = 0usize;
        for h in handles {
            let (u, s) = h.join().expect("elicitation worker panicked")?;
            union = union.union(&u);
            skipped += s;
        }
        Ok((union, skipped))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sensor model (one output) and a sink model (input → display).
    fn sensor_and_display() -> Vec<(ComponentModel, usize)> {
        let mut sensor = ComponentModel::new("S", "Op");
        sensor.action("emit(SNS_i,val)");
        let mut display = ComponentModel::new("D", "User_i");
        let rec = display.action("rec(DSP_i,val)");
        let show = display.action("show(DSP_i,val)");
        display.flow(rec, show);
        vec![(sensor, 1), (display, 2)]
    }

    fn rules() -> Vec<ConnectionRule> {
        vec![ConnectionRule::new("S", 0, "D", 0)]
    }

    #[test]
    fn enumerates_and_dedups() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        // Structurally distinct connected compositions:
        //   S alone, D alone, S→D, (2 D: disconnected unless... skipped),
        //   S + 2D with S→both, S→one+other-D (disconnected → skipped).
        let names: Vec<&str> = instances.iter().map(SosInstance::name).collect();
        assert!(!names.is_empty());
        // No two remaining instances are isomorphic.
        for (i, a) in instances.iter().enumerate() {
            for b in instances.iter().skip(i + 1) {
                assert!(
                    !fsa_graph::iso::are_isomorphic(&a.shape_graph(), &b.shape_graph()),
                    "{} ~ {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn connected_filter_drops_disconnected() {
        let all = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let connected =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        assert!(connected.len() < all.len());
    }

    #[test]
    fn union_covers_each_instance() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        let union = union_requirements(&instances).unwrap();
        for inst in &instances {
            let set = elicit(inst).unwrap().requirement_set();
            assert!(set.is_subset(&union), "instance {}", inst.name());
        }
        // The connected S→D composition contributes auth(emit, show, User).
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "emit" && r.consequent.name() == "show"));
    }

    #[test]
    fn threaded_union_is_bit_identical() {
        let instances = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let seq = union_requirements(&instances).unwrap();
        for threads in [2usize, 4, 8] {
            assert_eq!(
                seq,
                union_requirements_threaded(&instances, threads).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn unknown_rule_model_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 0, "GHOST", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn out_of_range_rule_action_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 5, "D", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn candidate_budget_enforced() {
        // Regression: exceeding the budget used to be misreported as
        // `InvalidComponentModel`; it is a dedicated error now.
        let err = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: true,
                max_candidates: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, FsaError::BudgetExceeded { limit: 2 });
    }

    #[test]
    fn budget_truncation_returns_partial_deduped_universe() {
        // Regression: exceeding `max_candidates` mid-enumeration used to
        // throw away *all* work; `BudgetPolicy::Truncate` keeps the
        // deduped partial universe and flags the truncation.
        let full = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!full.stats.truncated);
        let partial = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                max_candidates: 2,
                on_budget: BudgetPolicy::Truncate,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(partial.stats.truncated);
        assert!(partial.stats.candidates <= 2);
        assert!(partial.instances.len() < full.instances.len());
        // The partial universe is still isomorphism-reduced.
        for (i, a) in partial.instances.iter().enumerate() {
            for b in partial.instances.iter().skip(i + 1) {
                assert!(!fsa_graph::iso::are_isomorphic(
                    &a.shape_graph(),
                    &b.shape_graph()
                ));
            }
        }
    }

    #[test]
    fn orbit_pruning_skips_copy_permutations() {
        // With two interchangeable displays, the subsets {S→D1} and
        // {S→D2} are one orbit: exactly one is instantiated.
        let e = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(e.stats.orbits_skipped > 0, "{:?}", e.stats);
        assert!(e.stats.candidates < e.stats.subsets_total);
        assert_eq!(e.stats.classes, e.instances.len());
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        let seq = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let par = enumerate_instances_with_stats(
                &sensor_and_display(),
                &rules(),
                &ExploreOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                seq.instances.len(),
                par.instances.len(),
                "threads {threads}"
            );
            for (a, b) in seq.instances.iter().zip(&par.instances) {
                assert_eq!(a.name(), b.name());
                assert_eq!(a.graph(), b.graph());
            }
            assert_eq!(seq.stats.candidates, par.stats.candidates);
            assert_eq!(seq.stats.orbits_skipped, par.stats.orbits_skipped);
            assert_eq!(seq.stats.classes, par.stats.classes);
        }
    }

    #[test]
    fn loop_free_union_skips_cycles() {
        // Two peers that can send to each other: the both-directions
        // composition is cyclic only if flows form a loop through the
        // same actions — rec → send internal flow creates one.
        let mut peer = ComponentModel::new("P", "U_i");
        let rec = peer.action("rec(P_i,msg)");
        let send = peer.action("send(P_i,msg)");
        peer.flow(rec, send);
        let rules = vec![ConnectionRule::new("P", 1, "P", 0)];
        let instances = enumerate_instances(
            &[(peer, 2)],
            &rules,
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (union, skipped) = union_requirements_loop_free(&instances).unwrap();
        assert!(skipped > 0, "the mutual-send composition is cyclic");
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "rec" && r.consequent.name() == "send"));
    }

    #[test]
    fn loop_free_union_propagates_non_cycle_errors() {
        // Regression: `union_requirements_loop_free` used to count
        // *every* error as a loop-skip, silently mislabelling real
        // elicitation failures as cycle exclusions. A deliberately
        // invalid instance (here: an elicitor that rejects it with a
        // non-circular error) must propagate.
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        let invalid_name = instances[0].name().to_owned();
        let failing = |inst: &SosInstance| -> Result<ElicitationReport, FsaError> {
            if inst.name() == invalid_name {
                Err(FsaError::UnknownAction("ghost(X,val)".to_owned()))
            } else {
                elicit(inst)
            }
        };
        for threads in [1usize, 4] {
            let err = union_with(&instances, threads, &failing, true).unwrap_err();
            assert_eq!(
                err,
                FsaError::UnknownAction("ghost(X,val)".to_owned()),
                "threads {threads}"
            );
        }
        // Circular dependencies are still skipped, not propagated.
        let cyclic = |_: &SosInstance| -> Result<ElicitationReport, FsaError> {
            Err(FsaError::CircularDependency {
                first: crate::action::Action::parse("a"),
                second: crate::action::Action::parse("b"),
            })
        };
        let (union, skipped) = union_with(&instances, 1, &cyclic, true).unwrap();
        assert!(union.is_empty());
        assert_eq!(skipped, instances.len());
    }

    #[test]
    fn stats_render_mentions_key_counters() {
        let e = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let rendered = e.stats.to_string();
        for needle in ["candidates", "classes", "orbit-skipped", "certificate hits"] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }
}
