//! Enumeration of SoS instances from component models.
//!
//! §4.2 of the paper: "In order to model instances of the global system
//! of systems, all structurally different combinations of component
//! instances shall be considered. Isomorphic combinations can be
//! neglected." And §4.4: "the union of all these requirements for the
//! different instances poses the set of requirements for the whole
//! system."
//!
//! [`enumerate_instances`] generates every composition of component
//! instances (up to per-model multiplicity bounds) and every subset of
//! the external flows allowed by the [`ConnectionRule`]s, de-duplicates
//! the results up to isomorphism of their shape graphs, and optionally
//! keeps only weakly connected compositions. [`union_requirements`]
//! elicits and unions the requirement sets.
//!
//! # The streaming certificate engine
//!
//! The enumeration is *streaming*: every candidate composition is
//! bucketed by its [`canonical certificate`](fsa_graph::iso::canonical_certificate)
//! (a colour-refinement invariant of its shape graph) the moment it is
//! built, with exact [`fsa_graph::iso::find_isomorphism`] fallbacks
//! confined to certificate buckets. Memory is proportional to the number
//! of *equivalence classes*, never to the `2^flows` candidate space.
//! Flow subsets are additionally enumerated up to *copy-permutation
//! symmetry* — copies of one component model are interchangeable, so a
//! whole orbit of subsets is skipped once its minimal representative has
//! been instantiated. Candidate building and certificate computation run
//! on `ExploreOptions::threads` scoped worker threads; the merged result
//! is bit-identical for every thread count.
//!
//! # The supervised engine
//!
//! [`enumerate_instances_supervised`] runs the same enumeration under
//! the [`fsa_exec`] execution layer: candidate builds are
//! panic-isolated and retried per [`fsa_exec::RetryPolicy`] (exhausted
//! chunks are *quarantined*, not fatal), cooperative cancellation
//! ([`fsa_exec::CancelToken`] — deadlines included) degrades the run to
//! a partial result with explicit coverage accounting
//! ([`ExploreStats::vectors_completed`] / [`ExploreStats::vectors_total`]),
//! and [`ExecOptions::checkpoint`] / [`ExecOptions::resume`] persist and
//! restore progress through the versioned, checksummed snapshot format
//! of [`crate::checkpoint`]. A resumed run is bit-identical to an
//! uninterrupted one — for every interruption point and every thread
//! count. When nothing panics, nothing is cancelled and nothing is
//! resumed, the supervised engine's instances are bit-identical to
//! [`enumerate_instances_with_stats`].

use crate::certcache::{CertCache, CertSection};
use crate::checkpoint::{config_fingerprint, CheckpointCounters, ExploreCheckpoint};
use crate::component_model::{ComponentModel, TemplateActionId};
use crate::error::FsaError;
use crate::instance::{SosInstance, SosInstanceBuilder};
use crate::manual::{elicit, ElicitationReport};
use crate::requirements::RequirementSet;
use fsa_exec::{CancelToken, ChunkFailure, Supervisor};
use fsa_graph::iso::{canonical_certificate, Certificate, CertifiedClasses};
use fsa_graph::{DiGraph, NodeId};
use fsa_obs::Obs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// An allowed external flow: an output action of one component model
/// may feed an input action of another component instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRule {
    /// Name of the source component model.
    pub from_model: String,
    /// Template action in the source model (e.g. `send`).
    pub from_action: TemplateActionId,
    /// Name of the target component model.
    pub to_model: String,
    /// Template action in the target model (e.g. `rec`).
    pub to_action: TemplateActionId,
}

impl ConnectionRule {
    /// Creates a rule.
    pub fn new(
        from_model: &str,
        from_action: TemplateActionId,
        to_model: &str,
        to_action: TemplateActionId,
    ) -> Self {
        ConnectionRule {
            from_model: from_model.to_owned(),
            from_action,
            to_model: to_model.to_owned(),
            to_action,
        }
    }
}

/// What to do when the enumeration exceeds
/// [`ExploreOptions::max_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Abort with [`FsaError::BudgetExceeded`].
    #[default]
    Error,
    /// Stop enumerating and return the *deduped partial universe*
    /// explored so far, with [`ExploreStats::truncated`] set.
    Truncate,
}

/// A contiguous, half-open range `start..end` of multiplicity-vector
/// ordinals (the canonical odometer order of [`crate::checkpoint`]),
/// restricting the supervised engine to one *shard* of the
/// `(ordinal, mask)` lattice. Every flow-subset mask belongs to exactly
/// one ordinal, so contiguous ordinal ranges partition the whole
/// lattice: a family of ranges produced by [`ShardRange::partition`]
/// covers every pair exactly once, with no gap and no overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardRange {
    /// First vector ordinal of the shard (inclusive).
    pub start: u64,
    /// One past the last vector ordinal of the shard (exclusive).
    pub end: u64,
}

impl ShardRange {
    /// Creates the range `start..end`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        ShardRange { start, end }
    }

    /// Number of vector ordinals in the shard (0 when malformed).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` when the shard covers no ordinal.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Partitions the ordinal space `0..total` into `shards` contiguous
    /// ranges whose lengths differ by at most one, in ascending order.
    /// Covers every ordinal exactly once; when `shards > total` the
    /// trailing ranges are empty (still no gap, no overlap).
    #[must_use]
    pub fn partition(total: u64, shards: usize) -> Vec<ShardRange> {
        let n = shards.max(1) as u64;
        let base = total / n;
        let rem = total % n;
        let mut ranges = Vec::with_capacity(shards.max(1));
        let mut start = 0u64;
        for i in 0..n {
            let len = base + u64::from(i < rem);
            ranges.push(ShardRange::new(start, start + len));
            start += len;
        }
        ranges
    }
}

impl std::fmt::Display for ShardRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Bounds for the enumeration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Keep only weakly connected compositions (the paper's instances
    /// are connected collaborations).
    pub require_connected: bool,
    /// Budget of *instantiated* candidate compositions (canonical flow
    /// subsets, pre-dedup; orbit-skipped subsets are free).
    pub max_candidates: usize,
    /// What happens when `max_candidates` is exceeded.
    pub on_budget: BudgetPolicy,
    /// Worker threads for candidate building and certificate
    /// computation. Results are bit-identical for every thread count.
    pub threads: usize,
    /// Observability handle used by the **legacy** engine
    /// ([`enumerate_instances_with_stats`]); the supervised engine uses
    /// the handle of its [`Supervisor`] (`exec.supervisor.obs`). The
    /// default ([`Obs::disabled`]) records nothing; enabling it never
    /// changes the enumerated instances or the stats values.
    pub obs: Obs,
    /// Restrict the **supervised** engine to one shard of the
    /// multiplicity space (`None` = the whole universe). Sharded runs
    /// enumerate exactly the `(ordinal, mask)` pairs whose ordinal lies
    /// in the range; per-shard `accepted` logs merged in canonical
    /// order by [`merge_accepted`] reproduce the unsharded result
    /// bit-identically. The legacy engine and
    /// [`BudgetPolicy::Truncate`] reject sharded options
    /// ([`FsaError::InvalidShard`]).
    pub shard: Option<ShardRange>,
    /// Cross-run certificate cache file (see [`crate::certcache`]).
    /// When set, candidates landing in buckets whose recorded census
    /// is conclusive — exactly one class, or every candidate its own
    /// class — bypass the exact-isomorphism fallback, and a completed
    /// run saves its own bucket census back (replacing only its
    /// configuration's section). Results are bit-identical with or
    /// without the cache; only [`ExploreStats::exact_iso_fallbacks`]
    /// drops. Excluded from the configuration fingerprint (the cache
    /// path never changes the enumeration). Cannot be combined with
    /// checkpoint/resume ([`FsaError::CertCache`]): the resume replay
    /// is cacheless and its fallback counters would not re-base.
    pub cert_cache: Option<PathBuf>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            require_connected: true,
            max_candidates: 100_000,
            on_budget: BudgetPolicy::Error,
            threads: 1,
            obs: Obs::disabled(),
            shard: None,
            cert_cache: None,
        }
    }
}

/// Checkpointing schedule of a supervised run.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Snapshot path; written atomically (tmp file + rename), so a
    /// `SIGKILL` mid-write leaves the previous checkpoint intact.
    pub path: PathBuf,
    /// Write a checkpoint once at least this many candidates have been
    /// built since the last one (aligned to batch boundaries; `1`
    /// checkpoints after every batch).
    pub every: usize,
}

/// Execution policy of [`enumerate_instances_supervised`]: supervision
/// (retry/backoff, cancellation, chaos hooks), batch granularity, and
/// checkpoint/resume.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Panic isolation, retry/backoff and cancellation policy. The
    /// supervisor's [`CancelToken`] is the run's cancellation point —
    /// install a deadline or manual token here.
    pub supervisor: Supervisor,
    /// Candidate builds per supervised batch — the granularity of
    /// cancellation checks and checkpoint writes.
    pub batch: usize,
    /// Write checkpoints while running.
    pub checkpoint: Option<CheckpointSpec>,
    /// Load this checkpoint before enumerating and continue from its
    /// frontier. The checkpoint's configuration fingerprint must match.
    pub resume: Option<PathBuf>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            supervisor: Supervisor::new(),
            batch: 256,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Per-stage statistics of one enumeration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Non-empty multiplicity vectors visited.
    pub multiplicity_vectors: usize,
    /// All flow subsets considered (including orbit-skipped ones).
    pub subsets_total: usize,
    /// Subsets skipped because a copy-permutation maps them to a
    /// smaller representative (whole isomorphism orbits pruned before
    /// instantiation).
    pub orbits_skipped: usize,
    /// Candidate compositions actually instantiated.
    pub candidates: usize,
    /// Candidates dropped by the weak-connectivity filter.
    pub disconnected_skipped: usize,
    /// Candidates whose certificate hit a non-empty bucket.
    pub certificate_hits: usize,
    /// Exact isomorphism checks run inside certificate buckets.
    pub exact_iso_fallbacks: usize,
    /// Certificate-cache entries loaded for this configuration's
    /// section (`0` on a cacheless or cold run).
    pub cert_cache_entries: usize,
    /// Duplicates discharged on the certificate cache's word, skipping
    /// the exact isomorphism fallback.
    pub cert_cache_skips: usize,
    /// Structurally different instances (equivalence classes) found.
    pub classes: usize,
    /// `true` if the run stopped early under [`BudgetPolicy::Truncate`].
    pub truncated: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Non-empty multiplicity vectors in the whole enumeration space
    /// (supervised engine only; `0` in the legacy engine). Together
    /// with [`ExploreStats::vectors_completed`] this is the coverage
    /// accounting of a partial (cancelled) run.
    pub vectors_total: usize,
    /// Multiplicity vectors fully processed (supervised engine only).
    pub vectors_completed: usize,
    /// Candidate compositions actually built. Differs from
    /// [`ExploreStats::candidates`] on a cancelled run: `candidates`
    /// counts canonical masks the moment a vector is scanned, while
    /// pending masks of an interrupted vector are not yet built.
    pub candidates_built: usize,
    /// Build chunks quarantined after exhausting their panic retries
    /// (supervised engine only). A non-zero value means the coverage is
    /// incomplete even if nothing was cancelled.
    pub failures: usize,
    /// Panicking chunk attempts that were retried (supervised engine).
    pub retries: u64,
    /// `true` if the run stopped early at a cancellation point
    /// (deadline expiry or manual cancel) and the result is a partial
    /// universe.
    pub cancelled: bool,
    /// Checkpoints written during the run.
    pub checkpoints_written: usize,
    /// `true` if the run was resumed from a checkpoint.
    pub resumed: bool,
    /// Time spent scanning flow subsets for orbit-minimal
    /// representatives.
    pub scan_time: Duration,
    /// Time spent instantiating candidates and computing certificates
    /// (parallel phase).
    pub build_time: Duration,
    /// Time spent inserting candidates into the certificate class map.
    pub dedup_time: Duration,
}

impl std::fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "exploration stats:")?;
        writeln!(f, "  multiplicity vectors  {}", self.multiplicity_vectors)?;
        writeln!(f, "  flow subsets          {}", self.subsets_total)?;
        writeln!(f, "  orbit-skipped         {}", self.orbits_skipped)?;
        writeln!(f, "  candidates            {}", self.candidates)?;
        writeln!(f, "  disconnected          {}", self.disconnected_skipped)?;
        writeln!(f, "  certificate hits      {}", self.certificate_hits)?;
        writeln!(f, "  exact iso fallbacks   {}", self.exact_iso_fallbacks)?;
        if self.cert_cache_entries > 0 || self.cert_cache_skips > 0 {
            writeln!(f, "  cert cache entries    {}", self.cert_cache_entries)?;
            writeln!(f, "  cert cache skips      {}", self.cert_cache_skips)?;
        }
        writeln!(f, "  classes               {}", self.classes)?;
        writeln!(f, "  truncated             {}", self.truncated)?;
        writeln!(f, "  threads               {}", self.threads)?;
        writeln!(f, "  subset scan           {:?}", self.scan_time)?;
        writeln!(f, "  candidate build       {:?}", self.build_time)?;
        writeln!(f, "  certificate dedup     {:?}", self.dedup_time)?;
        if self.vectors_total > 0 {
            writeln!(
                f,
                "  vector coverage       {}/{}",
                self.vectors_completed, self.vectors_total
            )?;
            writeln!(f, "  candidates built      {}", self.candidates_built)?;
        }
        if self.failures > 0 {
            writeln!(f, "  quarantined chunks    {}", self.failures)?;
        }
        if self.retries > 0 {
            writeln!(f, "  retried attempts      {}", self.retries)?;
        }
        if self.checkpoints_written > 0 {
            writeln!(f, "  checkpoints written   {}", self.checkpoints_written)?;
        }
        if self.resumed {
            writeln!(f, "  resumed               true")?;
        }
        if self.cancelled {
            writeln!(f, "  cancelled (partial)   true")?;
        }
        Ok(())
    }
}

impl ExploreStats {
    /// Reconstructs the stats as a *thin view* over an observability
    /// [`fsa_obs::Snapshot`] of a **single** enumeration run: phase
    /// durations come from the `explore.*` spans, work counters from the
    /// `explore.*` counters. For a snapshot produced by an observed run
    /// of either engine this equals the [`Exploration::stats`] struct
    /// filled live (both read the same span measurements).
    ///
    /// # Errors
    ///
    /// [`FsaError::CounterOutOfRange`] when a recorded `u64` counter
    /// does not fit this target's `usize` (a 32-bit truncation would
    /// otherwise silently corrupt the view — same fail-closed stance
    /// as the checkpoint counter re-basing).
    pub fn from_snapshot(snapshot: &fsa_obs::Snapshot) -> Result<ExploreStats, FsaError> {
        let count = |name: &str| -> Result<usize, FsaError> {
            let value = snapshot.counter(name).unwrap_or(0);
            usize::try_from(value).map_err(|_| FsaError::CounterOutOfRange {
                name: name.to_owned(),
                value,
            })
        };
        Ok(ExploreStats {
            multiplicity_vectors: count("explore.multiplicity_vectors")?,
            subsets_total: count("explore.subsets_total")?,
            orbits_skipped: count("explore.orbits_skipped")?,
            candidates: count("explore.candidates")?,
            disconnected_skipped: count("explore.disconnected_skipped")?,
            certificate_hits: count("explore.certificate_hits")?,
            exact_iso_fallbacks: count("explore.exact_iso_fallbacks")?,
            cert_cache_entries: count("explore.cert_cache_entries")?,
            cert_cache_skips: count("explore.cert_cache_skips")?,
            classes: count("explore.classes")?,
            truncated: count("explore.truncated")? != 0,
            threads: count("explore.threads")?,
            vectors_total: count("explore.vectors_total")?,
            vectors_completed: count("explore.vectors_completed")?,
            candidates_built: count("explore.candidates_built")?,
            failures: count("explore.failures")?,
            retries: snapshot.counter("explore.retries").unwrap_or(0),
            cancelled: count("explore.cancelled")? != 0,
            checkpoints_written: count("explore.checkpoints_written")?,
            resumed: count("explore.resumed")? != 0,
            scan_time: snapshot.span_total("explore.scan"),
            build_time: snapshot.span_total("explore.build"),
            dedup_time: snapshot.span_total("explore.dedup"),
        })
    }

    /// Mirrors every counter-valued field into `explore.*` counters of
    /// `obs` (phase durations are already present as `explore.*` spans).
    /// No-op when `obs` is disabled. Both engines call this internally;
    /// it is public so hosts that *assemble* an [`ExploreStats`] (the
    /// distributed coordinator's shard merge) can export the same
    /// counters.
    pub fn mirror_counters(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        let pairs: [(&str, u64); 17] = [
            (
                "explore.multiplicity_vectors",
                self.multiplicity_vectors as u64,
            ),
            ("explore.subsets_total", self.subsets_total as u64),
            ("explore.orbits_skipped", self.orbits_skipped as u64),
            ("explore.candidates", self.candidates as u64),
            (
                "explore.disconnected_skipped",
                self.disconnected_skipped as u64,
            ),
            ("explore.certificate_hits", self.certificate_hits as u64),
            (
                "explore.exact_iso_fallbacks",
                self.exact_iso_fallbacks as u64,
            ),
            ("explore.classes", self.classes as u64),
            ("explore.truncated", u64::from(self.truncated)),
            ("explore.threads", self.threads as u64),
            ("explore.vectors_total", self.vectors_total as u64),
            ("explore.vectors_completed", self.vectors_completed as u64),
            ("explore.candidates_built", self.candidates_built as u64),
            ("explore.failures", self.failures as u64),
            ("explore.retries", self.retries),
            ("explore.cancelled", u64::from(self.cancelled)),
            ("explore.resumed", u64::from(self.resumed)),
        ];
        for (name, value) in pairs {
            obs.counter_add(name, value);
        }
        obs.counter_add(
            "explore.checkpoints_written",
            self.checkpoints_written as u64,
        );
        // Cache counters are only materialised when a cache was in
        // play, so cacheless observed runs export the exact counter
        // set they always did (snapshot views read missing counters
        // as zero).
        if self.cert_cache_entries > 0 || self.cert_cache_skips > 0 {
            obs.counter_add("explore.cert_cache_entries", self.cert_cache_entries as u64);
            obs.counter_add("explore.cert_cache_skips", self.cert_cache_skips as u64);
        }
    }
}

/// Result of [`enumerate_instances_with_stats`]: the structurally
/// different instances plus the engine statistics.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// One representative per isomorphism class, in discovery order.
    pub instances: Vec<SosInstance>,
    /// Per-stage statistics.
    pub stats: ExploreStats,
    /// The accepted `(vector ordinal, flow-subset mask)` decision log
    /// in discovery order — one entry per instance (**supervised
    /// engine only**; the legacy engine leaves it empty). This is the
    /// same log the checkpoint format persists; a distributed
    /// coordinator merges per-shard logs with [`merge_accepted`].
    pub accepted: Vec<(u64, u64)>,
}

/// Enumerates the structurally different SoS instances built from
/// `models` — each given with its maximum multiplicity — under the
/// connection rules.
///
/// # Errors
///
/// * [`FsaError::InvalidComponentModel`] if a model fails validation, a
///   rule references an unknown model/action, or the flow-subset space
///   of one multiplicity vector is too large to scan.
/// * [`FsaError::BudgetExceeded`] if the enumeration exceeds
///   `options.max_candidates` under [`BudgetPolicy::Error`].
pub fn enumerate_instances(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> Result<Vec<SosInstance>, FsaError> {
    enumerate_instances_with_stats(models, rules, options).map(|e| e.instances)
}

/// Hard cap on the flow-subset space of one multiplicity vector: beyond
/// this even *scanning* the subsets is infeasible.
const SUBSET_SCAN_CAP: usize = 1 << 26;

/// Copy-permutation groups larger than this are not used for orbit
/// pruning (correctness is unaffected — the certificate dedup still
/// collapses the orbits, just later).
const ORBIT_GROUP_CAP: usize = 720;

/// Loads the cross-run certificate cache of `options`, returning the
/// whole cache (foreign sections are preserved on save) and this
/// configuration's trusted section, cloned out so the class map can be
/// mutated while it is consulted.
fn load_cert_cache(
    options: &ExploreOptions,
    fingerprint: u64,
) -> Result<Option<(PathBuf, CertCache, Option<CertSection>)>, FsaError> {
    let Some(path) = &options.cert_cache else {
        return Ok(None);
    };
    let cache = CertCache::load(path)?;
    let trusted = cache.section(fingerprint).cloned();
    Ok(Some((path.clone(), cache, trusted)))
}

/// Streams one candidate into the class map, trusting the certificate
/// cache's census where it is conclusive (see [`crate::certcache`] for
/// the soundness argument): single-class buckets discharge duplicates
/// without exact isomorphism, all-founders collision buckets
/// (candidates == classes) append new classes without exact
/// isomorphism. Mixed buckets and unknown certificates take the
/// ordinary exact path.
fn insert_candidate(
    classes: &mut CertifiedClasses<String>,
    trusted: Option<&CertSection>,
    shape: DiGraph<String>,
    certificate: Certificate,
) -> Option<usize> {
    match trusted.and_then(|section| section.get(&certificate)) {
        Some(census) if census.classes == 1 => {
            classes.insert_trusting_unique_bucket(shape, certificate)
        }
        Some(census) if census.candidates == census.classes => classes.insert_trusting_new_class(
            shape,
            certificate,
            usize::try_from(census.classes).unwrap_or(usize::MAX),
        ),
        _ => classes.insert_with_certificate(shape, certificate),
    }
}

/// Persists a completed run's bucket census into its cache section.
/// Partial coverage (cancellation or quarantined chunks) must never be
/// recorded — its bucket counts are lower bounds, not facts — so
/// callers gate on completeness; deterministic budget truncation is
/// fine (the fingerprint pins the budget, so the truncated candidate
/// stream is reproducible).
fn save_cert_cache(
    path: &Path,
    mut cache: CertCache,
    fingerprint: u64,
    classes: &CertifiedClasses<String>,
) -> Result<(), FsaError> {
    cache.record(fingerprint, &classes.bucket_census());
    cache.save(path)
}

/// Like [`enumerate_instances`], but also returns [`ExploreStats`].
///
/// # Errors
///
/// See [`enumerate_instances`].
pub fn enumerate_instances_with_stats(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> Result<Exploration, FsaError> {
    if let Some(shard) = options.shard {
        return Err(FsaError::InvalidShard {
            reason: format!(
                "shard {shard} requires the supervised engine \
                 (enumerate_instances_supervised)"
            ),
        });
    }
    for (m, _) in models {
        m.validate()?;
    }
    let run = options.obs.span("explore");
    let resolved = resolve_rules(models, rules)?;

    let threads = options.threads.max(1);
    let mut stats = ExploreStats {
        threads,
        ..ExploreStats::default()
    };
    let mut classes: CertifiedClasses<String> = CertifiedClasses::new();
    let mut instances: Vec<SosInstance> = Vec::new();
    let fingerprint = config_fingerprint(models, rules, options);
    let cert_cache = load_cert_cache(options, fingerprint)?;
    let trusted = cert_cache.as_ref().and_then(|(_, _, t)| t.as_ref());
    stats.cert_cache_entries = trusted.map_or(0, CertSection::len);

    // Enumerate multiplicities: the cartesian product of 0..=max per
    // model, skipping the empty composition.
    let mut counts = vec![0usize; models.len()];
    'vectors: loop {
        if counts.iter().sum::<usize>() > 0 {
            stats.multiplicity_vectors += 1;
            let done = explore_vector(
                models,
                &resolved,
                &counts,
                options,
                threads,
                trusted,
                &mut stats,
                &mut classes,
                &mut instances,
            )?;
            if done {
                // Budget truncation: return the deduped partial
                // universe explored so far.
                break 'vectors;
            }
        }
        let mut i = 0;
        loop {
            if i == models.len() {
                break 'vectors;
            }
            counts[i] += 1;
            if counts[i] <= models[i].1 {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
    }

    stats.classes = instances.len();
    stats.certificate_hits = classes.certificate_hits();
    stats.exact_iso_fallbacks = classes.exact_fallbacks();
    stats.cert_cache_skips = classes.trusted_skips();
    if let Some((path, cache, _)) = cert_cache {
        // The legacy engine only reaches this point with full (or
        // deterministically truncated) coverage — errors bailed above.
        save_cert_cache(&path, cache, fingerprint, &classes)?;
    }
    drop(run);
    stats.mirror_counters(&options.obs);
    Ok(Exploration {
        instances,
        stats,
        accepted: Vec::new(),
    })
}

/// Odometer over the non-empty multiplicity vectors (`0..=max` per
/// model), in the engine's canonical order: the first model's count
/// changes fastest. The position of a vector in this sequence is its
/// *ordinal* — the unit of the checkpoint frontier.
struct VectorIter {
    maxes: Vec<usize>,
    counts: Vec<usize>,
    done: bool,
}

impl VectorIter {
    fn new(maxes: &[usize]) -> Self {
        VectorIter {
            maxes: maxes.to_vec(),
            counts: vec![0; maxes.len()],
            done: maxes.is_empty(),
        }
    }
}

impl Iterator for VectorIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        while !self.done {
            let mut i = 0;
            loop {
                if i == self.maxes.len() {
                    self.done = true;
                    return None;
                }
                self.counts[i] += 1;
                if self.counts[i] <= self.maxes[i] {
                    break;
                }
                self.counts[i] = 0;
                i += 1;
            }
            if self.counts.iter().sum::<usize>() > 0 {
                return Some(self.counts.clone());
            }
        }
        None
    }
}

/// Number of non-empty multiplicity vectors: `∏ (maxᵢ + 1) − 1`.
fn vector_count(maxes: &[usize]) -> usize {
    maxes
        .iter()
        .try_fold(1usize, |acc, &m| acc.checked_mul(m + 1))
        .map_or(usize::MAX, |p| p.saturating_sub(1))
}

/// Number of non-empty multiplicity vectors of a universe — the
/// ordinal space that [`ShardRange`]s partition. A coordinator calls
/// this once to size [`ShardRange::partition`].
#[must_use]
pub fn vector_space(models: &[(ComponentModel, usize)]) -> u64 {
    let maxes: Vec<usize> = models.iter().map(|(_, max)| *max).collect();
    vector_count(&maxes) as u64
}

/// Re-instantiates the accepted class representatives of one vector
/// (resume rebuild). The checkpoint recorded only `(ordinal, mask)`
/// decisions; rebuilding replays them in discovery order, so the class
/// map and instance list end up bit-identical to the checkpointed run.
#[allow(clippy::too_many_arguments)]
fn rebuild_accepted(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    ordinal: u64,
    flows: &[FlowCandidate],
    accepted: &[(u64, u64)],
    cursor: &mut usize,
    classes: &mut CertifiedClasses<String>,
    instances: &mut Vec<SosInstance>,
) -> Result<(), FsaError> {
    while let Some(&(entry_ordinal, mask)) = accepted.get(*cursor) {
        if entry_ordinal != ordinal {
            break;
        }
        if mask >> flows.len() != 0 {
            return Err(FsaError::CorruptCheckpoint {
                reason: format!("accepted mask {mask} out of range for vector {ordinal}"),
            });
        }
        let instance = build_composition(models, rules, counts, flows, mask as usize)?;
        let shape = instance.shape_graph();
        let certificate = canonical_certificate(&shape);
        if classes
            .insert_with_certificate(shape, certificate)
            .is_none()
        {
            return Err(FsaError::CorruptCheckpoint {
                reason: format!(
                    "accepted instance (vector {ordinal}, mask {mask}) duplicates an earlier class on rebuild"
                ),
            });
        }
        instances.push(instance);
        *cursor += 1;
    }
    Ok(())
}

/// Writes one checkpoint snapshot of the supervised driver's state.
#[allow(clippy::too_many_arguments)]
/// Resume offset for a class-map counter: checkpointed total minus the
/// value the rebuild replay produced. Fails closed as
/// [`FsaError::CorruptCheckpoint`] when the checkpointed value cannot be
/// represented (a tampered/bit-rotted counter far beyond any reachable
/// magnitude would otherwise wrap negative through `as i64`).
fn resume_offset(checkpointed: usize, replayed: usize, what: &str) -> Result<i64, FsaError> {
    let cp = i64::try_from(checkpointed).map_err(|_| FsaError::CorruptCheckpoint {
        reason: format!("{what} counter {checkpointed} is out of range"),
    })?;
    let rb = i64::try_from(replayed).map_err(|_| FsaError::CorruptCheckpoint {
        reason: format!("replayed {what} counter {replayed} is out of range"),
    })?;
    Ok(cp - rb)
}

/// Re-bases a class-map counter by the resume offset with **checked**
/// arithmetic. A negative result means the resumed checkpoint's
/// counters were inconsistent with its own decision log (the replay
/// produced more work than the checkpoint claims happened in total), so
/// fail closed as [`FsaError::CorruptCheckpoint`] instead of silently
/// clamping to zero.
fn rebase_counter(offset: i64, current: usize, what: &str) -> Result<usize, FsaError> {
    let total = (i128::from(offset)) + (current as i128);
    usize::try_from(total).map_err(|_| FsaError::CorruptCheckpoint {
        reason: format!(
            "{what} counter underflows on resume ({offset:+} offset, {current} observed): \
             the checkpoint's counters are inconsistent with its decision log"
        ),
    })
}

#[allow(clippy::too_many_arguments)]
fn write_explore_checkpoint(
    spec: &CheckpointSpec,
    fingerprint: u64,
    next_ordinal: u64,
    pending: &[usize],
    accepted: &[(u64, u64)],
    stats: &mut ExploreStats,
    classes: &CertifiedClasses<String>,
    hits_offset: i64,
    fallbacks_offset: i64,
    obs: &Obs,
) -> Result<(), FsaError> {
    let span = obs.span("checkpoint.write");
    let counters = CheckpointCounters {
        multiplicity_vectors: stats.multiplicity_vectors,
        subsets_total: stats.subsets_total,
        orbits_skipped: stats.orbits_skipped,
        candidates: stats.candidates,
        candidates_built: stats.candidates_built,
        disconnected_skipped: stats.disconnected_skipped,
        certificate_hits: rebase_counter(
            hits_offset,
            classes.certificate_hits(),
            "certificate-hit",
        )?,
        exact_iso_fallbacks: rebase_counter(
            fallbacks_offset,
            classes.exact_fallbacks(),
            "exact-isomorphism-fallback",
        )?,
        truncated: stats.truncated,
        vectors_completed: stats.vectors_completed,
        failures: stats.failures,
        retries: stats.retries,
    };
    ExploreCheckpoint {
        fingerprint,
        next_ordinal,
        pending_masks: pending.iter().map(|&m| m as u64).collect(),
        accepted: accepted.to_vec(),
        counters,
    }
    .write(&spec.path)?;
    stats.checkpoints_written += 1;
    obs.record_duration("checkpoint.write", span.finish());
    Ok(())
}

/// Like [`enumerate_instances_with_stats`], executed under the
/// supervised layer: panic-isolated retried candidate builds,
/// cooperative cancellation with coverage accounting, and
/// checkpoint/resume (see [`ExecOptions`] and the module docs).
///
/// # Errors
///
/// Everything [`enumerate_instances_with_stats`] reports, plus
/// [`FsaError::CorruptCheckpoint`] for unreadable, tampered,
/// version-skewed or configuration-mismatched resume files.
pub fn enumerate_instances_supervised(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
    exec: &ExecOptions,
) -> Result<Exploration, FsaError> {
    for (m, _) in models {
        m.validate()?;
    }
    let obs = exec.supervisor.obs.clone();
    let run = obs.span("explore");
    let resolved = resolve_rules(models, rules)?;
    let threads = options.threads.max(1);
    let batch = exec.batch.max(1);
    let maxes: Vec<usize> = models.iter().map(|(_, max)| *max).collect();
    let fingerprint = config_fingerprint(models, rules, options);
    let universe_total = vector_count(&maxes) as u64;
    let shard = options
        .shard
        .unwrap_or_else(|| ShardRange::new(0, universe_total));
    if shard.start > shard.end {
        return Err(FsaError::InvalidShard {
            reason: format!("shard {shard} has its start beyond its end"),
        });
    }
    if shard.end > universe_total {
        return Err(FsaError::InvalidShard {
            reason: format!(
                "shard {shard} lies beyond the {universe_total}-vector multiplicity space"
            ),
        });
    }
    if options.shard.is_some() && options.on_budget == BudgetPolicy::Truncate {
        // A truncation point depends on global enumeration order, which
        // no single shard can observe; a sharded truncated run could
        // never merge bit-identically.
        return Err(FsaError::InvalidShard {
            reason: "budget truncation is not shard-deterministic; use BudgetPolicy::Error"
                .to_owned(),
        });
    }
    let vectors_total = shard.len() as usize;

    let mut stats = ExploreStats {
        threads,
        vectors_total,
        ..ExploreStats::default()
    };
    let mut classes: CertifiedClasses<String> = CertifiedClasses::new();
    let mut instances: Vec<SosInstance> = Vec::new();
    if options.cert_cache.is_some() && (exec.checkpoint.is_some() || exec.resume.is_some()) {
        // The resume replay is cacheless: its exact-fallback counters
        // would not re-base against a cached live run's checkpoint.
        return Err(FsaError::CertCache {
            reason: "the certificate cache cannot be combined with checkpoint/resume".to_owned(),
        });
    }
    let cert_cache = load_cert_cache(options, fingerprint)?;
    let trusted = cert_cache.as_ref().and_then(|(_, _, t)| t.as_ref());
    stats.cert_cache_entries = trusted.map_or(0, CertSection::len);

    // Frontier state: the vector being processed and, mid-vector, the
    // canonical masks not yet built. Ordinals are *global* (sharded
    // runs carry the same ordinal space as unsharded ones, offset into
    // their range), so accepted logs concatenate across shards.
    let mut next_ordinal = shard.start;
    let mut pending: Vec<usize> = Vec::new();
    let mut accepted: Vec<(u64, u64)> = Vec::new();
    let mut cp_hits = 0usize;
    let mut cp_fallbacks = 0usize;

    if let Some(path) = &exec.resume {
        let span = obs.span("checkpoint.read");
        let cp = ExploreCheckpoint::read(path)?;
        obs.record_duration("checkpoint.read", span.finish());
        if cp.fingerprint != fingerprint {
            return Err(FsaError::CorruptCheckpoint {
                reason: "checkpoint was written by a run with a different model/rule/option \
                         configuration"
                    .to_owned(),
            });
        }
        if cp.next_ordinal < shard.start
            || cp.next_ordinal > shard.end
            || (cp.next_ordinal == shard.end && !cp.pending_masks.is_empty())
        {
            return Err(FsaError::CorruptCheckpoint {
                reason: "checkpoint frontier lies outside the run's shard of the multiplicity \
                         space"
                    .to_owned(),
            });
        }
        if !cp.accepted.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(FsaError::CorruptCheckpoint {
                reason: "accepted list is out of discovery order".to_owned(),
            });
        }
        if let Some(&(last, _)) = cp.accepted.last() {
            let within =
                last < cp.next_ordinal || (last == cp.next_ordinal && !cp.pending_masks.is_empty());
            if !within {
                return Err(FsaError::CorruptCheckpoint {
                    reason: "accepted entries lie beyond the checkpoint frontier".to_owned(),
                });
            }
        }
        next_ordinal = cp.next_ordinal;
        pending = cp.pending_masks.iter().map(|&m| m as usize).collect();
        accepted = cp.accepted;
        let c = cp.counters;
        stats.multiplicity_vectors = c.multiplicity_vectors;
        stats.subsets_total = c.subsets_total;
        stats.orbits_skipped = c.orbits_skipped;
        stats.candidates = c.candidates;
        stats.candidates_built = c.candidates_built;
        stats.disconnected_skipped = c.disconnected_skipped;
        stats.truncated = c.truncated;
        stats.vectors_completed = c.vectors_completed;
        stats.failures = c.failures;
        stats.retries = c.retries;
        cp_hits = c.certificate_hits;
        cp_fallbacks = c.exact_iso_fallbacks;
        stats.resumed = true;
    }

    // While `rebuilding`, the class map replays checkpointed decisions;
    // its hit/fallback counters are then re-based so the checkpointed
    // counters carry over seamlessly.
    let mut rebuilding = stats.resumed;
    let mut cursor = 0usize;
    let resume_accepted = accepted.len();
    let mut hits_offset = 0i64;
    let mut fallbacks_offset = 0i64;
    let mut built_since_ckpt = 0usize;
    let cancel = exec.supervisor.cancel.clone();

    'vectors: for (ordinal, counts) in VectorIter::new(&maxes).enumerate() {
        let ordinal64 = ordinal as u64;
        if ordinal64 < shard.start {
            continue;
        }
        if ordinal64 >= shard.end {
            break 'vectors;
        }
        if ordinal64 < next_ordinal {
            // Resume rebuild: replay the accepted decisions of an
            // already-completed vector.
            if accepted.get(cursor).is_some_and(|&(o, _)| o == ordinal64) {
                let flows = flow_candidates(&resolved, &counts);
                rebuild_accepted(
                    models,
                    &resolved,
                    &counts,
                    ordinal64,
                    &flows,
                    &accepted,
                    &mut cursor,
                    &mut classes,
                    &mut instances,
                )?;
            }
            continue;
        }

        // ordinal == next_ordinal: the current vector. A non-empty
        // `pending` means the checkpoint interrupted it mid-build:
        // replay its accepted prefix, then build the pending masks
        // without re-scanning (the scan counters are already in the
        // checkpoint).
        let mut flows_pending: Option<Vec<FlowCandidate>> = None;
        if !pending.is_empty() {
            let flows = flow_candidates(&resolved, &counts);
            for &mask in &pending {
                if mask >> flows.len() != 0 {
                    return Err(FsaError::CorruptCheckpoint {
                        reason: format!("pending mask {mask} out of range for vector {ordinal64}"),
                    });
                }
            }
            rebuild_accepted(
                models,
                &resolved,
                &counts,
                ordinal64,
                &flows,
                &accepted,
                &mut cursor,
                &mut classes,
                &mut instances,
            )?;
            flows_pending = Some(flows);
        }
        if rebuilding {
            if cursor != resume_accepted {
                return Err(FsaError::CorruptCheckpoint {
                    reason: "accepted entries reference vectors beyond the frontier".to_owned(),
                });
            }
            hits_offset = resume_offset(cp_hits, classes.certificate_hits(), "certificate-hit")?;
            fallbacks_offset = resume_offset(
                cp_fallbacks,
                classes.exact_fallbacks(),
                "exact-isomorphism-fallback",
            )?;
            rebuilding = false;
        }

        let (masks, flows) = if let Some(flows) = flows_pending {
            (std::mem::take(&mut pending), flows)
        } else {
            // A fresh vector. A truncated (budget-exhausted) resumed
            // run has nothing further to enumerate.
            if stats.truncated {
                break 'vectors;
            }
            if cancel.is_cancelled() {
                stats.cancelled = true;
                if let Some(spec) = &exec.checkpoint {
                    write_explore_checkpoint(
                        spec,
                        fingerprint,
                        ordinal64,
                        &[],
                        &accepted,
                        &mut stats,
                        &classes,
                        hits_offset,
                        fallbacks_offset,
                        &obs,
                    )?;
                }
                break 'vectors;
            }
            let span = obs.span("explore.scan");
            let scan = scan_vector(
                &resolved,
                &counts,
                options,
                threads,
                stats.candidates,
                Some(&cancel),
            )?;
            stats.scan_time += span.finish();
            if scan.cancelled {
                stats.cancelled = true;
                if let Some(spec) = &exec.checkpoint {
                    write_explore_checkpoint(
                        spec,
                        fingerprint,
                        ordinal64,
                        &[],
                        &accepted,
                        &mut stats,
                        &classes,
                        hits_offset,
                        fallbacks_offset,
                        &obs,
                    )?;
                }
                break 'vectors;
            }
            stats.multiplicity_vectors += 1;
            stats.subsets_total += scan.subsets;
            stats.orbits_skipped += scan.orbits_skipped;
            stats.candidates += scan.canonical.len();
            stats.truncated |= scan.truncated;
            (scan.canonical, scan.flows)
        };

        // Build the vector's masks in supervised batches.
        let build = |mask: usize| -> Result<Option<Built>, FsaError> {
            build_candidate(
                models,
                &resolved,
                &counts,
                &flows,
                mask,
                options.require_connected,
            )
        };
        let mut idx = 0usize;
        while idx < masks.len() {
            if cancel.is_cancelled() {
                stats.cancelled = true;
                if let Some(spec) = &exec.checkpoint {
                    write_explore_checkpoint(
                        spec,
                        fingerprint,
                        ordinal64,
                        &masks[idx..],
                        &accepted,
                        &mut stats,
                        &classes,
                        hits_offset,
                        fallbacks_offset,
                        &obs,
                    )?;
                }
                break 'vectors;
            }
            let hi = (idx + batch).min(masks.len());
            let slice = &masks[idx..hi];
            let span = obs.span("explore.build");
            let outcome = exec.supervisor.run_chunks::<Option<Built>, FsaError, _>(
                "explore:build",
                threads,
                slice.len(),
                |i| build(slice[i]),
            )?;
            stats.build_time += span.finish();
            stats.retries += outcome.retries;
            if outcome.cancelled {
                // Drop the partial batch: the resumed run redoes it
                // whole, keeping the class-map stream deterministic.
                stats.cancelled = true;
                if let Some(spec) = &exec.checkpoint {
                    write_explore_checkpoint(
                        spec,
                        fingerprint,
                        ordinal64,
                        &masks[idx..],
                        &accepted,
                        &mut stats,
                        &classes,
                        hits_offset,
                        fallbacks_offset,
                        &obs,
                    )?;
                }
                break 'vectors;
            }
            stats.failures += outcome.failures.len();
            stats.candidates_built += outcome.results.len();
            let span = obs.span("explore.dedup");
            for (chunk, item) in outcome.results {
                match item {
                    None => stats.disconnected_skipped += 1,
                    Some((instance, shape, certificate)) => {
                        if insert_candidate(&mut classes, trusted, shape, certificate).is_some() {
                            accepted.push((ordinal64, slice[chunk] as u64));
                            instances.push(instance);
                        }
                    }
                }
            }
            stats.dedup_time += span.finish();
            built_since_ckpt += slice.len();
            idx = hi;
            if idx < masks.len() {
                if let Some(spec) = &exec.checkpoint {
                    if built_since_ckpt >= spec.every.max(1) {
                        write_explore_checkpoint(
                            spec,
                            fingerprint,
                            ordinal64,
                            &masks[idx..],
                            &accepted,
                            &mut stats,
                            &classes,
                            hits_offset,
                            fallbacks_offset,
                            &obs,
                        )?;
                        built_since_ckpt = 0;
                    }
                }
            }
        }

        // Vector boundary.
        stats.vectors_completed += 1;
        next_ordinal = ordinal64 + 1;
        if stats.truncated {
            break 'vectors;
        }
        if let Some(spec) = &exec.checkpoint {
            if built_since_ckpt >= spec.every.max(1) {
                write_explore_checkpoint(
                    spec,
                    fingerprint,
                    next_ordinal,
                    &[],
                    &accepted,
                    &mut stats,
                    &classes,
                    hits_offset,
                    fallbacks_offset,
                    &obs,
                )?;
                built_since_ckpt = 0;
            }
        }
    }

    if rebuilding {
        // The resumed checkpoint covered the whole space (or ended on a
        // truncated run): every decision was replayed, nothing new ran.
        if cursor != resume_accepted {
            return Err(FsaError::CorruptCheckpoint {
                reason: "accepted entries reference vectors beyond the frontier".to_owned(),
            });
        }
        hits_offset = resume_offset(cp_hits, classes.certificate_hits(), "certificate-hit")?;
        fallbacks_offset = resume_offset(
            cp_fallbacks,
            classes.exact_fallbacks(),
            "exact-isomorphism-fallback",
        )?;
    }
    if !stats.cancelled {
        // Completed (or truncated) run: leave a final boundary
        // checkpoint so resuming from it is an idempotent no-op.
        if let Some(spec) = &exec.checkpoint {
            write_explore_checkpoint(
                spec,
                fingerprint,
                next_ordinal,
                &[],
                &accepted,
                &mut stats,
                &classes,
                hits_offset,
                fallbacks_offset,
                &obs,
            )?;
        }
    }
    stats.classes = instances.len();
    stats.certificate_hits =
        rebase_counter(hits_offset, classes.certificate_hits(), "certificate-hit")?;
    stats.exact_iso_fallbacks = rebase_counter(
        fallbacks_offset,
        classes.exact_fallbacks(),
        "exact-isomorphism-fallback",
    )?;
    stats.cert_cache_skips = classes.trusted_skips();
    if let Some((path, cache, _)) = cert_cache {
        if !stats.cancelled && stats.failures == 0 {
            save_cert_cache(&path, cache, fingerprint, &classes)?;
        }
    }
    drop(run);
    stats.mirror_counters(&obs);
    Ok(Exploration {
        instances,
        stats,
        accepted,
    })
}

/// Outcome of [`merge_accepted`]: the global instance list rebuilt from
/// merged per-shard decision logs.
#[derive(Debug, Clone)]
pub struct MergedExploration {
    /// One representative per isomorphism class, in canonical
    /// `(ordinal, mask)` order — bit-identical to the instance list of
    /// an unsharded run.
    pub instances: Vec<SosInstance>,
    /// The deduplicated accepted log (one entry per instance).
    pub accepted: Vec<(u64, u64)>,
    /// Cross-shard duplicate classes dropped during the merge: a class
    /// first discovered in one shard and independently rediscovered in
    /// another (each shard deduplicates only within its own range).
    pub duplicates: usize,
}

/// Rebuilds the global exploration result from per-shard accepted
/// `(ordinal, mask)` logs, merged in ascending canonical order (shards
/// are contiguous and disjoint, so concatenating their logs in range
/// order *is* ascending order). Classes rediscovered by later shards
/// are dropped, keeping the first representative — because every
/// globally-accepted pair is also accepted by its own shard, the kept
/// list and instance stream are bit-identical to an unsharded
/// supervised run over the whole universe.
///
/// # Errors
///
/// * [`FsaError::InvalidComponentModel`] if a model or rule fails
///   validation.
/// * [`FsaError::CorruptCheckpoint`] if the merged log is not strictly
///   ascending or references ordinals/masks outside the universe —
///   shard results that cannot have come from this configuration.
pub fn merge_accepted(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    accepted: &[(u64, u64)],
) -> Result<MergedExploration, FsaError> {
    for (m, _) in models {
        m.validate()?;
    }
    let resolved = resolve_rules(models, rules)?;
    if !accepted.windows(2).all(|w| w[0] < w[1]) {
        return Err(FsaError::CorruptCheckpoint {
            reason: "merged accepted list is not strictly ascending in (ordinal, mask)".to_owned(),
        });
    }
    let maxes: Vec<usize> = models.iter().map(|(_, max)| *max).collect();
    let total = vector_count(&maxes) as u64;
    if accepted.last().is_some_and(|&(o, _)| o >= total) {
        return Err(FsaError::CorruptCheckpoint {
            reason: "merged accepted entries lie beyond the multiplicity space".to_owned(),
        });
    }
    let mut classes: CertifiedClasses<String> = CertifiedClasses::new();
    let mut instances: Vec<SosInstance> = Vec::new();
    let mut kept: Vec<(u64, u64)> = Vec::new();
    let mut duplicates = 0usize;
    let mut cursor = 0usize;
    for (ordinal, counts) in VectorIter::new(&maxes).enumerate() {
        if cursor == accepted.len() {
            break;
        }
        let ordinal64 = ordinal as u64;
        if accepted[cursor].0 != ordinal64 {
            continue;
        }
        let flows = flow_candidates(&resolved, &counts);
        while let Some(&(o, mask)) = accepted.get(cursor) {
            if o != ordinal64 {
                break;
            }
            if mask >> flows.len() != 0 {
                return Err(FsaError::CorruptCheckpoint {
                    reason: format!("merged accepted mask {mask} out of range for vector {o}"),
                });
            }
            let instance = build_composition(models, &resolved, &counts, &flows, mask as usize)?;
            let shape = instance.shape_graph();
            let certificate = canonical_certificate(&shape);
            if classes
                .insert_with_certificate(shape, certificate)
                .is_some()
            {
                kept.push((o, mask));
                instances.push(instance);
            } else {
                duplicates += 1;
            }
            cursor += 1;
        }
    }
    Ok(MergedExploration {
        instances,
        accepted: kept,
        duplicates,
    })
}

/// A connection rule with its model positions resolved.
struct ResolvedRule {
    from_idx: usize,
    from_action: TemplateActionId,
    to_idx: usize,
    to_action: TemplateActionId,
}

/// Validates the rules against the models and resolves model positions.
fn resolve_rules(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
) -> Result<Vec<ResolvedRule>, FsaError> {
    rules
        .iter()
        .map(|rule| {
            let resolve = |name: &str, action: TemplateActionId, side: &str| {
                let idx = models
                    .iter()
                    .position(|(m, _)| m.name() == name)
                    .ok_or_else(|| FsaError::InvalidComponentModel {
                        reason: format!("connection rule references unknown {side} model `{name}`"),
                    })?;
                if action >= models[idx].0.actions().len() {
                    return Err(FsaError::InvalidComponentModel {
                        reason: format!(
                            "connection rule references {side} action {action} out of range for `{name}`"
                        ),
                    });
                }
                Ok(idx)
            };
            Ok(ResolvedRule {
                from_idx: resolve(&rule.from_model, rule.from_action, "source")?,
                from_action: rule.from_action,
                to_idx: resolve(&rule.to_model, rule.to_action, "target")?,
                to_action: rule.to_action,
            })
        })
        .collect()
}

/// One candidate external flow of a multiplicity vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FlowCandidate {
    rule: usize,
    from_copy: usize,
    to_copy: usize,
}

/// One built candidate: instance, shape graph, certificate.
type Built = (SosInstance, DiGraph<String>, u64);

/// Per-worker join results of a chunked `thread::scope`: the outer
/// `Err(chunk)` marks a panicked worker (reported as
/// [`FsaError::WorkerPanicked`]); the inner `Result` carries the
/// chunk's own outcome.
type JoinedChunks<T> = Vec<Result<Result<T, FsaError>, usize>>;

/// Candidate external flows of one multiplicity vector: for each rule,
/// each ordered pair of distinct instances of the involved models.
fn flow_candidates(rules: &[ResolvedRule], counts: &[usize]) -> Vec<FlowCandidate> {
    let mut flows: Vec<FlowCandidate> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        for fc in 0..counts[rule.from_idx] {
            for tc in 0..counts[rule.to_idx] {
                if rule.from_idx == rule.to_idx && fc == tc {
                    continue; // no self-connection
                }
                flows.push(FlowCandidate {
                    rule: ri,
                    from_copy: fc,
                    to_copy: tc,
                });
            }
        }
    }
    flows
}

/// One scanned multiplicity vector: its flow candidates and the
/// orbit-minimal (budget-trimmed) subset masks to instantiate.
struct VectorScan {
    flows: Vec<FlowCandidate>,
    subsets: usize,
    canonical: Vec<usize>,
    orbits_skipped: usize,
    truncated: bool,
    /// The scan was abandoned at a cancellation point; nothing is
    /// counted and the vector must be redone on resume.
    cancelled: bool,
}

/// How often the sequential scan loops peek at the cancellation token.
const SCAN_CANCEL_STRIDE: usize = 4096;

/// Scans the flow subsets of one multiplicity vector for orbit-minimal
/// representatives, applying the candidate budget. Shared by the legacy
/// and the supervised engine; `cancel` is `None` in the legacy path.
fn scan_vector(
    rules: &[ResolvedRule],
    counts: &[usize],
    options: &ExploreOptions,
    threads: usize,
    candidates_so_far: usize,
    cancel: Option<&CancelToken>,
) -> Result<VectorScan, FsaError> {
    let flows = flow_candidates(rules, counts);
    let subsets: usize = 1usize
        .checked_shl(flows.len() as u32)
        .filter(|&s| s <= SUBSET_SCAN_CAP)
        .ok_or_else(|| FsaError::InvalidComponentModel {
            reason: "too many candidate external flows to enumerate".to_owned(),
        })?;

    // The copy-permutation symmetry group, as permutations of the flow
    // candidates (identity dropped, duplicates collapsed).
    let flow_perms = flow_permutations(rules, counts, &flows);
    let group_len = flow_perms.len() + 1;

    let abandoned = |flows: Vec<FlowCandidate>| VectorScan {
        flows,
        subsets,
        canonical: Vec::new(),
        orbits_skipped: 0,
        truncated: false,
        cancelled: true,
    };
    let peek = |mask: usize| {
        mask.is_multiple_of(SCAN_CANCEL_STRIDE)
            && cancel.is_some_and(CancelToken::is_cancelled_peek)
    };

    // Orbit-minimal flow subsets. Every canonical subset counts against
    // the candidate budget; a provably exceeded budget short-circuits
    // the scan entirely.
    let remaining = options.max_candidates.saturating_sub(candidates_so_far);
    let mut truncated = false;
    let mut orbits_skipped = 0usize;
    let mut canonical: Vec<usize> = if subsets.div_ceil(group_len) > remaining {
        match options.on_budget {
            BudgetPolicy::Error => {
                return Err(FsaError::BudgetExceeded {
                    limit: options.max_candidates,
                })
            }
            BudgetPolicy::Truncate => {
                // Early-stop sequential scan: collect only as many
                // canonical subsets as the budget still allows.
                truncated = true;
                let mut picked = Vec::with_capacity(remaining);
                for mask in 0..subsets {
                    if peek(mask) {
                        return Ok(abandoned(flows));
                    }
                    if is_orbit_minimal(mask, &flow_perms) {
                        if picked.len() == remaining {
                            break;
                        }
                        picked.push(mask);
                    } else {
                        orbits_skipped += 1;
                    }
                }
                picked
            }
        }
    } else if threads > 1 && subsets >= 4096 {
        // Chunked parallel scan, merged in ascending mask order. Every
        // worker is joined before the first panic is reported, so a
        // second panicking chunk cannot double-panic the scope.
        let chunk = subsets.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(subsets)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let per_range: Vec<Result<Vec<usize>, usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let flow_perms = &flow_perms;
                    scope.spawn(move || {
                        (lo..hi)
                            .filter(|&mask| is_orbit_minimal(mask, flow_perms))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| h.join().map_err(|_| i))
                .collect()
        });
        let mut merged = Vec::new();
        for range in per_range {
            match range {
                Ok(masks) => merged.extend(masks),
                Err(chunk) => {
                    return Err(FsaError::WorkerPanicked {
                        stage: "explore:scan",
                        chunk,
                    })
                }
            }
        }
        merged
    } else {
        let mut picked = Vec::new();
        for mask in 0..subsets {
            if peek(mask) {
                return Ok(abandoned(flows));
            }
            if is_orbit_minimal(mask, &flow_perms) {
                picked.push(mask);
            }
        }
        picked
    };
    if !truncated {
        orbits_skipped += subsets - canonical.len();
        if canonical.len() > remaining {
            match options.on_budget {
                BudgetPolicy::Error => {
                    return Err(FsaError::BudgetExceeded {
                        limit: options.max_candidates,
                    })
                }
                BudgetPolicy::Truncate => {
                    truncated = true;
                    canonical.truncate(remaining);
                }
            }
        }
    }
    Ok(VectorScan {
        flows,
        subsets,
        canonical,
        orbits_skipped,
        truncated,
        cancelled: false,
    })
}

/// Instantiates one canonical mask and computes its shape-graph
/// certificate; `None` = dropped by the weak-connectivity filter.
fn build_candidate(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    flows: &[FlowCandidate],
    mask: usize,
    require_connected: bool,
) -> Result<Option<Built>, FsaError> {
    let instance = build_composition(models, rules, counts, flows, mask)?;
    if require_connected && !is_weakly_connected(&instance) {
        return Ok(None);
    }
    let shape = instance.shape_graph();
    let certificate = canonical_certificate(&shape);
    Ok(Some((instance, shape, certificate)))
}

/// Explores every flow subset of one multiplicity vector, streaming the
/// candidates into the certificate class map. Returns `true` if the
/// enumeration was truncated (caller stops).
#[allow(clippy::too_many_arguments)]
fn explore_vector(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    options: &ExploreOptions,
    threads: usize,
    trusted: Option<&CertSection>,
    stats: &mut ExploreStats,
    classes: &mut CertifiedClasses<String>,
    instances: &mut Vec<SosInstance>,
) -> Result<bool, FsaError> {
    let span = options.obs.span("explore.scan");
    let scan = scan_vector(rules, counts, options, threads, stats.candidates, None)?;
    stats.scan_time += span.finish();
    stats.subsets_total += scan.subsets;
    stats.orbits_skipped += scan.orbits_skipped;
    stats.candidates += scan.canonical.len();
    let VectorScan {
        flows,
        canonical,
        truncated,
        ..
    } = scan;

    // Instantiate the canonical subsets (chunked parallel) and compute
    // their shape-graph certificates; merge in mask order so the stream
    // into the class map is bit-identical for every thread count.
    let span = options.obs.span("explore.build");
    let build = |mask: usize| -> Result<Option<Built>, FsaError> {
        build_candidate(
            models,
            rules,
            counts,
            &flows,
            mask,
            options.require_connected,
        )
    };
    let built: Vec<Option<Built>> = if threads > 1 && canonical.len() >= 2 {
        let chunk = canonical.len().div_ceil(threads);
        let joined: JoinedChunks<Vec<Option<Built>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = canonical
                .chunks(chunk)
                .map(|masks| {
                    let build = &build;
                    scope.spawn(move || {
                        masks
                            .iter()
                            .map(|&m| build(m))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            // Join every worker before reporting the first panic.
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| h.join().map_err(|_| i))
                .collect()
        });
        let mut merged = Vec::with_capacity(canonical.len());
        for chunk_result in joined {
            match chunk_result {
                Ok(Ok(items)) => merged.extend(items),
                Ok(Err(e)) => return Err(e),
                Err(chunk) => {
                    return Err(FsaError::WorkerPanicked {
                        stage: "explore:build",
                        chunk,
                    })
                }
            }
        }
        merged
    } else {
        canonical
            .iter()
            .map(|&m| build(m))
            .collect::<Result<Vec<_>, _>>()?
    };
    stats.build_time += span.finish();

    // Stream into the certificate class map.
    let span = options.obs.span("explore.dedup");
    for item in built {
        let Some((instance, shape, certificate)) = item else {
            stats.disconnected_skipped += 1;
            continue;
        };
        if insert_candidate(classes, trusted, shape, certificate).is_some() {
            instances.push(instance);
        }
    }
    stats.dedup_time += span.finish();
    stats.truncated |= truncated;
    Ok(truncated)
}

/// The copy-permutation group of one multiplicity vector, induced on the
/// flow candidates: permuting the interchangeable copies of a model maps
/// every flow subset to an isomorphic composition, so only the
/// orbit-minimal subsets need instantiation. Returns the non-identity
/// induced permutations (empty when the group exceeds
/// [`ORBIT_GROUP_CAP`] — pruning is then skipped, not the candidates).
fn flow_permutations(
    rules: &[ResolvedRule],
    counts: &[usize],
    flows: &[FlowCandidate],
) -> Vec<Vec<usize>> {
    let group_size = counts
        .iter()
        .try_fold(1usize, |acc, &c| {
            (1..=c)
                .try_fold(acc, |a, k| a.checked_mul(k))
                .filter(|&a| a <= ORBIT_GROUP_CAP)
        })
        .unwrap_or(usize::MAX);
    if flows.is_empty() || group_size > ORBIT_GROUP_CAP {
        return Vec::new();
    }

    let flow_index: std::collections::HashMap<FlowCandidate, usize> =
        flows.iter().enumerate().map(|(i, &f)| (f, i)).collect();

    // All copy permutations per model (cartesian product across models),
    // walked via an odometer over per-model permutation lists.
    let per_model: Vec<Vec<Vec<usize>>> = counts.iter().map(|&c| permutations(c)).collect();
    let mut choice = vec![0usize; per_model.len()];
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut result: Vec<Vec<usize>> = Vec::new();
    loop {
        let perm: Vec<usize> = flows
            .iter()
            .map(|f| {
                let rule = &rules[f.rule];
                let mapped = FlowCandidate {
                    rule: f.rule,
                    from_copy: per_model[rule.from_idx][choice[rule.from_idx]][f.from_copy],
                    to_copy: per_model[rule.to_idx][choice[rule.to_idx]][f.to_copy],
                };
                flow_index[&mapped]
            })
            .collect();
        let identity = perm.iter().enumerate().all(|(i, &p)| i == p);
        if !identity && seen.insert(perm.clone()) {
            result.push(perm);
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == per_model.len() {
                return result;
            }
            choice[i] += 1;
            if choice[i] < per_model[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// All permutations of `0..n` (n! entries, `n` capped by the caller).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(current: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        heap_permute(current, k - 1, out);
        if k.is_multiple_of(2) {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

/// Returns `true` if `mask` is the smallest element of its orbit under
/// the induced flow permutations (early exit on the first witness).
fn is_orbit_minimal(mask: usize, flow_perms: &[Vec<usize>]) -> bool {
    for perm in flow_perms {
        let mut image = 0usize;
        let mut bits = mask;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            image |= 1 << perm[k];
        }
        if image < mask {
            return false;
        }
    }
    true
}

/// Builds the composition of one multiplicity vector and one flow
/// subset.
fn build_composition(
    models: &[(ComponentModel, usize)],
    rules: &[ResolvedRule],
    counts: &[usize],
    flows: &[FlowCandidate],
    mask: usize,
) -> Result<SosInstance, FsaError> {
    let name = models
        .iter()
        .zip(counts)
        .filter(|(_, c)| **c > 0)
        .map(|((m, _), c)| format!("{}x{}", c, m.name()))
        .collect::<Vec<_>>()
        .join("+");
    let mut builder = SosInstanceBuilder::new(&name);
    // Instantiate components with global per-model indices 1, 2, …
    let mut handles: Vec<Vec<crate::component_model::ComponentInstance>> = Vec::new();
    for (mi, (model, _)) in models.iter().enumerate() {
        let mut copies = Vec::new();
        for c in 0..counts[mi] {
            let index = if counts[mi] == 1 && model.actions().iter().all(|a| a.indices().is_empty())
            {
                String::new()
            } else {
                (c + 1).to_string()
            };
            copies.push(model.instantiate(&index, &mut builder)?);
        }
        handles.push(copies);
    }
    for (k, cand) in flows.iter().enumerate() {
        if mask & (1 << k) == 0 {
            continue;
        }
        let rule = &rules[cand.rule];
        let from = handles[rule.from_idx][cand.from_copy].node(rule.from_action);
        let to = handles[rule.to_idx][cand.to_copy].node(rule.to_action);
        builder.flow(from, to);
    }
    Ok(builder.build())
}

/// Weak connectivity of the action graph (single component, ignoring
/// edge direction). The empty graph counts as connected.
fn is_weakly_connected(instance: &SosInstance) -> bool {
    let g = instance.graph();
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId::new(0)];
    seen[0] = true;
    let mut visited = 1;
    while let Some(v) = stack.pop() {
        for u in g.successors(v).chain(g.predecessors(v)) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                visited += 1;
                stack.push(u);
            }
        }
    }
    visited == n
}

/// Elicits every instance and unions the requirement sets (§4.4).
///
/// # Errors
///
/// Propagates elicitation errors (e.g. a cyclic composition produced by
/// bidirectional connection rules).
pub fn union_requirements(instances: &[SosInstance]) -> Result<RequirementSet, FsaError> {
    union_requirements_threaded(instances, 1)
}

/// Like [`union_requirements`], with the elicitation fanned out over
/// `threads` scoped worker threads (chunked, merged in instance order —
/// bit-identical to the sequential run).
///
/// # Errors
///
/// Propagates elicitation errors.
pub fn union_requirements_threaded(
    instances: &[SosInstance],
    threads: usize,
) -> Result<RequirementSet, FsaError> {
    union_with(instances, threads, &elicit, false).map(|(set, _)| set)
}

/// Like [`union_requirements`], but skips instances whose composition is
/// cyclic (bidirectional rules can produce `A sends to B sends to A`
/// loops, which the paper's loop-freedom assumption excludes). Returns
/// the union together with the number of skipped instances.
///
/// # Errors
///
/// *Only* [`FsaError::CircularDependency`] counts as a loop-skip; every
/// other elicitation error is a real failure and propagates.
pub fn union_requirements_loop_free(
    instances: &[SosInstance],
) -> Result<(RequirementSet, usize), FsaError> {
    union_with(instances, 1, &elicit, true)
}

/// Like [`union_requirements_loop_free`], fanned out over `threads`
/// scoped worker threads (bit-identical to the sequential run).
///
/// # Errors
///
/// See [`union_requirements_loop_free`].
pub fn union_requirements_loop_free_threaded(
    instances: &[SosInstance],
    threads: usize,
) -> Result<(RequirementSet, usize), FsaError> {
    union_with(instances, threads, &elicit, true)
}

/// Chunked fork-join union of per-instance elicitations. `skip_cycles`
/// turns [`FsaError::CircularDependency`] into a skip count; all other
/// errors propagate, first-in-instance-order.
fn union_with<F>(
    instances: &[SosInstance],
    threads: usize,
    elicit_fn: &F,
    skip_cycles: bool,
) -> Result<(RequirementSet, usize), FsaError>
where
    F: Fn(&SosInstance) -> Result<ElicitationReport, FsaError> + Sync,
{
    let worker = |chunk: &[SosInstance]| -> Result<(RequirementSet, usize), FsaError> {
        let mut union = RequirementSet::new();
        let mut skipped = 0usize;
        for inst in chunk {
            match elicit_fn(inst) {
                Ok(report) => union = union.union(&report.requirement_set()),
                Err(FsaError::CircularDependency { .. }) if skip_cycles => skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((union, skipped))
    };
    let threads = threads.max(1);
    if threads == 1 || instances.len() < 2 {
        return worker(instances);
    }
    let chunk = instances.len().div_ceil(threads);
    // Join every worker before reporting the first panic, so a second
    // panicking chunk cannot double-panic the scope; a panicked worker
    // surfaces as `FsaError::WorkerPanicked`, not a process abort.
    let joined: JoinedChunks<(RequirementSet, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .chunks(chunk)
            .map(|c| scope.spawn(move || worker(c)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| h.join().map_err(|_| i))
            .collect()
    });
    let mut union = RequirementSet::new();
    let mut skipped = 0usize;
    for chunk_result in joined {
        match chunk_result {
            Ok(Ok((u, s))) => {
                union = union.union(&u);
                skipped += s;
            }
            Ok(Err(e)) => return Err(e),
            Err(chunk) => {
                return Err(FsaError::WorkerPanicked {
                    stage: "explore:union",
                    chunk,
                })
            }
        }
    }
    Ok((union, skipped))
}

/// Result of [`union_requirements_loop_free_supervised`]: the union
/// plus the supervised-run accounting.
#[derive(Debug, Clone)]
pub struct UnionOutcome {
    /// Union of the elicited requirement sets.
    pub requirements: RequirementSet,
    /// Instances skipped as cyclic (loop-freedom exclusion).
    pub loop_skipped: usize,
    /// Instances whose elicitation chunk completed (including cyclic
    /// skips).
    pub elicited: usize,
    /// Instances in the input set.
    pub total: usize,
    /// Quarantined elicitation chunks (every retry panicked); the chunk
    /// index is the instance index.
    pub failures: Vec<ChunkFailure>,
    /// Panicking chunk attempts that were retried.
    pub retries: u64,
    /// `true` if the union stopped early at a cancellation point and
    /// covers only a prefix of the instance set.
    pub cancelled: bool,
}

impl UnionOutcome {
    /// `true` when every instance was elicited (nothing dropped,
    /// nothing cancelled) — the union is then bit-identical to
    /// [`union_requirements_loop_free`].
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.elicited == self.total
    }
}

/// Like [`union_requirements_loop_free_threaded`], executed under the
/// supervised layer: one chunk per instance, panic-isolated and
/// retried; a cancellation (deadline) degrades to a prefix union with
/// explicit coverage in [`UnionOutcome`].
///
/// # Errors
///
/// Propagates non-cycle elicitation errors, smallest instance index
/// first.
pub fn union_requirements_loop_free_supervised(
    instances: &[SosInstance],
    threads: usize,
    supervisor: &Supervisor,
) -> Result<UnionOutcome, FsaError> {
    enum One {
        Set(Box<RequirementSet>),
        Cyclic,
    }
    let outcome = supervisor.run_chunks::<One, FsaError, _>(
        "explore:union",
        threads.max(1),
        instances.len(),
        |i| match elicit(&instances[i]) {
            Ok(report) => Ok(One::Set(Box::new(report.requirement_set()))),
            Err(FsaError::CircularDependency { .. }) => Ok(One::Cyclic),
            Err(e) => Err(e),
        },
    )?;
    let mut requirements = RequirementSet::new();
    let mut loop_skipped = 0usize;
    let elicited = outcome.results.len();
    for (_, one) in outcome.results {
        match one {
            One::Set(set) => requirements = requirements.union(&set),
            One::Cyclic => loop_skipped += 1,
        }
    }
    Ok(UnionOutcome {
        requirements,
        loop_skipped,
        elicited,
        total: instances.len(),
        failures: outcome.failures,
        retries: outcome.retries,
        cancelled: outcome.cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sensor model (one output) and a sink model (input → display).
    fn sensor_and_display() -> Vec<(ComponentModel, usize)> {
        let mut sensor = ComponentModel::new("S", "Op");
        sensor.action("emit(SNS_i,val)");
        let mut display = ComponentModel::new("D", "User_i");
        let rec = display.action("rec(DSP_i,val)");
        let show = display.action("show(DSP_i,val)");
        display.flow(rec, show);
        vec![(sensor, 1), (display, 2)]
    }

    fn rules() -> Vec<ConnectionRule> {
        vec![ConnectionRule::new("S", 0, "D", 0)]
    }

    #[test]
    fn enumerates_and_dedups() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        // Structurally distinct connected compositions:
        //   S alone, D alone, S→D, (2 D: disconnected unless... skipped),
        //   S + 2D with S→both, S→one+other-D (disconnected → skipped).
        let names: Vec<&str> = instances.iter().map(SosInstance::name).collect();
        assert!(!names.is_empty());
        // No two remaining instances are isomorphic.
        for (i, a) in instances.iter().enumerate() {
            for b in instances.iter().skip(i + 1) {
                assert!(
                    !fsa_graph::iso::are_isomorphic(&a.shape_graph(), &b.shape_graph()),
                    "{} ~ {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    fn cache_tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fsa-explore-cache-{name}-{}", std::process::id()));
        p
    }

    /// Two structurally identical models under different names: the
    /// vectors (1,0) and (0,1) instantiate isomorphic compositions,
    /// which only the certificate dedup (not the within-vector orbit
    /// pruning) collapses — guaranteeing certificate hits.
    fn twin_models() -> Vec<(ComponentModel, usize)> {
        let mut a = ComponentModel::new("A", "Op");
        a.action("emit(SNS_i,val)");
        let mut b = ComponentModel::new("B", "Op");
        b.action("emit(SNS_i,val)");
        vec![(a, 2), (b, 2)]
    }

    #[test]
    fn cert_cache_warm_run_is_bit_identical_and_skips_exact_iso() {
        let path = cache_tmp("warm");
        let _ = std::fs::remove_file(&path);
        let options = ExploreOptions {
            require_connected: false,
            cert_cache: Some(path.clone()),
            ..ExploreOptions::default()
        };

        // Cold run: nothing to trust, census saved at the end.
        let cold = enumerate_instances_with_stats(&twin_models(), &[], &options).unwrap();
        assert_eq!(cold.stats.cert_cache_entries, 0);
        assert_eq!(cold.stats.cert_cache_skips, 0);
        assert!(path.exists(), "completed run persists its census");
        assert!(cold.stats.certificate_hits > 0, "universe has duplicates");

        // Warm run: every duplicate is discharged on the cache's word —
        // zero exact-isomorphism fallbacks — and the instance stream is
        // bit-identical to the cold run.
        let warm = enumerate_instances_with_stats(&twin_models(), &[], &options).unwrap();
        assert!(warm.stats.cert_cache_entries > 0);
        assert_eq!(warm.stats.cert_cache_skips, warm.stats.certificate_hits);
        assert_eq!(warm.stats.exact_iso_fallbacks, 0);
        assert_eq!(warm.stats.classes, cold.stats.classes);
        assert_eq!(
            warm.instances
                .iter()
                .map(SosInstance::name)
                .collect::<Vec<_>>(),
            cold.instances
                .iter()
                .map(SosInstance::name)
                .collect::<Vec<_>>()
        );

        // The supervised engine shares the fingerprint and candidate
        // stream, so it consumes the same cache section.
        let sup =
            enumerate_instances_supervised(&twin_models(), &[], &options, &ExecOptions::default())
                .unwrap();
        assert_eq!(sup.stats.exact_iso_fallbacks, 0);
        assert_eq!(sup.stats.cert_cache_skips, sup.stats.certificate_hits);
        assert_eq!(sup.stats.classes, cold.stats.classes);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cert_cache_rejects_checkpoint_and_resume() {
        let path = cache_tmp("ckpt-combo");
        let options = ExploreOptions {
            cert_cache: Some(path.clone()),
            ..ExploreOptions::default()
        };
        let exec = ExecOptions {
            checkpoint: Some(CheckpointSpec {
                path: cache_tmp("ckpt-combo-cp"),
                every: 1,
            }),
            ..ExecOptions::default()
        };
        let err = enumerate_instances_supervised(&sensor_and_display(), &rules(), &options, &exec)
            .unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");
        assert!(!path.exists(), "rejected run must not touch the cache");
    }

    #[test]
    fn corrupt_cert_cache_fails_closed_in_both_engines() {
        let path = cache_tmp("corrupt");
        std::fs::write(&path, b"garbage, not a snapshot").unwrap();
        let options = ExploreOptions {
            cert_cache: Some(path.clone()),
            ..ExploreOptions::default()
        };
        let err =
            enumerate_instances_with_stats(&sensor_and_display(), &rules(), &options).unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");
        let err = enumerate_instances_supervised(
            &sensor_and_display(),
            &rules(),
            &options,
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn connected_filter_drops_disconnected() {
        let all = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let connected =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        assert!(connected.len() < all.len());
    }

    #[test]
    fn union_covers_each_instance() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        let union = union_requirements(&instances).unwrap();
        for inst in &instances {
            let set = elicit(inst).unwrap().requirement_set();
            assert!(set.is_subset(&union), "instance {}", inst.name());
        }
        // The connected S→D composition contributes auth(emit, show, User).
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "emit" && r.consequent.name() == "show"));
    }

    #[test]
    fn threaded_union_is_bit_identical() {
        let instances = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let seq = union_requirements(&instances).unwrap();
        for threads in [2usize, 4, 8] {
            assert_eq!(
                seq,
                union_requirements_threaded(&instances, threads).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn unknown_rule_model_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 0, "GHOST", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn out_of_range_rule_action_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 5, "D", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn candidate_budget_enforced() {
        // Regression: exceeding the budget used to be misreported as
        // `InvalidComponentModel`; it is a dedicated error now.
        let err = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: true,
                max_candidates: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, FsaError::BudgetExceeded { limit: 2 });
    }

    #[test]
    fn budget_truncation_returns_partial_deduped_universe() {
        // Regression: exceeding `max_candidates` mid-enumeration used to
        // throw away *all* work; `BudgetPolicy::Truncate` keeps the
        // deduped partial universe and flags the truncation.
        let full = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!full.stats.truncated);
        let partial = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                max_candidates: 2,
                on_budget: BudgetPolicy::Truncate,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(partial.stats.truncated);
        assert!(partial.stats.candidates <= 2);
        assert!(partial.instances.len() < full.instances.len());
        // The partial universe is still isomorphism-reduced.
        for (i, a) in partial.instances.iter().enumerate() {
            for b in partial.instances.iter().skip(i + 1) {
                assert!(!fsa_graph::iso::are_isomorphic(
                    &a.shape_graph(),
                    &b.shape_graph()
                ));
            }
        }
    }

    #[test]
    fn orbit_pruning_skips_copy_permutations() {
        // With two interchangeable displays, the subsets {S→D1} and
        // {S→D2} are one orbit: exactly one is instantiated.
        let e = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(e.stats.orbits_skipped > 0, "{:?}", e.stats);
        assert!(e.stats.candidates < e.stats.subsets_total);
        assert_eq!(e.stats.classes, e.instances.len());
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        let seq = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let par = enumerate_instances_with_stats(
                &sensor_and_display(),
                &rules(),
                &ExploreOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                seq.instances.len(),
                par.instances.len(),
                "threads {threads}"
            );
            for (a, b) in seq.instances.iter().zip(&par.instances) {
                assert_eq!(a.name(), b.name());
                assert_eq!(a.graph(), b.graph());
            }
            assert_eq!(seq.stats.candidates, par.stats.candidates);
            assert_eq!(seq.stats.orbits_skipped, par.stats.orbits_skipped);
            assert_eq!(seq.stats.classes, par.stats.classes);
        }
    }

    #[test]
    fn loop_free_union_skips_cycles() {
        // Two peers that can send to each other: the both-directions
        // composition is cyclic only if flows form a loop through the
        // same actions — rec → send internal flow creates one.
        let mut peer = ComponentModel::new("P", "U_i");
        let rec = peer.action("rec(P_i,msg)");
        let send = peer.action("send(P_i,msg)");
        peer.flow(rec, send);
        let rules = vec![ConnectionRule::new("P", 1, "P", 0)];
        let instances = enumerate_instances(
            &[(peer, 2)],
            &rules,
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (union, skipped) = union_requirements_loop_free(&instances).unwrap();
        assert!(skipped > 0, "the mutual-send composition is cyclic");
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "rec" && r.consequent.name() == "send"));
    }

    #[test]
    fn loop_free_union_propagates_non_cycle_errors() {
        // Regression: `union_requirements_loop_free` used to count
        // *every* error as a loop-skip, silently mislabelling real
        // elicitation failures as cycle exclusions. A deliberately
        // invalid instance (here: an elicitor that rejects it with a
        // non-circular error) must propagate.
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        let invalid_name = instances[0].name().to_owned();
        let failing = |inst: &SosInstance| -> Result<ElicitationReport, FsaError> {
            if inst.name() == invalid_name {
                Err(FsaError::UnknownAction("ghost(X,val)".to_owned()))
            } else {
                elicit(inst)
            }
        };
        for threads in [1usize, 4] {
            let err = union_with(&instances, threads, &failing, true).unwrap_err();
            assert_eq!(
                err,
                FsaError::UnknownAction("ghost(X,val)".to_owned()),
                "threads {threads}"
            );
        }
        // Circular dependencies are still skipped, not propagated.
        let cyclic = |_: &SosInstance| -> Result<ElicitationReport, FsaError> {
            Err(FsaError::CircularDependency {
                first: crate::action::Action::parse("a"),
                second: crate::action::Action::parse("b"),
            })
        };
        let (union, skipped) = union_with(&instances, 1, &cyclic, true).unwrap();
        assert!(union.is_empty());
        assert_eq!(skipped, instances.len());
    }

    #[test]
    fn union_worker_panic_is_worker_panicked_not_abort() {
        // Satellite regression: the *non-supervised* fork-join paths
        // used to `expect()` on worker joins, turning any panicking
        // elicitor into a process abort. They now surface as
        // `FsaError::WorkerPanicked` with the stage and chunk.
        let instances = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(instances.len() >= 2, "need at least two chunks");
        let exploding = |_: &SosInstance| -> Result<ElicitationReport, FsaError> {
            panic!("elicitor exploded")
        };
        let err = union_with(&instances, 4, &exploding, true).unwrap_err();
        match err {
            FsaError::WorkerPanicked { stage, .. } => assert_eq!(stage, "explore:union"),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn supervised_matches_legacy_bit_identically() {
        let legacy = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            let sup = enumerate_instances_supervised(
                &sensor_and_display(),
                &rules(),
                &ExploreOptions {
                    threads,
                    ..Default::default()
                },
                &ExecOptions::default(),
            )
            .unwrap();
            assert_eq!(
                legacy.instances.len(),
                sup.instances.len(),
                "threads {threads}"
            );
            for (a, b) in legacy.instances.iter().zip(&sup.instances) {
                assert_eq!(a.name(), b.name());
                assert_eq!(a.graph(), b.graph());
            }
            assert_eq!(legacy.stats.candidates, sup.stats.candidates);
            assert_eq!(legacy.stats.subsets_total, sup.stats.subsets_total);
            assert_eq!(legacy.stats.orbits_skipped, sup.stats.orbits_skipped);
            assert_eq!(legacy.stats.classes, sup.stats.classes);
            assert_eq!(legacy.stats.certificate_hits, sup.stats.certificate_hits);
            assert_eq!(
                legacy.stats.exact_iso_fallbacks,
                sup.stats.exact_iso_fallbacks
            );
            assert_eq!(
                legacy.stats.disconnected_skipped,
                sup.stats.disconnected_skipped
            );
            assert_eq!(sup.stats.vectors_completed, sup.stats.vectors_total);
            assert_eq!(sup.stats.candidates_built, sup.stats.candidates);
            assert!(!sup.stats.cancelled && !sup.stats.resumed);
        }
    }

    #[test]
    fn supervised_union_matches_threaded_union() {
        let instances = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (golden, golden_skipped) = union_requirements_loop_free(&instances).unwrap();
        for threads in [1usize, 4] {
            let out =
                union_requirements_loop_free_supervised(&instances, threads, &Supervisor::new())
                    .unwrap();
            assert!(out.is_complete(), "threads {threads}");
            assert_eq!(out.requirements, golden);
            assert_eq!(out.loop_skipped, golden_skipped);
            assert!(out.failures.is_empty());
            assert!(!out.cancelled);
        }
    }

    #[test]
    fn resume_is_bit_identical_at_every_interruption_point() {
        // Drive the supervised engine with a countdown cancellation
        // token that trips after k boundary checks, for every k until
        // the run completes uninterrupted; resuming each partial run
        // must reproduce the golden result exactly. batch=1/every=1
        // maximises checkpoint granularity.
        let models = sensor_and_display();
        let rules = rules();
        let options = ExploreOptions {
            threads: 2,
            ..Default::default()
        };
        let golden =
            enumerate_instances_supervised(&models, &rules, &options, &ExecOptions::default())
                .unwrap();
        let path = std::env::temp_dir().join(format!(
            "fsa_explore_resume_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut interruptions = 0usize;
        for k in 1u64..200 {
            let exec = ExecOptions {
                supervisor: Supervisor::new().with_cancel(CancelToken::countdown(k)),
                batch: 1,
                checkpoint: Some(CheckpointSpec {
                    path: path.clone(),
                    every: 1,
                }),
                resume: None,
            };
            let partial = enumerate_instances_supervised(&models, &rules, &options, &exec).unwrap();
            if !partial.stats.cancelled {
                break;
            }
            interruptions += 1;
            assert!(
                partial.stats.vectors_completed < partial.stats.vectors_total
                    || partial.stats.candidates_built < partial.stats.candidates,
                "a cancelled run must report incomplete coverage: {:?}",
                partial.stats
            );
            let resumed = enumerate_instances_supervised(
                &models,
                &rules,
                &options,
                &ExecOptions {
                    resume: Some(path.clone()),
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(resumed.stats.resumed, "k = {k}");
            assert_eq!(golden.instances.len(), resumed.instances.len(), "k = {k}");
            for (a, b) in golden.instances.iter().zip(&resumed.instances) {
                assert_eq!(a.name(), b.name(), "k = {k}");
                assert_eq!(a.graph(), b.graph(), "k = {k}");
            }
            assert_eq!(golden.stats.candidates, resumed.stats.candidates, "k = {k}");
            assert_eq!(golden.stats.subsets_total, resumed.stats.subsets_total);
            assert_eq!(golden.stats.orbits_skipped, resumed.stats.orbits_skipped);
            assert_eq!(golden.stats.classes, resumed.stats.classes);
            assert_eq!(
                golden.stats.certificate_hits,
                resumed.stats.certificate_hits
            );
            assert_eq!(
                golden.stats.exact_iso_fallbacks,
                resumed.stats.exact_iso_fallbacks
            );
            assert_eq!(
                golden.stats.disconnected_skipped,
                resumed.stats.disconnected_skipped
            );
            assert_eq!(resumed.stats.vectors_completed, resumed.stats.vectors_total);
        }
        assert!(interruptions > 0, "the countdown never interrupted the run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_configuration_mismatch() {
        let models = sensor_and_display();
        let rules = rules();
        let path = std::env::temp_dir().join(format!(
            "fsa_explore_skew_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        let exec = ExecOptions {
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 1,
            }),
            ..Default::default()
        };
        enumerate_instances_supervised(&models, &rules, &ExploreOptions::default(), &exec).unwrap();
        // Same checkpoint, different configuration: rejected cleanly.
        let err = enumerate_instances_supervised(
            &models,
            &rules,
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
            &ExecOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, FsaError::CorruptCheckpoint { .. }),
            "got {err:?}"
        );
        // Missing file: also a clean CorruptCheckpoint.
        std::fs::remove_file(&path).ok();
        let err = enumerate_instances_supervised(
            &models,
            &rules,
            &ExploreOptions::default(),
            &ExecOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn observed_exploration_matches_unobserved_and_stats_are_a_snapshot_view() {
        let models = sensor_and_display();
        let rules = rules();
        let plain = enumerate_instances_with_stats(&models, &rules, &ExploreOptions::default())
            .expect("legacy engine");

        // Legacy engine, observed.
        let obs = Obs::enabled();
        let observed = enumerate_instances_with_stats(
            &models,
            &rules,
            &ExploreOptions {
                obs: obs.clone(),
                ..Default::default()
            },
        )
        .expect("observed legacy engine");
        assert_eq!(observed.instances.len(), plain.instances.len());
        for (a, b) in plain.instances.iter().zip(&observed.instances) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.graph(), b.graph());
        }
        let snap = obs.snapshot();
        let view = ExploreStats::from_snapshot(&snap).unwrap();
        assert_eq!(format!("{}", view), format!("{}", observed.stats));
        assert_eq!(snap.span_count("explore"), 1);
        assert!(snap.span_count("explore.scan") >= 1);
        assert!(snap.span_count("explore.build") >= 1);
        assert!(snap.span_count("explore.dedup") >= 1);

        // Supervised engine, observed, with checkpoint timing.
        let path = std::env::temp_dir().join(format!(
            "fsa_explore_obs_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        let obs = Obs::enabled();
        let exec = ExecOptions {
            supervisor: Supervisor::new().with_obs(obs.clone()),
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 1,
            }),
            ..Default::default()
        };
        let sup =
            enumerate_instances_supervised(&models, &rules, &ExploreOptions::default(), &exec)
                .expect("supervised engine");
        assert_eq!(sup.instances.len(), plain.instances.len());
        let snap = obs.snapshot();
        let view = ExploreStats::from_snapshot(&snap).unwrap();
        assert_eq!(format!("{}", view), format!("{}", sup.stats));
        assert!(snap.span_count("checkpoint.write") >= 1);
        assert_eq!(
            snap.counter("explore.checkpoints_written"),
            Some(sup.stats.checkpoints_written as u64)
        );
        assert_eq!(
            snap.histogram("checkpoint.write").map(|h| h.count),
            Some(sup.stats.checkpoints_written as u64)
        );
        assert_eq!(
            snap.counter("supervisor.chunks"),
            Some(sup.stats.candidates_built as u64)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_inconsistent_counters() {
        // Regression: checkpoint counters used to be re-based with
        // `(offset + n as i64).max(0) as usize`, silently clamping a
        // wrapped/underflowed counter to zero. A tampered (or
        // bit-rotted) counter must instead fail closed.
        let models = sensor_and_display();
        let rules = rules();
        let path = std::env::temp_dir().join(format!(
            "fsa_explore_badctr_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        let exec = ExecOptions {
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 1,
            }),
            ..Default::default()
        };
        enumerate_instances_supervised(&models, &rules, &ExploreOptions::default(), &exec).unwrap();

        // Tamper: a counter far beyond any reachable magnitude (wraps
        // negative through an unchecked `as i64` conversion).
        let mut cp = ExploreCheckpoint::read(&path).unwrap();
        cp.counters.certificate_hits = usize::MAX;
        cp.write(&path).unwrap();
        let err = enumerate_instances_supervised(
            &models,
            &rules,
            &ExploreOptions::default(),
            &ExecOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, FsaError::CorruptCheckpoint { reason }
                if reason.contains("certificate-hit")),
            "got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counter_rebase_fails_closed_on_underflow() {
        assert_eq!(rebase_counter(-3, 10, "certificate-hit").unwrap(), 7);
        assert_eq!(rebase_counter(5, 0, "certificate-hit").unwrap(), 5);
        let err = rebase_counter(-11, 10, "certificate-hit").unwrap_err();
        assert!(
            matches!(&err, FsaError::CorruptCheckpoint { reason }
                if reason.contains("underflow")),
            "got {err:?}"
        );
        assert!(resume_offset(usize::MAX, 0, "certificate-hit").is_err());
        assert_eq!(resume_offset(3, 10, "certificate-hit").unwrap(), -7);
    }

    #[test]
    fn resume_from_completed_checkpoint_is_idempotent() {
        let models = sensor_and_display();
        let rules = rules();
        let path = std::env::temp_dir().join(format!(
            "fsa_explore_idem_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        let exec = ExecOptions {
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 1,
            }),
            ..Default::default()
        };
        let golden =
            enumerate_instances_supervised(&models, &rules, &ExploreOptions::default(), &exec)
                .unwrap();
        let resumed = enumerate_instances_supervised(
            &models,
            &rules,
            &ExploreOptions::default(),
            &ExecOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(resumed.stats.resumed);
        assert_eq!(golden.instances.len(), resumed.instances.len());
        for (a, b) in golden.instances.iter().zip(&resumed.instances) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.graph(), b.graph());
        }
        assert_eq!(golden.stats.candidates, resumed.stats.candidates);
        assert_eq!(
            golden.stats.certificate_hits,
            resumed.stats.certificate_hits
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deadline_cancellation_degrades_to_partial_with_coverage() {
        // An already-expired deadline cancels at the first boundary:
        // the run returns an empty partial universe with full coverage
        // accounting instead of hanging or erroring.
        let exec = ExecOptions {
            supervisor: Supervisor::new().with_cancel(CancelToken::with_deadline(Duration::ZERO)),
            ..Default::default()
        };
        let out = enumerate_instances_supervised(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
            &exec,
        )
        .unwrap();
        assert!(out.stats.cancelled);
        assert_eq!(out.stats.vectors_completed, 0);
        assert!(out.stats.vectors_total > 0);
        assert!(out.instances.is_empty());
        let rendered = out.stats.to_string();
        assert!(rendered.contains("cancelled"), "{rendered}");
        assert!(rendered.contains("vector coverage"), "{rendered}");
    }

    #[test]
    fn stats_render_mentions_key_counters() {
        let e = enumerate_instances_with_stats(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let rendered = e.stats.to_string();
        for needle in ["candidates", "classes", "orbit-skipped", "certificate hits"] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }

    #[test]
    fn shard_partition_is_exact_and_ordered() {
        for total in [0u64, 1, 2, 5, 7, 26, 100] {
            for shards in [1usize, 2, 3, 4, 7, 150] {
                let parts = ShardRange::partition(total, shards);
                assert_eq!(parts.len(), shards, "total {total} shards {shards}");
                // Contiguous, in order, no gap, no overlap, full cover.
                let mut cursor = 0u64;
                for part in &parts {
                    assert_eq!(part.start, cursor, "total {total} shards {shards}");
                    assert!(part.end >= part.start);
                    cursor = part.end;
                }
                assert_eq!(cursor, total, "total {total} shards {shards}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<u64> = parts.iter().map(ShardRange::len).collect();
                let min = sizes.iter().min().copied().unwrap();
                let max = sizes.iter().max().copied().unwrap();
                assert!(max - min <= 1, "total {total} shards {shards}: {sizes:?}");
            }
        }
        // Zero shards is clamped to one covering shard.
        assert_eq!(ShardRange::partition(9, 0), vec![ShardRange::new(0, 9)]);
    }

    #[test]
    fn shard_rejected_by_legacy_engine_and_bad_ranges() {
        let models = sensor_and_display();
        let shard = Some(ShardRange::new(0, 1));
        let err = enumerate_instances_with_stats(
            &models,
            &rules(),
            &ExploreOptions {
                shard,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidShard { .. }), "{err}");

        let exec = ExecOptions::default();
        // start beyond end.
        let err = enumerate_instances_supervised(
            &models,
            &rules(),
            &ExploreOptions {
                shard: Some(ShardRange { start: 3, end: 2 }),
                ..Default::default()
            },
            &exec,
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidShard { .. }), "{err}");
        // end beyond the universe.
        let total = vector_space(&models);
        let err = enumerate_instances_supervised(
            &models,
            &rules(),
            &ExploreOptions {
                shard: Some(ShardRange::new(0, total + 1)),
                ..Default::default()
            },
            &exec,
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidShard { .. }), "{err}");
        // Budget truncation is not shard-deterministic.
        let err = enumerate_instances_supervised(
            &models,
            &rules(),
            &ExploreOptions {
                shard: Some(ShardRange::new(0, 1)),
                on_budget: BudgetPolicy::Truncate,
                max_candidates: 1,
                ..Default::default()
            },
            &exec,
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidShard { .. }), "{err}");
    }

    #[test]
    fn sharded_runs_merge_bit_identically() {
        let models = sensor_and_display();
        let rules = rules();
        for require_connected in [true, false] {
            let options = ExploreOptions {
                require_connected,
                ..Default::default()
            };
            let exec = ExecOptions::default();
            let golden = enumerate_instances_supervised(&models, &rules, &options, &exec).unwrap();
            let total = vector_space(&models);
            for shards in [1usize, 2, 3, 5, 11] {
                let mut log: Vec<(u64, u64)> = Vec::new();
                let mut candidates = 0usize;
                for range in ShardRange::partition(total, shards) {
                    let part = enumerate_instances_supervised(
                        &models,
                        &rules,
                        &ExploreOptions {
                            shard: Some(range),
                            ..options.clone()
                        },
                        &exec,
                    )
                    .unwrap();
                    assert!(!part.stats.cancelled);
                    candidates += part.stats.candidates;
                    log.extend_from_slice(&part.accepted);
                }
                let merged = merge_accepted(&models, &rules, &log).unwrap();
                assert_eq!(
                    merged.instances.len(),
                    golden.instances.len(),
                    "shards {shards} connected {require_connected}"
                );
                for (a, b) in golden.instances.iter().zip(&merged.instances) {
                    assert_eq!(a.name(), b.name());
                    assert_eq!(a.graph(), b.graph());
                }
                assert_eq!(merged.accepted, golden.accepted);
                // Every shard scans its own slice of the lattice, so the
                // summed candidate count matches the unsharded run.
                assert_eq!(candidates, golden.stats.candidates, "shards {shards}");
            }
        }
    }

    #[test]
    fn merge_rejects_unsorted_and_out_of_range_logs() {
        let models = sensor_and_display();
        let rules = rules();
        let err = merge_accepted(&models, &rules, &[(1, 0), (0, 0)]).unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }), "{err}");
        let total = vector_space(&models);
        let err = merge_accepted(&models, &rules, &[(total, 0)]).unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }), "{err}");
        let err = merge_accepted(&models, &rules, &[(0, u64::MAX)]).unwrap_err();
        assert!(matches!(err, FsaError::CorruptCheckpoint { .. }), "{err}");
    }
}
