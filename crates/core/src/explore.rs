//! Enumeration of SoS instances from component models.
//!
//! §4.2 of the paper: "In order to model instances of the global system
//! of systems, all structurally different combinations of component
//! instances shall be considered. Isomorphic combinations can be
//! neglected." And §4.4: "the union of all these requirements for the
//! different instances poses the set of requirements for the whole
//! system."
//!
//! [`enumerate_instances`] generates every composition of component
//! instances (up to per-model multiplicity bounds) and every subset of
//! the external flows allowed by the [`ConnectionRule`]s, de-duplicates
//! the results up to isomorphism of their shape graphs, and optionally
//! keeps only weakly connected compositions. [`union_requirements`]
//! elicits and unions the requirement sets.

use crate::component_model::{ComponentModel, TemplateActionId};
use crate::error::FsaError;
use crate::instance::{SosInstance, SosInstanceBuilder};
use crate::manual::elicit;
use crate::requirements::RequirementSet;
use fsa_graph::NodeId;

/// An allowed external flow: an output action of one component model
/// may feed an input action of another component instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRule {
    /// Name of the source component model.
    pub from_model: String,
    /// Template action in the source model (e.g. `send`).
    pub from_action: TemplateActionId,
    /// Name of the target component model.
    pub to_model: String,
    /// Template action in the target model (e.g. `rec`).
    pub to_action: TemplateActionId,
}

impl ConnectionRule {
    /// Creates a rule.
    pub fn new(
        from_model: &str,
        from_action: TemplateActionId,
        to_model: &str,
        to_action: TemplateActionId,
    ) -> Self {
        ConnectionRule {
            from_model: from_model.to_owned(),
            from_action,
            to_model: to_model.to_owned(),
            to_action,
        }
    }
}

/// Bounds for the enumeration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Keep only weakly connected compositions (the paper's instances
    /// are connected collaborations).
    pub require_connected: bool,
    /// Abort after this many *candidate* compositions (pre-dedup).
    pub max_candidates: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            require_connected: true,
            max_candidates: 100_000,
        }
    }
}

/// Enumerates the structurally different SoS instances built from
/// `models` — each given with its maximum multiplicity — under the
/// connection rules.
///
/// # Errors
///
/// * [`FsaError::InvalidComponentModel`] if a model fails validation, a
///   rule references an unknown model/action, or the enumeration
///   exceeds `options.max_candidates`.
pub fn enumerate_instances(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    options: &ExploreOptions,
) -> Result<Vec<SosInstance>, FsaError> {
    for (m, _) in models {
        m.validate()?;
    }
    for rule in rules {
        for (name, action, side) in [
            (&rule.from_model, rule.from_action, "source"),
            (&rule.to_model, rule.to_action, "target"),
        ] {
            let model = models
                .iter()
                .map(|(m, _)| m)
                .find(|m| m.name() == name)
                .ok_or_else(|| FsaError::InvalidComponentModel {
                    reason: format!("connection rule references unknown {side} model `{name}`"),
                })?;
            if action >= model.actions().len() {
                return Err(FsaError::InvalidComponentModel {
                    reason: format!(
                        "connection rule references {side} action {action} out of range for `{name}`"
                    ),
                });
            }
        }
    }

    // Enumerate multiplicities: the cartesian product of 0..=max per
    // model, skipping the empty composition.
    let mut result: Vec<SosInstance> = Vec::new();
    let mut candidates = 0usize;
    let mut counts = vec![0usize; models.len()];
    loop {
        // Advance the counter (odometer); first iteration is all zeros.
        if counts.iter().sum::<usize>() > 0 {
            build_compositions(
                models,
                rules,
                &counts,
                options,
                &mut candidates,
                &mut result,
            )?;
        }
        let mut i = 0;
        loop {
            if i == models.len() {
                let deduped = SosInstance::dedup_isomorphic(result);
                return Ok(deduped);
            }
            counts[i] += 1;
            if counts[i] <= models[i].1 {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
    }
}

/// Builds every connection-subset composition for one multiplicity
/// vector.
fn build_compositions(
    models: &[(ComponentModel, usize)],
    rules: &[ConnectionRule],
    counts: &[usize],
    options: &ExploreOptions,
    candidates: &mut usize,
    result: &mut Vec<SosInstance>,
) -> Result<(), FsaError> {
    // Instantiate all components once to discover the candidate flows.
    // (Rebuilt per subset below; models are small.)
    let name = |counts: &[usize]| {
        models
            .iter()
            .zip(counts)
            .filter(|(_, c)| **c > 0)
            .map(|((m, _), c)| format!("{}x{}", c, m.name()))
            .collect::<Vec<_>>()
            .join("+")
    };

    // Candidate external flows: for each rule, each ordered pair of
    // distinct instances of the involved models.
    #[derive(Clone, Copy)]
    struct Candidate {
        rule: usize,
        from_copy: usize,
        to_copy: usize,
    }
    let mut flows: Vec<Candidate> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        let from_idx = models.iter().position(|(m, _)| m.name() == rule.from_model);
        let to_idx = models.iter().position(|(m, _)| m.name() == rule.to_model);
        let (Some(fi), Some(ti)) = (from_idx, to_idx) else {
            continue;
        };
        for fc in 0..counts[fi] {
            for tc in 0..counts[ti] {
                if fi == ti && fc == tc {
                    continue; // no self-connection
                }
                flows.push(Candidate {
                    rule: ri,
                    from_copy: fc,
                    to_copy: tc,
                });
            }
        }
    }

    // Every subset of candidate flows.
    let subsets: usize =
        1usize
            .checked_shl(flows.len() as u32)
            .ok_or_else(|| FsaError::InvalidComponentModel {
                reason: "too many candidate external flows to enumerate".to_owned(),
            })?;
    for mask in 0..subsets {
        *candidates += 1;
        if *candidates > options.max_candidates {
            return Err(FsaError::InvalidComponentModel {
                reason: format!(
                    "instance enumeration exceeded {} candidates",
                    options.max_candidates
                ),
            });
        }
        let mut builder = SosInstanceBuilder::new(&name(counts));
        // Instantiate components with global per-model indices 1, 2, …
        let mut handles: Vec<Vec<crate::component_model::ComponentInstance>> = Vec::new();
        for (mi, (model, _)) in models.iter().enumerate() {
            let mut copies = Vec::new();
            for c in 0..counts[mi] {
                let index =
                    if counts[mi] == 1 && model.actions().iter().all(|a| a.indices().is_empty()) {
                        String::new()
                    } else {
                        (c + 1).to_string()
                    };
                copies.push(model.instantiate(&index, &mut builder)?);
            }
            handles.push(copies);
        }
        for (k, cand) in flows.iter().enumerate() {
            if mask & (1 << k) == 0 {
                continue;
            }
            let rule = &rules[cand.rule];
            let fi = models
                .iter()
                .position(|(m, _)| m.name() == rule.from_model)
                .expect("validated");
            let ti = models
                .iter()
                .position(|(m, _)| m.name() == rule.to_model)
                .expect("validated");
            let from = handles[fi][cand.from_copy].node(rule.from_action);
            let to = handles[ti][cand.to_copy].node(rule.to_action);
            builder.flow(from, to);
        }
        let instance = builder.build();
        if options.require_connected && !is_weakly_connected(&instance) {
            continue;
        }
        result.push(instance);
    }
    Ok(())
}

/// Weak connectivity of the action graph (single component, ignoring
/// edge direction). The empty graph counts as connected.
fn is_weakly_connected(instance: &SosInstance) -> bool {
    let g = instance.graph();
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId::new(0)];
    seen[0] = true;
    let mut visited = 1;
    while let Some(v) = stack.pop() {
        for u in g.successors(v).chain(g.predecessors(v)) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                visited += 1;
                stack.push(u);
            }
        }
    }
    visited == n
}

/// Elicits every instance and unions the requirement sets (§4.4).
///
/// # Errors
///
/// Propagates elicitation errors (e.g. a cyclic composition produced by
/// bidirectional connection rules).
pub fn union_requirements(instances: &[SosInstance]) -> Result<RequirementSet, FsaError> {
    let mut union = RequirementSet::new();
    for inst in instances {
        union = union.union(&elicit(inst)?.requirement_set());
    }
    Ok(union)
}

/// Like [`union_requirements`], but skips instances whose composition is
/// cyclic (bidirectional rules can produce `A sends to B sends to A`
/// loops, which the paper's loop-freedom assumption excludes). Returns
/// the union together with the number of skipped instances.
pub fn union_requirements_loop_free(instances: &[SosInstance]) -> (RequirementSet, usize) {
    let mut union = RequirementSet::new();
    let mut skipped = 0usize;
    for inst in instances {
        match elicit(inst) {
            Ok(report) => union = union.union(&report.requirement_set()),
            Err(FsaError::CircularDependency { .. }) => skipped += 1,
            Err(_) => skipped += 1,
        }
    }
    (union, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sensor model (one output) and a sink model (input → display).
    fn sensor_and_display() -> Vec<(ComponentModel, usize)> {
        let mut sensor = ComponentModel::new("S", "Op");
        sensor.action("emit(SNS_i,val)");
        let mut display = ComponentModel::new("D", "User_i");
        let rec = display.action("rec(DSP_i,val)");
        let show = display.action("show(DSP_i,val)");
        display.flow(rec, show);
        vec![(sensor, 1), (display, 2)]
    }

    fn rules() -> Vec<ConnectionRule> {
        vec![ConnectionRule::new("S", 0, "D", 0)]
    }

    #[test]
    fn enumerates_and_dedups() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        // Structurally distinct connected compositions:
        //   S alone, D alone, S→D, (2 D: disconnected unless... skipped),
        //   S + 2D with S→both, S→one+other-D (disconnected → skipped).
        let names: Vec<&str> = instances.iter().map(SosInstance::name).collect();
        assert!(!names.is_empty());
        // No two remaining instances are isomorphic.
        for (i, a) in instances.iter().enumerate() {
            for b in instances.iter().skip(i + 1) {
                assert!(
                    !fsa_graph::iso::are_isomorphic(&a.shape_graph(), &b.shape_graph()),
                    "{} ~ {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn connected_filter_drops_disconnected() {
        let all = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let connected =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        assert!(connected.len() < all.len());
    }

    #[test]
    fn union_covers_each_instance() {
        let instances =
            enumerate_instances(&sensor_and_display(), &rules(), &ExploreOptions::default())
                .unwrap();
        let union = union_requirements(&instances).unwrap();
        for inst in &instances {
            let set = elicit(inst).unwrap().requirement_set();
            assert!(set.is_subset(&union), "instance {}", inst.name());
        }
        // The connected S→D composition contributes auth(emit, show, User).
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "emit" && r.consequent.name() == "show"));
    }

    #[test]
    fn unknown_rule_model_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 0, "GHOST", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn out_of_range_rule_action_rejected() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &[ConnectionRule::new("S", 5, "D", 0)],
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn candidate_budget_enforced() {
        let err = enumerate_instances(
            &sensor_and_display(),
            &rules(),
            &ExploreOptions {
                require_connected: true,
                max_candidates: 2,
            },
        )
        .unwrap_err();
        assert!(matches!(err, FsaError::InvalidComponentModel { .. }));
    }

    #[test]
    fn loop_free_union_skips_cycles() {
        // Two peers that can send to each other: the both-directions
        // composition is cyclic only if flows form a loop through the
        // same actions — rec → send internal flow creates one.
        let mut peer = ComponentModel::new("P", "U_i");
        let rec = peer.action("rec(P_i,msg)");
        let send = peer.action("send(P_i,msg)");
        peer.flow(rec, send);
        let rules = vec![ConnectionRule::new("P", 1, "P", 0)];
        let instances = enumerate_instances(
            &[(peer, 2)],
            &rules,
            &ExploreOptions {
                require_connected: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (union, skipped) = union_requirements_loop_free(&instances);
        assert!(skipped > 0, "the mutual-send composition is cyclic");
        assert!(union
            .iter()
            .any(|r| r.antecedent.name() == "rec" && r.consequent.name() == "send"));
    }
}
