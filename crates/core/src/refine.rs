//! Refinement of end-to-end requirements into hop requirements.
//!
//! §6 of the paper: "Starting from this set of very high-level
//! requirements, the security engineering process may proceed. …
//! Accordingly the requirements have to be refined to more concrete
//! requirements in this process."
//!
//! The method deliberately elicits *end-to-end* requirements, free of
//! "premature assumptions … such as hop-by-hop versus end-to-end
//! security measures" (§1). Once an architecture is chosen, a sound
//! decomposition is possible along the *unavoidable intermediates* of
//! the dependency: actions that every functional path from the
//! antecedent to the consequent passes. Refining
//! `auth(a, b, P)` along unavoidable `m₁ < m₂ < … < mₖ` yields the hop
//! chain
//!
//! ```text
//!   auth(a, m₁, stakeholder(m₁)), auth(m₁, m₂, stakeholder(m₂)), …,
//!   auth(mₖ, b, P)
//! ```
//!
//! whose conjunction implies the original requirement (each hop
//! guarantees its predecessor happened; transitively, `a` happened).
//! Branching segments (no unavoidable intermediate) stay end-to-end —
//! exactly the cases where a hop-by-hop realisation would be unsound.

use crate::action::Action;
use crate::error::FsaError;
use crate::instance::SosInstance;
use crate::requirements::AuthRequirement;
use fsa_graph::path::unavoidable_intermediates;

/// One refinement step: the hop chain of a requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// The original end-to-end requirement.
    pub original: AuthRequirement,
    /// The hop requirements (length 1 = no decomposition possible).
    pub hops: Vec<AuthRequirement>,
}

impl Refinement {
    /// Returns `true` if the requirement could be decomposed.
    pub fn is_decomposed(&self) -> bool {
        self.hops.len() > 1
    }

    /// The intermediate actions the decomposition passes through.
    pub fn intermediates(&self) -> Vec<&Action> {
        self.hops.iter().skip(1).map(|h| &h.antecedent).collect()
    }
}

/// Refines `req` against the architecture described by `instance`.
///
/// # Errors
///
/// Returns [`FsaError::UnknownAction`] if the requirement's actions are
/// not part of the instance.
pub fn refine(instance: &SosInstance, req: &AuthRequirement) -> Result<Refinement, FsaError> {
    let a = instance
        .find(&req.antecedent)
        .ok_or_else(|| FsaError::UnknownAction(req.antecedent.to_string()))?;
    let b = instance
        .find(&req.consequent)
        .ok_or_else(|| FsaError::UnknownAction(req.consequent.to_string()))?;
    let mids = unavoidable_intermediates(instance.graph(), a, b);
    let mut waypoints = vec![a];
    waypoints.extend(mids);
    waypoints.push(b);
    let hops = waypoints
        .windows(2)
        .map(|w| {
            AuthRequirement::new(
                instance.action(w[0]).clone(),
                instance.action(w[1]).clone(),
                instance.stakeholder(w[1]).clone(),
            )
        })
        .collect();
    Ok(Refinement {
        original: req.clone(),
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Agent;
    use crate::instance::SosInstanceBuilder;
    use crate::manual::elicit;

    fn fig3() -> SosInstance {
        let mut b = SosInstanceBuilder::new("fig3");
        let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        let pos1 = b.action(Action::parse("pos(GPS_1,pos)"), "D_1");
        let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let rec = b.action(Action::parse("rec(CU_w,cam(pos))"), "D_w");
        let posw = b.action(Action::parse("pos(GPS_w,pos)"), "D_w");
        let show = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
        b.flow(sense, send);
        b.flow(pos1, send);
        b.flow(send, rec);
        b.flow(rec, show);
        b.flow(posw, show);
        b.build()
    }

    #[test]
    fn refines_sense_to_show_into_three_hops() {
        let inst = fig3();
        let req = AuthRequirement::new(
            Action::parse("sense(ESP_1,sW)"),
            Action::parse("show(HMI_w,warn)"),
            Agent::new("D_w"),
        );
        let refinement = refine(&inst, &req).unwrap();
        assert!(refinement.is_decomposed());
        let rendered: Vec<String> = refinement.hops.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![
                "auth(sense(ESP_1,sW), send(CU_1,cam(pos)), D_1)",
                "auth(send(CU_1,cam(pos)), rec(CU_w,cam(pos)), D_w)",
                "auth(rec(CU_w,cam(pos)), show(HMI_w,warn), D_w)",
            ]
        );
        assert_eq!(refinement.intermediates().len(), 2);
    }

    #[test]
    fn direct_dependency_stays_single_hop() {
        let inst = fig3();
        let req = AuthRequirement::new(
            Action::parse("pos(GPS_w,pos)"),
            Action::parse("show(HMI_w,warn)"),
            Agent::new("D_w"),
        );
        let refinement = refine(&inst, &req).unwrap();
        assert!(!refinement.is_decomposed());
        assert_eq!(refinement.hops, vec![req]);
    }

    #[test]
    fn branching_segment_not_decomposed() {
        // a → (x | y) → b: no unavoidable intermediate.
        let mut bld = SosInstanceBuilder::new("branch");
        let a = bld.action(Action::parse("a"), "P");
        let x = bld.action(Action::parse("x"), "P");
        let y = bld.action(Action::parse("y"), "P");
        let b = bld.action(Action::parse("b"), "P");
        bld.flow(a, x);
        bld.flow(a, y);
        bld.flow(x, b);
        bld.flow(y, b);
        let inst = bld.build();
        let req = AuthRequirement::new(Action::parse("a"), Action::parse("b"), Agent::new("P"));
        let refinement = refine(&inst, &req).unwrap();
        assert_eq!(refinement.hops.len(), 1, "no sound decomposition exists");
    }

    #[test]
    fn refinement_of_all_elicited_requirements() {
        let inst = fig3();
        for req in elicit(&inst).unwrap().requirements() {
            let refinement = refine(&inst, &req).unwrap();
            // First hop starts at the antecedent, last ends at the consequent.
            assert_eq!(refinement.hops.first().unwrap().antecedent, req.antecedent);
            assert_eq!(refinement.hops.last().unwrap().consequent, req.consequent);
            // Consecutive hops chain.
            for w in refinement.hops.windows(2) {
                assert_eq!(w[0].consequent, w[1].antecedent);
            }
        }
    }

    #[test]
    fn unknown_action_rejected() {
        let inst = fig3();
        let req = AuthRequirement::new(Action::parse("ghost"), Action::parse("b"), Agent::new("P"));
        assert!(matches!(
            refine(&inst, &req),
            Err(FsaError::UnknownAction(_))
        ));
    }
}
