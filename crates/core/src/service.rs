//! Resident-service abstraction over the analysis engines.
//!
//! The one-shot CLI re-parses the specification and re-derives APA
//! reachability on every invocation. A *resident* deployment (the
//! `fsa-serve` crate) instead holds a parsed, interned, immutable model
//! behind an [`Arc<LoadedModel>`] and answers repeated queries against
//! it. This module defines the seam between the two worlds:
//!
//! * [`Query`] — one command (`elicit`, `explore`, `monitor`, …) with
//!   its CLI-style argument vector;
//! * [`Rendered`] — the fully rendered outcome: exact stdout/stderr
//!   bytes plus the process exit code the one-shot CLI would have
//!   produced. Byte-identity between serving and one-shot modes is by
//!   construction: both call the same runner that fills a `Rendered`;
//! * [`ServiceCtx`] — per-request execution context: the observability
//!   handle the host threads through and an optional
//!   [`CancelToken`] carrying the request deadline;
//! * [`Service`] — a session-scoped engine answering queries against
//!   its preloaded state;
//! * [`LoadedModel`] — the immutable parsed-specification handle a
//!   session shares across requests (parsing stays in the layers above
//!   `fsa-core`, which deliberately does not depend on `speclang`).

use crate::instance::SosInstance;
use fsa_exec::CancelToken;
use fsa_obs::Obs;
use std::fmt;
use std::sync::Arc;

/// One request against a session: a subcommand name plus its CLI-style
/// argument vector (everything after the subcommand, exactly as the
/// one-shot binary would receive it).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query {
    /// Subcommand (`check`, `elicit`, `explore`, `simulate`, `monitor`).
    pub command: String,
    /// Arguments after the subcommand.
    pub args: Vec<String>,
}

impl Query {
    /// Convenience constructor from string-likes.
    pub fn new(command: impl Into<String>, args: impl IntoIterator<Item = String>) -> Query {
        Query {
            command: command.into(),
            args: args.into_iter().collect(),
        }
    }
}

/// The fully rendered outcome of a command: the exact bytes the
/// one-shot CLI writes to stdout/stderr, the process exit code, and any
/// observability artefacts (`--stats-json` / `--trace-json`) the
/// command was asked to produce (path → contents; the host decides how
/// to materialise them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rendered {
    /// Exact stdout bytes.
    pub stdout: String,
    /// Exact stderr bytes.
    pub stderr: String,
    /// Process exit code (0 ok, 1 failure/violation, 2 usage, 3 clean
    /// deadline-partial).
    pub exit: u8,
    /// Requested export artefacts as `(path, contents)` pairs.
    pub artefacts: Vec<(String, String)>,
}

impl Rendered {
    /// A successful, empty outcome.
    #[must_use]
    pub fn success() -> Rendered {
        Rendered::default()
    }

    /// A usage error: `message` + the usage text on stderr, exit 2.
    #[must_use]
    pub fn usage_error(message: &str, usage: &str) -> Rendered {
        Rendered {
            stderr: format!("{message}\n{usage}\n"),
            exit: 2,
            ..Rendered::default()
        }
    }

    /// A runtime failure: `message` on stderr, exit 1.
    #[must_use]
    pub fn failure(message: &str) -> Rendered {
        Rendered {
            stderr: format!("{message}\n"),
            exit: 1,
            ..Rendered::default()
        }
    }
}

/// Per-request execution context a host (one-shot CLI or server) hands
/// to a runner.
#[derive(Debug, Clone, Default)]
pub struct ServiceCtx {
    /// Observability handle. When enabled (a serving registry), engine
    /// probes record into it; when disabled, runners fall back to their
    /// own `--stats-json`-driven handle so one-shot behaviour is
    /// unchanged.
    pub obs: Obs,
    /// Request deadline, if any. `None` means "no externally imposed
    /// deadline" — exactly the one-shot CLI situation. The token is
    /// created when the request is *received*, so queue wait counts
    /// against the budget.
    pub cancel: Option<CancelToken>,
}

impl ServiceCtx {
    /// The one-shot CLI context: disabled observability, no deadline.
    #[must_use]
    pub fn one_shot() -> ServiceCtx {
        ServiceCtx::default()
    }
}

/// A typed service-layer error (distinct from a command that *ran* and
/// failed — those are [`Rendered`] with a non-zero exit). These map to
/// `error` frames on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Stable machine-readable code (see the `codes` module).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ServiceError {
    /// Convenience constructor.
    pub fn new(code: &'static str, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// Stable error codes shared by the service layer and the wire
/// protocol.
pub mod codes {
    /// The session holds no engine answering this command.
    pub const UNKNOWN_COMMAND: &str = "unknown-command";
    /// A request used a flag that only makes sense one-shot
    /// (`--stats-json` / `--trace-json` are server-level in a session).
    pub const UNSUPPORTED_FLAG: &str = "unsupported-flag";
    /// The request deadline expired before execution started.
    pub const DEADLINE: &str = "deadline";
    /// The server is draining; no new requests are accepted.
    pub const DRAINING: &str = "draining";
    /// The session's bounded request queue is full (backpressure).
    pub const OVERLOADED: &str = "overloaded";
    /// A frame failed to decode as `fsa-wire/v1`.
    pub const BAD_FRAME: &str = "bad-frame";
    /// A frame exceeded the configured size limit.
    pub const OVERSIZE_FRAME: &str = "oversize-frame";
    /// The handshake announced an unsupported protocol.
    pub const PROTOCOL: &str = "protocol";
    /// A request referenced a session id this connection never opened.
    pub const UNKNOWN_SESSION: &str = "unknown-session";
    /// The `open` frame could not be satisfied (parse error, unknown
    /// scenario, …).
    pub const OPEN_FAILED: &str = "open-failed";
    /// An `edit` request was sent to a session whose model does not
    /// support incremental edits (no scenario, or a scenario without an
    /// editable component model).
    pub const NOT_EDITABLE: &str = "not-editable";
    /// The session sat idle past the server's idle limit and was
    /// reaped; re-`open` to continue.
    pub const SESSION_EXPIRED: &str = "session-expired";
    /// The peer started a frame and then stalled past the per-frame
    /// deadline (slow-loris); the connection is closed after this.
    pub const SLOW_PEER: &str = "slow-peer";
}

/// A session-scoped analysis engine: answers [`Query`]s against state
/// prepared once at session open (parsed model, derived reachability,
/// elicited requirement set, …). `&mut self` lets implementations
/// memoise derived artefacts across requests — a session is driven by
/// exactly one worker thread.
pub trait Service: Send {
    /// Stable engine name (diagnostics, obs series).
    fn engine(&self) -> &'static str;

    /// The subcommands this service answers.
    fn commands(&self) -> &'static [&'static str];

    /// Executes one query. A command that runs and fails still returns
    /// `Ok` with a non-zero [`Rendered::exit`]; `Err` is reserved for
    /// service-layer conditions (unknown command, rejected flag, …).
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] with one of the [`codes`].
    fn respond(&mut self, query: &Query, ctx: &ServiceCtx) -> Result<Rendered, ServiceError>;
}

/// An immutable, session-shared parsed specification: the instances of
/// one spec file, interned once at `open` so repeated `elicit`/`check`
/// queries skip `speclang` parsing entirely.
#[derive(Debug, Clone)]
pub struct LoadedModel {
    name: String,
    instances: Vec<SosInstance>,
}

impl LoadedModel {
    /// Wraps parsed instances under the display name (usually the spec
    /// file path) used in rendered output.
    #[must_use]
    pub fn new(name: impl Into<String>, instances: Vec<SosInstance>) -> Arc<LoadedModel> {
        Arc::new(LoadedModel {
            name: name.into(),
            instances,
        })
    }

    /// The display name (spec file path).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parsed instances.
    #[must_use]
    pub fn instances(&self) -> &[SosInstance] {
        &self.instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_constructors_follow_the_cli_exit_discipline() {
        assert_eq!(Rendered::success().exit, 0);
        let u = Rendered::usage_error("bad flag", "usage: fsa");
        assert_eq!(u.exit, 2);
        assert_eq!(u.stderr, "bad flag\nusage: fsa\n");
        assert!(u.stdout.is_empty());
        let f = Rendered::failure("boom");
        assert_eq!(f.exit, 1);
        assert_eq!(f.stderr, "boom\n");
    }

    #[test]
    fn service_error_displays_code_and_message() {
        let e = ServiceError::new(codes::DRAINING, "server is draining");
        assert_eq!(e.to_string(), "draining: server is draining");
    }

    #[test]
    fn loaded_model_is_shareable_and_immutable() {
        let m = LoadedModel::new("specs/x.fsa", Vec::new());
        let m2 = Arc::clone(&m);
        assert_eq!(m.name(), "specs/x.fsa");
        assert!(m2.instances().is_empty());
    }
}
