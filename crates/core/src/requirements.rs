//! Authenticity requirements.
//!
//! Definition 1 of the paper: `auth(a, b, P)` — "Whenever an action `b`
//! happens, it must be authentic for an agent `P` that in any course of
//! events that seem possible to him, a certain action `a` has happened."

use crate::action::{Action, Agent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How a requirement relates to the system's function (§4.4's
/// evaluation of the elicited requirements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relevance {
    /// Breaking the requirement can cause unsafe behaviour (e.g. warning
    /// a driver who should not be warned).
    Safety,
    /// Breaking the requirement affects availability / resource
    /// consumption only (e.g. a larger or smaller broadcast area).
    Availability,
}

impl fmt::Display for Relevance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relevance::Safety => write!(f, "safety"),
            Relevance::Availability => write!(f, "availability"),
        }
    }
}

/// One authenticity requirement `auth(antecedent, consequent, stakeholder)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AuthRequirement {
    /// The action whose prior occurrence must be authentic (`a`).
    pub antecedent: Action,
    /// The action that triggers the obligation (`b`).
    pub consequent: Action,
    /// The agent to be assured (`P`), typically `stakeholder(b)`.
    pub stakeholder: Agent,
}

impl AuthRequirement {
    /// Creates a requirement.
    pub fn new(antecedent: Action, consequent: Action, stakeholder: Agent) -> Self {
        AuthRequirement {
            antecedent,
            consequent,
            stakeholder,
        }
    }
}

impl fmt::Debug for AuthRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for AuthRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "auth({}, {}, {})",
            self.antecedent, self.consequent, self.stakeholder
        )
    }
}

/// An ordered, duplicate-free set of requirements.
///
/// §4.4: "the union of all these requirements for the different
/// instances poses the set of requirements for the whole system. This
/// set can be reduced by eliminating duplicate requirements …".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequirementSet {
    items: BTreeSet<AuthRequirement>,
}

impl RequirementSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RequirementSet::default()
    }

    /// Inserts a requirement; duplicates are eliminated. Returns `true`
    /// if the requirement was new.
    pub fn insert(&mut self, req: AuthRequirement) -> bool {
        self.items.insert(req)
    }

    /// Returns `true` if the set contains `req`.
    pub fn contains(&self, req: &AuthRequirement) -> bool {
        self.items.contains(req)
    }

    /// Number of requirements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates in canonical (term) order.
    pub fn iter(&self) -> impl Iterator<Item = &AuthRequirement> {
        self.items.iter()
    }

    /// The union of two sets (requirements of the whole system across
    /// instances).
    pub fn union(&self, other: &RequirementSet) -> RequirementSet {
        RequirementSet {
            items: self.items.union(&other.items).cloned().collect(),
        }
    }

    /// The requirements not present in `other` — e.g.
    /// `χ₂ \ χ₁ = {(pos(GPS_2,pos), show(HMI_w,warn))}` in §4.4.
    pub fn difference(&self, other: &RequirementSet) -> RequirementSet {
        RequirementSet {
            items: self.items.difference(&other.items).cloned().collect(),
        }
    }

    /// Returns `true` if every requirement of `self` is in `other`.
    pub fn is_subset(&self, other: &RequirementSet) -> bool {
        self.items.is_subset(&other.items)
    }
}

impl FromIterator<AuthRequirement> for RequirementSet {
    fn from_iter<I: IntoIterator<Item = AuthRequirement>>(iter: I) -> Self {
        RequirementSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<AuthRequirement> for RequirementSet {
    fn extend<I: IntoIterator<Item = AuthRequirement>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RequirementSet {
    type Item = &'a AuthRequirement;
    type IntoIter = std::collections::btree_set::Iter<'a, AuthRequirement>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Display for RequirementSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.items {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(a: &str, b: &str, p: &str) -> AuthRequirement {
        AuthRequirement::new(Action::parse(a), Action::parse(b), Agent::new(p))
    }

    #[test]
    fn display_matches_paper_notation() {
        let r = req("pos(GPS_w,pos)", "show(HMI_w,warn)", "D_w");
        assert_eq!(r.to_string(), "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)");
    }

    #[test]
    fn set_dedups() {
        let mut s = RequirementSet::new();
        assert!(s.insert(req("a", "b", "P")));
        assert!(!s.insert(req("a", "b", "P")));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&req("a", "b", "P")));
        assert!(!s.contains(&req("a", "b", "Q")));
    }

    #[test]
    fn union_and_difference_model_chi_growth() {
        // χ₁ and χ₂ = χ₁ ∪ {extra} from §4.4.
        let chi1: RequirementSet = [
            req("pos(GPS_w,pos)", "show(HMI_w,warn)", "D_w"),
            req("pos(GPS_1,pos)", "show(HMI_w,warn)", "D_w"),
            req("sense(ESP_1,sW)", "show(HMI_w,warn)", "D_w"),
        ]
        .into_iter()
        .collect();
        let extra = req("pos(GPS_2,pos)", "show(HMI_w,warn)", "D_w");
        let chi2 = chi1.union(&[extra.clone()].into_iter().collect());
        assert_eq!(chi2.len(), 4);
        assert!(chi1.is_subset(&chi2));
        let diff = chi2.difference(&chi1);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&extra));
    }

    #[test]
    fn iteration_order_is_canonical() {
        let s: RequirementSet = [req("b", "z", "P"), req("a", "z", "P")]
            .into_iter()
            .collect();
        let firsts: Vec<String> = s.iter().map(|r| r.antecedent.to_string()).collect();
        assert_eq!(firsts, vec!["a", "b"]);
    }

    #[test]
    fn display_set() {
        let s: RequirementSet = [req("a", "b", "P")].into_iter().collect();
        assert_eq!(s.to_string(), "auth(a, b, P)\n");
        assert!(!s.is_empty());
        assert!(RequirementSet::new().is_empty());
    }

    #[test]
    fn relevance_display() {
        assert_eq!(Relevance::Safety.to_string(), "safety");
        assert_eq!(Relevance::Availability.to_string(), "availability");
    }
}
