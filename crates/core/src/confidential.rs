//! Confidentiality requirements by functional flow analysis.
//!
//! §6 of the paper: "Future work may include the derivation of
//! confidentiality requirements in a similar way as was presented here.
//! Though this will require for different security goals …". This
//! module implements that extension. Where authenticity asks for every
//! *used* input to have actually happened, confidentiality asks that
//! classified information does **not** reach outputs whose observers
//! lack clearance. The same functional flow graph answers both: the
//! reflexive transitive closure decides which incoming boundary actions
//! can influence which outgoing boundary actions.
//!
//! Given a [`ConfidentialityPolicy`] assigning sensitivity
//! [`Level`]s to inputs and clearance levels to outputs, the derived
//! requirement for each (input, output) pair where sensitivity exceeds
//! clearance is `noflow(x, y)` — with status *satisfied* if the model
//! contains no functional path, or *violated* (an architectural
//! problem) if it does.

use crate::action::Action;
use crate::instance::SosInstance;
use fsa_graph::closure::reflexive_transitive_closure;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A linear sensitivity/clearance level (higher = more sensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Level(pub u8);

impl Level {
    /// Public information / uncleared observers.
    pub const PUBLIC: Level = Level(0);
    /// Restricted information / vetted observers.
    pub const RESTRICTED: Level = Level(1);
    /// Secret information / fully cleared observers.
    pub const SECRET: Level = Level(2);
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "public"),
            1 => write!(f, "restricted"),
            2 => write!(f, "secret"),
            n => write!(f, "level{n}"),
        }
    }
}

/// Sensitivity of inputs and clearance of outputs.
///
/// Unlisted inputs default to [`Level::PUBLIC`] (no constraint);
/// unlisted outputs default to [`Level::SECRET`] (may see everything).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfidentialityPolicy {
    sensitivity: BTreeMap<Action, Level>,
    clearance: BTreeMap<Action, Level>,
}

impl ConfidentialityPolicy {
    /// Creates an empty (permit-everything) policy.
    pub fn new() -> Self {
        ConfidentialityPolicy::default()
    }

    /// Declares the sensitivity of an input action.
    pub fn classify(mut self, input: Action, level: Level) -> Self {
        self.sensitivity.insert(input, level);
        self
    }

    /// Declares the clearance of an output action's observer.
    pub fn clear(mut self, output: Action, level: Level) -> Self {
        self.clearance.insert(output, level);
        self
    }

    /// The sensitivity of `input`.
    pub fn sensitivity_of(&self, input: &Action) -> Level {
        self.sensitivity
            .get(input)
            .copied()
            .unwrap_or(Level::PUBLIC)
    }

    /// The clearance of `output`.
    pub fn clearance_of(&self, output: &Action) -> Level {
        self.clearance.get(output).copied().unwrap_or(Level::SECRET)
    }
}

/// A derived confidentiality requirement `noflow(source, observer)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfRequirement {
    /// The classified input action.
    pub source: Action,
    /// The insufficiently cleared output action.
    pub observer: Action,
    /// Sensitivity of the source.
    pub sensitivity: Level,
    /// Clearance of the observer.
    pub clearance: Level,
    /// `true` if the model contains a functional path source → observer
    /// (the requirement is violated by the architecture as modelled).
    pub violated: bool,
}

impl fmt::Display for ConfRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "noflow({}, {}) [{} vs {}]: {}",
            self.source,
            self.observer,
            self.sensitivity,
            self.clearance,
            if self.violated {
                "VIOLATED"
            } else {
                "satisfied"
            }
        )
    }
}

/// Derives the confidentiality requirements of `instance` under
/// `policy`: one per (incoming boundary action, outgoing boundary
/// action) pair whose sensitivity exceeds the observer's clearance.
pub fn elicit_confidentiality(
    instance: &SosInstance,
    policy: &ConfidentialityPolicy,
) -> Vec<ConfRequirement> {
    let g = instance.graph();
    let closure = reflexive_transitive_closure(g);
    let sources = g.sources();
    let sinks = g.sinks();
    let mut out = Vec::new();
    for &x in &sources {
        let sensitivity = policy.sensitivity_of(instance.action(x));
        for &y in &sinks {
            if x == y {
                continue;
            }
            let clearance = policy.clearance_of(instance.action(y));
            if sensitivity > clearance {
                out.push(ConfRequirement {
                    source: instance.action(x).clone(),
                    observer: instance.action(y).clone(),
                    sensitivity,
                    clearance,
                    violated: closure.contains(x, y),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::SosInstanceBuilder;

    /// GPS position (restricted) flows to the broadcast message; the
    /// driver's display is cleared, the broadcast is public.
    fn instance() -> SosInstance {
        let mut b = SosInstanceBuilder::new("privacy");
        let pos = b.action(Action::parse("pos(GPS_1,pos)"), "D_1");
        let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let show = b.action(Action::parse("show(HMI_1,warn)"), "D_1");
        b.flow(pos, send);
        b.flow(sense, send);
        b.flow(sense, show);
        b.build()
    }

    fn policy() -> ConfidentialityPolicy {
        ConfidentialityPolicy::new()
            .classify(Action::parse("pos(GPS_1,pos)"), Level::RESTRICTED)
            .clear(Action::parse("send(CU_1,cam(pos))"), Level::PUBLIC)
            .clear(Action::parse("show(HMI_1,warn)"), Level::SECRET)
    }

    #[test]
    fn detects_position_leak_to_broadcast() {
        let reqs = elicit_confidentiality(&instance(), &policy());
        assert_eq!(reqs.len(), 1, "only the restricted-vs-public pair");
        let r = &reqs[0];
        assert_eq!(r.source, Action::parse("pos(GPS_1,pos)"));
        assert_eq!(r.observer, Action::parse("send(CU_1,cam(pos))"));
        assert!(r.violated, "pos flows into the cam broadcast");
        assert!(r.to_string().contains("VIOLATED"));
    }

    #[test]
    fn cleared_observer_generates_no_requirement() {
        // show is SECRET-cleared: no requirement against it.
        let reqs = elicit_confidentiality(&instance(), &policy());
        assert!(reqs
            .iter()
            .all(|r| r.observer != Action::parse("show(HMI_1,warn)")));
    }

    #[test]
    fn satisfied_when_no_path() {
        // Make pos feed only the display (cleared); broadcast gets
        // nothing sensitive.
        let mut b = SosInstanceBuilder::new("fixed");
        let pos = b.action(Action::parse("pos(GPS_1,pos)"), "D_1");
        let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let show = b.action(Action::parse("show(HMI_1,warn)"), "D_1");
        let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        b.flow(pos, show);
        b.flow(sense, send);
        let inst = b.build();
        let reqs = elicit_confidentiality(&inst, &policy());
        assert_eq!(reqs.len(), 1);
        assert!(!reqs[0].violated, "no functional path pos → send");
        assert!(reqs[0].to_string().contains("satisfied"));
    }

    #[test]
    fn default_levels() {
        let p = ConfidentialityPolicy::new();
        assert_eq!(p.sensitivity_of(&Action::parse("x")), Level::PUBLIC);
        assert_eq!(p.clearance_of(&Action::parse("y")), Level::SECRET);
        assert!(elicit_confidentiality(&instance(), &p).is_empty());
    }

    #[test]
    fn level_display() {
        assert_eq!(Level::PUBLIC.to_string(), "public");
        assert_eq!(Level::SECRET.to_string(), "secret");
        assert_eq!(Level(7).to_string(), "level7");
    }
}
