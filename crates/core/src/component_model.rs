//! Functional component models (Fig. 1 of the paper).
//!
//! A [`ComponentModel`] describes one system type (a vehicle, a roadside
//! unit) by its template actions — parameterised by an instance index
//! `i` — and the internal functional flows among them. Instantiating the
//! model substitutes a concrete index (`i ↦ 1`) and adds the actions to
//! an [`SosInstanceBuilder`]; external flows between instances are then
//! connected explicitly, which is the *synthesis* step of §4.2.

use crate::action::{Action, Param};
use crate::error::FsaError;
use crate::instance::SosInstanceBuilder;
use fsa_graph::NodeId;

/// Index of a template action within its [`ComponentModel`].
pub type TemplateActionId = usize;

/// A functional component model: template actions plus internal flows.
#[derive(Debug, Clone)]
pub struct ComponentModel {
    name: String,
    stakeholder_template: String,
    actions: Vec<Action>,
    flows: Vec<(TemplateActionId, TemplateActionId, bool)>, // (from, to, is_policy)
}

impl ComponentModel {
    /// Creates an empty model. `stakeholder_template` names the agent
    /// responsible for this component's actions, with the instance index
    /// as suffix — e.g. `"D_i"` for the driver of vehicle `i`.
    pub fn new(name: &str, stakeholder_template: &str) -> Self {
        ComponentModel {
            name: name.to_owned(),
            stakeholder_template: stakeholder_template.to_owned(),
            actions: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stakeholder template (the agent entitled to the results of
    /// every instance of this model).
    pub fn stakeholder_template(&self) -> &str {
        &self.stakeholder_template
    }

    /// Adds a template action (use index `i` in parameters, e.g.
    /// `sense(ESP_i,sW)`), returning its template id.
    pub fn action(&mut self, template: &str) -> TemplateActionId {
        self.actions.push(Action::parse(template));
        self.actions.len() - 1
    }

    /// Adds an internal functional flow between two template actions.
    pub fn flow(&mut self, from: TemplateActionId, to: TemplateActionId) {
        self.flows.push((from, to, false));
    }

    /// Adds an internal policy-motivated flow (see
    /// [`crate::instance::FlowKind::Policy`]).
    pub fn policy_flow(&mut self, from: TemplateActionId, to: TemplateActionId) {
        self.flows.push((from, to, true));
    }

    /// The template actions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The internal flows as `(from, to, is_policy)` triples.
    pub fn flows(&self) -> &[(TemplateActionId, TemplateActionId, bool)] {
        &self.flows
    }

    /// Validates that all flows reference existing template actions.
    ///
    /// # Errors
    ///
    /// Returns [`FsaError::InvalidComponentModel`] on a dangling
    /// reference.
    pub fn validate(&self) -> Result<(), FsaError> {
        for &(from, to, _) in &self.flows {
            if from >= self.actions.len() || to >= self.actions.len() {
                return Err(FsaError::InvalidComponentModel {
                    reason: format!(
                        "flow ({from}, {to}) references a template action out of range (model `{}` has {})",
                        self.name,
                        self.actions.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Instantiates the model with a concrete `index`, adding all
    /// actions and internal flows to `builder`. Returns a handle for
    /// connecting external flows.
    ///
    /// # Errors
    ///
    /// Returns [`FsaError::InvalidComponentModel`] if the model fails
    /// [`ComponentModel::validate`].
    pub fn instantiate(
        &self,
        index: &str,
        builder: &mut SosInstanceBuilder,
    ) -> Result<ComponentInstance, FsaError> {
        self.validate()?;
        let stakeholder = instantiate_name(&self.stakeholder_template, index);
        let owner = if index.is_empty() {
            self.name.clone()
        } else {
            format!("{}{}", self.name, index)
        };
        let nodes: Vec<NodeId> = self
            .actions
            .iter()
            .map(|template| {
                builder.action_owned(template.rename_index("i", index), &stakeholder, &owner)
            })
            .collect();
        for &(from, to, is_policy) in &self.flows {
            if is_policy {
                builder.policy_flow(nodes[from], nodes[to]);
            } else {
                builder.flow(nodes[from], nodes[to]);
            }
        }
        Ok(ComponentInstance { owner, nodes })
    }
}

/// Substitutes the index into a `Base_i` style template name.
fn instantiate_name(template: &str, index: &str) -> String {
    let p = Param::parse(template);
    match p.index() {
        Some("i") if !index.is_empty() => p.with_index(index).to_string(),
        _ => template.to_owned(),
    }
}

/// One instantiated component within an SoS instance under construction.
#[derive(Debug, Clone)]
pub struct ComponentInstance {
    owner: String,
    nodes: Vec<NodeId>,
}

impl ComponentInstance {
    /// The owner label of this instance (e.g. `"V1"`).
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The instance node of a template action.
    ///
    /// # Panics
    ///
    /// Panics if `template` is out of range.
    pub fn node(&self, template: TemplateActionId) -> NodeId {
        self.nodes[template]
    }

    /// All instance nodes, in template order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    /// The reduced vehicle model of Fig. 1(b) (without `fwd`).
    fn vehicle_model() -> (ComponentModel, [TemplateActionId; 5]) {
        let mut m = ComponentModel::new("V", "D_i");
        let sense = m.action("sense(ESP_i,sW)");
        let pos = m.action("pos(GPS_i,pos)");
        let send = m.action("send(CU_i,cam(pos))");
        let rec = m.action("rec(CU_i,cam(pos))");
        let show = m.action("show(HMI_i,warn)");
        m.flow(sense, send);
        m.flow(pos, send);
        m.flow(pos, show);
        m.flow(rec, show);
        (m, [sense, pos, send, rec, show])
    }

    #[test]
    fn instantiate_substitutes_index() {
        let (m, [sense, _, _, _, show]) = vehicle_model();
        let mut b = SosInstanceBuilder::new("t");
        let v1 = m.instantiate("1", &mut b).unwrap();
        let inst = b.build();
        assert_eq!(
            inst.action(v1.node(sense)),
            &Action::parse("sense(ESP_1,sW)")
        );
        assert_eq!(inst.stakeholder(v1.node(show)).name(), "D_1");
        assert_eq!(inst.owner(v1.node(show)), "V1");
        assert_eq!(v1.owner(), "V1");
    }

    #[test]
    fn instantiate_twice_and_connect() {
        let (m, [_, _, send, rec, show]) = vehicle_model();
        let mut b = SosInstanceBuilder::new("t");
        let v1 = m.instantiate("1", &mut b).unwrap();
        let vw = m.instantiate("w", &mut b).unwrap();
        // external flow: V1 send → Vw rec
        b.flow(v1.node(send), vw.node(rec));
        let inst = b.build();
        assert_eq!(inst.action_count(), 10);
        assert!(inst.graph().has_edge(v1.node(send), vw.node(rec)));
        assert_eq!(
            inst.action(vw.node(show)),
            &Action::parse("show(HMI_w,warn)")
        );
    }

    #[test]
    fn empty_index_keeps_names() {
        let mut m = ComponentModel::new("RSU", "Operator");
        let send = m.action("send(cam(pos))");
        let mut b = SosInstanceBuilder::new("t");
        let rsu = m.instantiate("", &mut b).unwrap();
        let inst = b.build();
        assert_eq!(
            inst.action(rsu.node(send)),
            &Action::parse("send(cam(pos))")
        );
        assert_eq!(inst.owner(rsu.node(send)), "RSU");
        assert_eq!(inst.stakeholder(rsu.node(send)).name(), "Operator");
    }

    #[test]
    fn policy_flows_instantiate_as_policy() {
        let mut m = ComponentModel::new("V", "D_i");
        let pos = m.action("pos(GPS_i,pos)");
        let fwd = m.action("fwd(CU_i,cam(pos))");
        m.policy_flow(pos, fwd);
        let mut b = SosInstanceBuilder::new("t");
        let v = m.instantiate("2", &mut b).unwrap();
        let inst = b.build();
        assert_eq!(
            inst.flow_kind(v.node(pos), v.node(fwd)),
            Some(crate::instance::FlowKind::Policy)
        );
    }

    #[test]
    fn invalid_flow_detected() {
        let mut m = ComponentModel::new("X", "P");
        m.action("a");
        m.flows.push((0, 7, false));
        assert!(m.validate().is_err());
        let mut b = SosInstanceBuilder::new("t");
        assert!(m.instantiate("1", &mut b).is_err());
    }

    #[test]
    fn accessors() {
        let (m, _) = vehicle_model();
        assert_eq!(m.name(), "V");
        assert_eq!(m.actions().len(), 5);
        assert_eq!(m.flows().len(), 4);
    }
}
