//! A bounded, invalidation-aware memo store for incremental analysis.
//!
//! Entries are keyed by a *namespace* plus a canonical payload string
//! (the content hash is FNV-1a over both). The 64-bit hash only selects
//! a bucket: a lookup verifies the exact `(namespace, payload)` pair —
//! and, when the caller supplies one, an extra `accept` predicate (the
//! certificate namespaces verify graph isomorphism this way, exactly as
//! [`fsa_graph::iso::CertifiedClasses`] does) — so a hash collision
//! degrades to a memo miss, never to a wrong analysis result.
//!
//! Invalidation is explicit: every entry carries the set of model
//! element names it depends on, and [`MemoStore::invalidate_touching`]
//! drops the entries whose dependencies intersect an edit's touched
//! set. Entries with an empty dependency set survive every edit (the
//! certificate entries use this to answer edit–undo sequences).

use crate::error::FsaError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// FNV-1a over the namespace, a `0xFF` separator (never a UTF-8 byte),
/// and the payload.
#[must_use]
pub fn fnv1a_64(namespace: &str, payload: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in namespace
        .as_bytes()
        .iter()
        .chain(&[0xFFu8])
        .chain(payload.as_bytes())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Cumulative work counters of a [`MemoStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Lookups answered from the store (exact key match + accepted).
    pub hits: u64,
    /// Lookups that found nothing usable (including hash collisions
    /// and entries rejected by the caller's `accept` predicate).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped by [`MemoStore::invalidate_touching`].
    pub invalidated: u64,
}

#[derive(Debug)]
struct Entry<V> {
    namespace: &'static str,
    payload: String,
    deps: BTreeSet<String>,
    seq: u64,
    value: Arc<V>,
}

/// A bounded memo store: hash-bucketed entries, FIFO eviction at
/// capacity, explicit dependency-driven invalidation.
///
/// The hash function is injectable so tests can force every key into
/// one bucket and prove that collisions are harmless.
#[derive(Debug)]
pub struct MemoStore<V> {
    buckets: BTreeMap<u64, Vec<Entry<V>>>,
    /// Insertion order as `(hash, seq)`; stale pairs (already
    /// invalidated or replaced) are skipped at eviction time.
    order: VecDeque<(u64, u64)>,
    next_seq: u64,
    len: usize,
    capacity: usize,
    hasher: fn(&str, &str) -> u64,
    counters: MemoCounters,
}

impl<V> MemoStore<V> {
    /// An empty store holding at most `capacity` entries.
    ///
    /// # Errors
    ///
    /// [`FsaError::InvalidCapacity`] when `capacity` is 0. A zero
    /// capacity used to be silently clamped to 1, turning a
    /// misconfigured cache into surprising evict-on-every-insert
    /// behaviour; it is now rejected at construction.
    pub fn new(capacity: usize) -> Result<Self, FsaError> {
        MemoStore::with_hasher(capacity, fnv1a_64)
    }

    /// An empty store with an explicit key hasher (tests inject a
    /// constant hasher to force collisions).
    ///
    /// # Errors
    ///
    /// [`FsaError::InvalidCapacity`] when `capacity` is 0 (see
    /// [`MemoStore::new`]).
    pub fn with_hasher(capacity: usize, hasher: fn(&str, &str) -> u64) -> Result<Self, FsaError> {
        if capacity == 0 {
            return Err(FsaError::InvalidCapacity { what: "MemoStore" });
        }
        Ok(MemoStore {
            buckets: BTreeMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            len: 0,
            capacity,
            hasher,
            counters: MemoCounters::default(),
        })
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entry is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cumulative counters.
    #[must_use]
    pub fn counters(&self) -> MemoCounters {
        self.counters
    }

    /// Looks up `(namespace, payload)`. The bucket selected by the
    /// 64-bit hash is scanned for an *exact* key match, and `accept`
    /// must confirm the stored value before it is returned — a
    /// collision (or a rejected value) counts as a miss.
    pub fn lookup(
        &mut self,
        namespace: &'static str,
        payload: &str,
        mut accept: impl FnMut(&V) -> bool,
    ) -> Option<Arc<V>> {
        let hash = (self.hasher)(namespace, payload);
        let found = self.buckets.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.namespace == namespace && e.payload == payload && accept(&e.value))
                .map(|e| Arc::clone(&e.value))
        });
        match found {
            Some(v) => {
                self.counters.hits += 1;
                Some(v)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `(namespace, payload)`.
    /// `deps` names the model elements whose edits invalidate it; an
    /// empty set makes the entry immune to invalidation. The oldest
    /// entry is evicted when the store is full.
    pub fn insert(
        &mut self,
        namespace: &'static str,
        payload: String,
        deps: BTreeSet<String>,
        value: Arc<V>,
    ) {
        let hash = (self.hasher)(namespace, &payload);
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(e) = bucket
            .iter_mut()
            .find(|e| e.namespace == namespace && e.payload == payload)
        {
            e.deps = deps;
            e.value = value;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        bucket.push(Entry {
            namespace,
            payload,
            deps,
            seq,
            value,
        });
        self.order.push_back((hash, seq));
        self.len += 1;
        while self.len > self.capacity {
            self.evict_oldest();
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((hash, seq)) = self.order.pop_front() {
            if let Some(bucket) = self.buckets.get_mut(&hash) {
                if let Some(i) = bucket.iter().position(|e| e.seq == seq) {
                    bucket.swap_remove(i);
                    if bucket.is_empty() {
                        self.buckets.remove(&hash);
                    }
                    self.len -= 1;
                    self.counters.evictions += 1;
                    return;
                }
            }
            // Stale order record (entry already invalidated): keep
            // scanning for a live one.
        }
    }

    /// Drops every entry whose dependency set intersects `touched`;
    /// returns how many were dropped. Entries with empty dependencies
    /// are never invalidated.
    pub fn invalidate_touching(&mut self, touched: &BTreeSet<String>) -> usize {
        if touched.is_empty() {
            return 0;
        }
        let mut dropped = 0usize;
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let hit = e.deps.iter().any(|d| touched.contains(d));
                if hit {
                    dropped += 1;
                }
                !hit
            });
            !bucket.is_empty()
        });
        self.len -= dropped;
        // Checked counter discipline (PR 5): a `usize` drop count on a
        // 128-bit-usize target could exceed `u64` — saturate rather
        // than silently wrap.
        self.counters.invalidated = self
            .counters
            .invalidated
            .saturating_add(u64::try_from(dropped).unwrap_or(u64::MAX));
        dropped
    }

    /// Preloads the invalidation counter — test hook for the
    /// saturation discipline.
    #[cfg(test)]
    fn set_invalidated(&mut self, value: u64) {
        self.counters.invalidated = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn capacity_zero_is_rejected_with_a_typed_error() {
        // Regression: capacity 0 used to be silently clamped to 1.
        let err = MemoStore::<u32>::new(0).unwrap_err();
        assert!(matches!(
            err,
            FsaError::InvalidCapacity { what: "MemoStore" }
        ));
        assert!(err.to_string().contains("MemoStore"), "{err}");
        let err = MemoStore::<u32>::with_hasher(0, |_, _| 42).unwrap_err();
        assert!(matches!(err, FsaError::InvalidCapacity { .. }));
        // Capacity 1 is the smallest valid store and must keep working.
        let mut store = MemoStore::<u32>::new(1).unwrap();
        store.insert("ns", "k".to_owned(), deps(&[]), Arc::new(1));
        assert_eq!(store.lookup("ns", "k", |_| true).as_deref(), Some(&1));
    }

    #[test]
    fn lookup_requires_exact_key_match() {
        let mut store: MemoStore<u32> = MemoStore::new(8).unwrap();
        store.insert("ns", "alpha".to_owned(), deps(&["a"]), Arc::new(1));
        assert_eq!(store.lookup("ns", "alpha", |_| true).as_deref(), Some(&1));
        assert_eq!(store.lookup("ns", "beta", |_| true), None);
        assert_eq!(store.lookup("other", "alpha", |_| true), None);
        let c = store.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn forced_hash_collisions_degrade_to_misses_not_wrong_values() {
        // Every key lands in bucket 42: distinct payloads collide by
        // construction. The exact payload comparison must still resolve
        // each lookup to its own value (or a miss), never to the
        // colliding neighbour's value.
        let mut store: MemoStore<&'static str> = MemoStore::with_hasher(8, |_, _| 42).unwrap();
        store.insert("frag", "model-A".to_owned(), deps(&["A"]), Arc::new("A"));
        store.insert("frag", "model-B".to_owned(), deps(&["B"]), Arc::new("B"));
        assert_eq!(
            store.lookup("frag", "model-A", |_| true).as_deref(),
            Some(&"A")
        );
        assert_eq!(
            store.lookup("frag", "model-B", |_| true).as_deref(),
            Some(&"B")
        );
        assert_eq!(
            store.lookup("frag", "model-C", |_| true),
            None,
            "a colliding but unknown payload is a miss"
        );
        // The accept predicate can also veto an exact match (the
        // certificate namespace rejects non-isomorphic graphs).
        assert_eq!(store.lookup("frag", "model-A", |_| false), None);
        let c = store.counters();
        assert_eq!((c.hits, c.misses), (2, 2));
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let mut store: MemoStore<u32> = MemoStore::new(2).unwrap();
        store.insert("ns", "one".to_owned(), deps(&[]), Arc::new(1));
        store.insert("ns", "two".to_owned(), deps(&[]), Arc::new(2));
        store.insert("ns", "three".to_owned(), deps(&[]), Arc::new(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.counters().evictions, 1);
        assert_eq!(store.lookup("ns", "one", |_| true), None, "oldest evicted");
        assert_eq!(store.lookup("ns", "two", |_| true).as_deref(), Some(&2));
        assert_eq!(store.lookup("ns", "three", |_| true).as_deref(), Some(&3));
    }

    #[test]
    fn replacing_an_entry_does_not_grow_the_store() {
        let mut store: MemoStore<u32> = MemoStore::new(2).unwrap();
        store.insert("ns", "k".to_owned(), deps(&["a"]), Arc::new(1));
        store.insert("ns", "k".to_owned(), deps(&["b"]), Arc::new(2));
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup("ns", "k", |_| true).as_deref(), Some(&2));
        // The replacement refreshed the deps: invalidating `a` is a
        // no-op, invalidating `b` drops it.
        assert_eq!(store.invalidate_touching(&deps(&["a"])), 0);
        assert_eq!(store.invalidate_touching(&deps(&["b"])), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn invalidation_only_drops_dependent_entries() {
        let mut store: MemoStore<u32> = MemoStore::new(8).unwrap();
        store.insert(
            "frag",
            "f1".to_owned(),
            deps(&["esp1", "V1_send"]),
            Arc::new(1),
        );
        store.insert("frag", "f2".to_owned(), deps(&["esp3"]), Arc::new(2));
        store.insert("cert", "c1".to_owned(), deps(&[]), Arc::new(3));
        assert_eq!(store.invalidate_touching(&deps(&["V1_send", "gps9"])), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup("frag", "f1", |_| true), None);
        assert_eq!(store.lookup("frag", "f2", |_| true).as_deref(), Some(&2));
        assert_eq!(
            store.lookup("cert", "c1", |_| true).as_deref(),
            Some(&3),
            "dependency-free entries survive every edit"
        );
        assert_eq!(store.counters().invalidated, 1);
    }

    #[test]
    fn invalidation_counter_saturates_instead_of_wrapping() {
        // Regression: `invalidated += dropped as u64` would wrap the
        // counter on overflow. The checked discipline saturates.
        let mut store: MemoStore<u32> = MemoStore::new(8).unwrap();
        store.insert("ns", "a".to_owned(), deps(&["x"]), Arc::new(1));
        store.insert("ns", "b".to_owned(), deps(&["x"]), Arc::new(2));
        store.set_invalidated(u64::MAX - 1);
        assert_eq!(store.invalidate_touching(&deps(&["x"])), 2);
        assert_eq!(store.counters().invalidated, u64::MAX, "saturated");
    }

    #[test]
    fn eviction_skips_stale_order_records_after_invalidation() {
        let mut store: MemoStore<u32> = MemoStore::new(2).unwrap();
        store.insert("ns", "a".to_owned(), deps(&["x"]), Arc::new(1));
        store.insert("ns", "b".to_owned(), deps(&[]), Arc::new(2));
        // `a` is invalidated, leaving a stale record at the head of the
        // FIFO order. The next overflow must evict `b`, not panic or
        // miscount on the stale record.
        assert_eq!(store.invalidate_touching(&deps(&["x"])), 1);
        store.insert("ns", "c".to_owned(), deps(&[]), Arc::new(3));
        store.insert("ns", "d".to_owned(), deps(&[]), Arc::new(4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup("ns", "b", |_| true), None, "b evicted");
        assert_eq!(store.lookup("ns", "c", |_| true).as_deref(), Some(&3));
        assert_eq!(store.lookup("ns", "d", |_| true).as_deref(), Some(&4));
    }
}
