//! Cross-run certificate cache: a persistent record of the certificate
//! buckets a **completed** enumeration observed, so a later run of the
//! same configuration can discharge duplicate candidates on the
//! cache's word instead of re-running exact isomorphism.
//!
//! # Soundness
//!
//! The enumeration is deterministic for a fixed configuration
//! fingerprint ([`crate::checkpoint::config_fingerprint`]): the same
//! candidate stream hits the same certificate buckets in the same
//! order. Each bucket's census records both its final **class** count
//! and its total **candidate** count, which makes two bucket shapes
//! trustable:
//!
//! * **one class** — every candidate of the current run that lands in
//!   the bucket is isomorphic to its single representative, so
//!   [`fsa_graph::iso::CertifiedClasses::insert_trusting_unique_bucket`]
//!   records the duplicate without the exact check;
//! * **candidates == classes** (an all-founders collision bucket —
//!   distinct classes that happen to share a certificate) — every
//!   arrival of the identical replayed stream founds its own class, so
//!   [`fsa_graph::iso::CertifiedClasses::insert_trusting_new_class`]
//!   appends it without exact checks, until the bucket reaches the
//!   recorded class count.
//!
//! Mixed buckets (two or more classes *and* extra duplicate
//! candidates) are deliberately *not* trusted: the census cannot say
//! which arrival was a founder, so candidates landing there always
//! take the exact-isomorphism path. Partial runs (cancelled, or with
//! quarantined chunks) never save a section — their bucket counts are
//! lower bounds, not facts.
//!
//! # On-disk format
//!
//! The cache file is an [`fsa_exec::Snapshot`] envelope (magic,
//! version, length, FNV-1a checksum — exactly the checkpoint
//! discipline) with version [`CERT_CACHE_VERSION`] and payload:
//!
//! ```text
//! section count        u64
//! per section:
//!   config fingerprint u64
//!   entry count        u64
//!   per entry:         certificate u64 ‖ class count u64 ‖ candidate count u64
//!                      (certificates strictly ascending,
//!                       candidates ≥ classes ≥ 1)
//! ```
//!
//! Sections are keyed by configuration fingerprint, so one cache file
//! serves many configurations; saving a run replaces only its own
//! section and preserves every foreign one. Truncated, bit-flipped and
//! version-skewed files fail closed with [`FsaError::CertCache`] —
//! never a panic, never a silent partial load. A *missing* file is an
//! empty (cold) cache, not an error.

use crate::error::FsaError;
use fsa_exec::{Snapshot, SnapshotError, SnapshotReader};
use fsa_graph::iso::Certificate;
use std::collections::BTreeMap;
use std::path::Path;

/// Schema version of the certificate-cache payload.
pub const CERT_CACHE_VERSION: u32 = 1;

/// Maps `FsaError::CertCache` out of a snapshot-layer failure.
fn corrupt(path: &Path, e: &SnapshotError) -> FsaError {
    FsaError::CertCache {
        reason: format!("{}: {e}", path.display()),
    }
}

/// One bucket's census: how many isomorphism classes the completed run
/// ended with under a certificate, and how many candidates landed in
/// the bucket overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCensus {
    /// Final class count of the bucket (≥ 1).
    pub classes: u64,
    /// Total candidates that hit the bucket (≥ `classes`).
    pub candidates: u64,
}

/// One configuration's view of the cache: certificate → bucket census,
/// as observed by the last completed run with that fingerprint.
pub type CertSection = BTreeMap<Certificate, BucketCensus>;

/// The whole cache file: sections keyed by configuration fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CertCache {
    sections: BTreeMap<u64, CertSection>,
}

impl CertCache {
    /// An empty (cold) cache.
    #[must_use]
    pub fn new() -> Self {
        CertCache::default()
    }

    /// Loads the cache at `path`. A missing file is a cold cache.
    ///
    /// # Errors
    ///
    /// [`FsaError::CertCache`] on any unreadable, truncated,
    /// bit-flipped, version-skewed or structurally malformed file —
    /// fail closed, never trust a partial load.
    pub fn load(path: &Path) -> Result<CertCache, FsaError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(CertCache::new());
            }
            Err(e) => {
                return Err(FsaError::CertCache {
                    reason: format!("{}: {e}", path.display()),
                })
            }
        };
        let mut r = SnapshotReader::from_bytes(&bytes, CERT_CACHE_VERSION)
            .map_err(|e| corrupt(path, &e))?;
        let mut sections = BTreeMap::new();
        let section_count = r.u64().map_err(|e| corrupt(path, &e))?;
        for _ in 0..section_count {
            let fingerprint = r.u64().map_err(|e| corrupt(path, &e))?;
            let entry_count = r.u64().map_err(|e| corrupt(path, &e))?;
            let mut section = CertSection::new();
            let mut previous: Option<Certificate> = None;
            for _ in 0..entry_count {
                let certificate = r.u64().map_err(|e| corrupt(path, &e))?;
                let classes = r.u64().map_err(|e| corrupt(path, &e))?;
                let candidates = r.u64().map_err(|e| corrupt(path, &e))?;
                if previous.is_some_and(|p| p >= certificate) {
                    return Err(FsaError::CertCache {
                        reason: format!(
                            "{}: certificates not strictly ascending in section {fingerprint:#018x}",
                            path.display()
                        ),
                    });
                }
                if classes == 0 {
                    return Err(FsaError::CertCache {
                        reason: format!(
                            "{}: certificate {certificate:#018x} records zero classes",
                            path.display()
                        ),
                    });
                }
                if candidates < classes {
                    return Err(FsaError::CertCache {
                        reason: format!(
                            "{}: certificate {certificate:#018x} records fewer candidates than classes",
                            path.display()
                        ),
                    });
                }
                previous = Some(certificate);
                section.insert(
                    certificate,
                    BucketCensus {
                        classes,
                        candidates,
                    },
                );
            }
            if sections.insert(fingerprint, section).is_some() {
                return Err(FsaError::CertCache {
                    reason: format!(
                        "{}: duplicate section for fingerprint {fingerprint:#018x}",
                        path.display()
                    ),
                });
            }
        }
        r.finish().map_err(|e| corrupt(path, &e))?;
        Ok(CertCache { sections })
    }

    /// The section recorded for `fingerprint`, if any.
    #[must_use]
    pub fn section(&self, fingerprint: u64) -> Option<&CertSection> {
        self.sections.get(&fingerprint)
    }

    /// Replaces the section for `fingerprint` with the bucket census of
    /// a completed run (the exact payload of
    /// [`fsa_graph::iso::CertifiedClasses::bucket_census`]). Foreign
    /// sections are untouched.
    pub fn record(&mut self, fingerprint: u64, buckets: &[(Certificate, usize, usize)]) {
        let section: CertSection = buckets
            .iter()
            .map(|&(cert, classes, candidates)| {
                (
                    cert,
                    BucketCensus {
                        classes: classes as u64,
                        candidates: candidates as u64,
                    },
                )
            })
            .collect();
        self.sections.insert(fingerprint, section);
    }

    /// Writes the cache atomically (tmp file + rename, fsynced).
    ///
    /// # Errors
    ///
    /// [`FsaError::CertCache`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), FsaError> {
        let mut s = Snapshot::new(CERT_CACHE_VERSION);
        s.put_u64(self.sections.len() as u64);
        for (&fingerprint, section) in &self.sections {
            s.put_u64(fingerprint);
            s.put_u64(section.len() as u64);
            for (&cert, census) in section {
                s.put_u64(cert);
                s.put_u64(census.classes);
                s.put_u64(census.candidates);
            }
        }
        s.write_atomic(path).map_err(|e| corrupt(path, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fsa-certcache-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn missing_file_is_a_cold_cache() {
        let cache = CertCache::load(Path::new("/nonexistent/certcache.fsas")).unwrap();
        assert_eq!(cache, CertCache::new());
        assert!(cache.section(7).is_none());
    }

    #[test]
    fn round_trips_sections_and_preserves_foreign_ones() {
        let path = tmp("roundtrip");
        let mut cache = CertCache::new();
        cache.record(0xAAAA, &[(3, 1, 4), (9, 2, 2), (1, 1, 1)]);
        cache.record(0xBBBB, &[(5, 1, 2)]);
        cache.save(&path).unwrap();

        // A later run with fingerprint 0xAAAA re-records its own
        // section; 0xBBBB survives untouched.
        let mut loaded = CertCache::load(&path).unwrap();
        assert_eq!(loaded, cache);
        loaded.record(0xAAAA, &[(2, 1, 1)]);
        loaded.save(&path).unwrap();
        let reloaded = CertCache::load(&path).unwrap();
        assert_eq!(
            reloaded.section(0xBBBB),
            Some(&CertSection::from([(
                5u64,
                BucketCensus {
                    classes: 1,
                    candidates: 2
                }
            )]))
        );
        assert_eq!(
            reloaded.section(0xAAAA),
            Some(&CertSection::from([(
                2u64,
                BucketCensus {
                    classes: 1,
                    candidates: 1
                }
            )]))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_and_bitflipped_files_fail_closed() {
        let path = tmp("corrupt");
        let mut cache = CertCache::new();
        cache.record(1, &[(10, 1, 3), (20, 2, 2)]);
        cache.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");

        // A single flipped payload bit trips the checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Not a snapshot at all.
        std::fs::write(&path, b"not a cache").unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_skew_is_rejected() {
        let path = tmp("version");
        let mut s = Snapshot::new(CERT_CACHE_VERSION + 1);
        s.put_u64(0);
        s.write_atomic(&path).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn structural_lies_are_rejected() {
        let path = tmp("structure");
        // Zero class count.
        let mut s = Snapshot::new(CERT_CACHE_VERSION);
        s.put_u64(1);
        s.put_u64(0xF00);
        s.put_u64(1);
        s.put_u64(42);
        s.put_u64(0);
        s.put_u64(0);
        s.write_atomic(&path).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(err.to_string().contains("zero classes"), "{err}");

        // Fewer candidates than classes.
        let mut s = Snapshot::new(CERT_CACHE_VERSION);
        s.put_u64(1);
        s.put_u64(0xF00);
        s.put_u64(1);
        s.put_u64(42);
        s.put_u64(3);
        s.put_u64(2);
        s.write_atomic(&path).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(err.to_string().contains("fewer candidates"), "{err}");

        // Descending certificates.
        let mut s = Snapshot::new(CERT_CACHE_VERSION);
        s.put_u64(1);
        s.put_u64(0xF00);
        s.put_u64(2);
        s.put_u64(9);
        s.put_u64(1);
        s.put_u64(1);
        s.put_u64(3);
        s.put_u64(1);
        s.put_u64(1);
        s.write_atomic(&path).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");

        // Trailing bytes.
        let mut s = Snapshot::new(CERT_CACHE_VERSION);
        s.put_u64(0);
        s.put_u64(99);
        s.write_atomic(&path).unwrap();
        let err = CertCache::load(&path).unwrap_err();
        assert!(matches!(err, FsaError::CertCache { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
