//! Typed model deltas over an *editable* scenario model (ROADMAP item 2).
//!
//! The paper's assisted method recomputes reachability and dependence
//! from scratch for every component-model variant. This module gives
//! the variant loop structure: an [`EditModel`] is a declarative VANET
//! component model (components with initial values, named flows with a
//! closed [`FlowKind`] vocabulary, stakeholder tags) that compiles to
//! exactly the same [`apa::Apa`] as the hand-built scenarios in
//! `fsa-vanet`, plus a typed [`ModelDelta`] vocabulary describing edits
//! to it. Applying a delta reports the set of *touched element names*,
//! which drives memo invalidation in [`crate::incremental`].
//!
//! The second half of the module is the *fragmentation analysis*: a
//! value-footprint fixpoint that over-approximates which values each
//! flow can ever read or write, partitioning the live flows into
//! independent fragments whose reachability graphs compose by product.
//! [`crate::incremental::IncrementalElicitor`] analyses each fragment
//! once, memoises the result content-addressed, and recomposes the
//! full report — bit-identical to a from-scratch run.

use crate::action::Agent;
use apa::rule::{FnRule, LocalState, TransitionRule};
use apa::{Apa, ApaBuilder, ApaError, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A literal value of the editable model: an atom or an integer.
///
/// This is the *declarative* counterpart of [`apa::Value`] restricted
/// to what initial states use; structured tuples (CAM messages) only
/// arise dynamically through [`FlowKind::SendCam`] flows.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ValueLit {
    /// A named atom, e.g. `sW` or `warn`.
    Atom(String),
    /// An integer, e.g. a GPS coordinate.
    Int(i64),
}

impl ValueLit {
    /// Parses a token: integers (with optional sign) become
    /// [`ValueLit::Int`], everything else an atom.
    pub fn parse(token: &str) -> ValueLit {
        match token.parse::<i64>() {
            Ok(i) => ValueLit::Int(i),
            Err(_) => ValueLit::Atom(token.to_owned()),
        }
    }

    /// Converts the literal to an [`apa::Value`].
    pub fn to_value(&self) -> Value {
        match self {
            ValueLit::Atom(a) => Value::atom(a),
            ValueLit::Int(i) => Value::int(*i),
        }
    }
}

impl fmt::Display for ValueLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueLit::Atom(a) => write!(f, "{a}"),
            ValueLit::Int(i) => write!(f, "{i}"),
        }
    }
}

/// The closed vocabulary of flow behaviours an editable model can use.
///
/// Each kind installs a transition rule identical to the hand-written
/// closures of `fsa-vanet`'s `apa_model` (which delegates here, so the
/// two cannot drift). Text forms, as used by [`ModelDelta::parse`]:
/// `move`, `move-atom:ATOM`, `send-cam:VEHICLE`, `recv-cam:RANGE`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowKind {
    /// Move any value from the source to the target component.
    Move,
    /// Move a specific atom from the source to the target component.
    MoveAtom(String),
    /// The paper's CAM broadcast: when the warning atom `sW` is on the
    /// source bus, consume it together with one position integer and
    /// emit a `(cam, VEHICLE, position)` tuple onto the target.
    SendCam {
        /// The sender identity stamped into the CAM tuple.
        vehicle: String,
    },
    /// The paper's CAM reception: for every `cam` tuple on the source
    /// whose coordinate is strictly within `range` of an own-position
    /// integer on the target, put the `warn` atom onto the target.
    RecvCam {
        /// Reception radius (strict `<` comparison of coordinate
        /// distance, matching `fsa-vanet`'s `Range`).
        range: u64,
        /// Consume the CAM message on firing (the paper's semantics);
        /// `false` retains it (broadcast-retain variant).
        consume_msg: bool,
        /// Consume the own-position integer on firing (the paper's
        /// semantics); `false` retains it.
        consume_gps: bool,
    },
}

impl FlowKind {
    /// Parses the text form (see type docs). `recv-cam:RANGE` uses the
    /// paper's consume/consume semantics.
    pub fn parse(token: &str) -> Result<FlowKind, DeltaError> {
        if token == "move" {
            return Ok(FlowKind::Move);
        }
        if let Some(atom) = token.strip_prefix("move-atom:") {
            if atom.is_empty() {
                return Err(DeltaError::parse(token, "move-atom needs an atom"));
            }
            return Ok(FlowKind::MoveAtom(atom.to_owned()));
        }
        if let Some(vehicle) = token.strip_prefix("send-cam:") {
            if vehicle.is_empty() {
                return Err(DeltaError::parse(token, "send-cam needs a vehicle id"));
            }
            return Ok(FlowKind::SendCam {
                vehicle: vehicle.to_owned(),
            });
        }
        if let Some(range) = token.strip_prefix("recv-cam:") {
            let range: u64 = range
                .parse()
                .map_err(|_| DeltaError::parse(token, "recv-cam needs an integer range"))?;
            return Ok(FlowKind::RecvCam {
                range,
                consume_msg: true,
                consume_gps: true,
            });
        }
        Err(DeltaError::parse(token, "unknown flow kind"))
    }

    /// Builds the transition rule for this kind — the exact closures
    /// `fsa-vanet` installs for its vehicles.
    pub fn rule(&self) -> Box<dyn TransitionRule> {
        match self {
            FlowKind::Move => apa::rule::move_any(0, 1),
            FlowKind::MoveAtom(atom) => {
                let wanted = Value::atom(atom);
                apa::rule::move_matching(0, 1, move |v| *v == wanted)
            }
            FlowKind::SendCam { vehicle } => send_cam_rule(vehicle.clone()),
            FlowKind::RecvCam {
                range,
                consume_msg,
                consume_gps,
            } => recv_cam_rule(*range, *consume_msg, *consume_gps),
        }
    }
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowKind::Move => write!(f, "move"),
            FlowKind::MoveAtom(a) => write!(f, "move-atom:{a}"),
            FlowKind::SendCam { vehicle } => write!(f, "send-cam:{vehicle}"),
            FlowKind::RecvCam {
                range,
                consume_msg,
                consume_gps,
            } => {
                write!(f, "recv-cam:{range}")?;
                if !consume_msg || !consume_gps {
                    // Programmatic retain variants have no single-token
                    // text form; render the flags for diagnostics.
                    write!(f, "[msg={consume_msg},gps={consume_gps}]")?;
                }
                Ok(())
            }
        }
    }
}

/// The CAM broadcast rule over `[bus, net]` — shared between the
/// editable-model compiler and `fsa-vanet::apa_model::add_vehicle`.
pub fn send_cam_rule(vehicle: String) -> Box<dyn TransitionRule> {
    Box::new(FnRule::new(move |local: &LocalState| {
        let warn = Value::atom("sW");
        if !local[0].contains(&warn) {
            return Vec::new();
        }
        local[0]
            .iter()
            .filter_map(Value::as_int)
            .map(|coord| {
                let mut next = local.clone();
                next[0].remove(&warn);
                next[0].remove(&Value::int(coord));
                let msg =
                    Value::tuple([Value::atom("cam"), Value::atom(&vehicle), Value::int(coord)]);
                next[1].insert(msg.clone());
                (msg.to_string(), next)
            })
            .collect()
    }))
}

/// The CAM reception rule over `[net, bus]` — shared between the
/// editable-model compiler and `fsa-vanet::apa_model::add_vehicle`.
/// Distance is strict (`< range`), matching `fsa-vanet`'s `Range`.
pub fn recv_cam_rule(range: u64, consume_msg: bool, consume_gps: bool) -> Box<dyn TransitionRule> {
    Box::new(FnRule::new(move |local: &LocalState| {
        let mut firings = Vec::new();
        for msg in local[0].iter().filter(|m| m.has_tag("cam")) {
            let Some(msg_coord) = msg.field(2).and_then(Value::as_int) else {
                continue;
            };
            for own_coord in local[1].iter().filter_map(Value::as_int) {
                if msg_coord.abs_diff(own_coord) >= range {
                    continue;
                }
                let mut next = local.clone();
                if consume_msg {
                    next[0].remove(msg);
                }
                if consume_gps {
                    next[1].remove(&Value::int(own_coord));
                }
                next[1].insert(Value::atom("warn"));
                firings.push((msg.to_string(), next));
            }
        }
        firings
    }))
}

/// A named flow: an elementary automaton over a `[from, to]`
/// neighbourhood with a [`FlowKind`] behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Automaton name (the action name in the elicited requirements).
    pub name: String,
    /// Source component name.
    pub from: String,
    /// Target component name.
    pub to: String,
    /// Behaviour.
    pub kind: FlowKind,
}

/// A named component with its initial value set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Initial values (a set: APA components hold value *sets*).
    pub initial: BTreeSet<ValueLit>,
}

/// The editable scenario model: components, flows, stakeholder tags.
///
/// Declaration order is preserved — compiling declares components then
/// automata in their stored order, so a model built by replaying the
/// same declarations as a hand-built scenario compiles to an identical
/// [`apa::Apa`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditModel {
    components: Vec<Component>,
    flows: Vec<Flow>,
    stakeholders: BTreeMap<String, String>,
}

/// A typed model edit. Text forms (one per line, parsed by
/// [`ModelDelta::parse`]):
///
/// ```text
/// add-component NAME [VALUE...]
/// remove-component NAME
/// set-initial NAME [VALUE...]
/// add-flow NAME KIND FROM TO
/// remove-flow NAME
/// rewire-flow NAME FROM TO
/// retag-stakeholder AUTOMATON AGENT
/// ```
///
/// where `KIND` is a [`FlowKind`] text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelDelta {
    /// Declare a new component with the given initial values.
    AddComponent {
        /// Component name (must be fresh).
        name: String,
        /// Initial values.
        initial: BTreeSet<ValueLit>,
    },
    /// Remove a component no flow is attached to.
    RemoveComponent {
        /// Component name.
        name: String,
    },
    /// Replace a component's initial value set.
    SetInitial {
        /// Component name.
        name: String,
        /// The new initial values.
        initial: BTreeSet<ValueLit>,
    },
    /// Add a flow between two existing, distinct components.
    AddFlow {
        /// The flow to add (its name must be fresh).
        flow: Flow,
    },
    /// Remove a flow.
    RemoveFlow {
        /// Flow name.
        name: String,
    },
    /// Re-attach an existing flow to a new `[from, to]` pair.
    RewireFlow {
        /// Flow name.
        name: String,
        /// New source component.
        from: String,
        /// New target component.
        to: String,
    },
    /// Assign the stakeholder agent responsible for an automaton's
    /// requirements (defaults to the `V<tag>_x ↦ D_<tag>` convention).
    RetagStakeholder {
        /// Automaton (flow) name.
        automaton: String,
        /// Agent name.
        agent: String,
    },
}

/// Errors from parsing or applying [`ModelDelta`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A delta line or token could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// What went wrong.
        message: String,
    },
    /// A referenced component does not exist.
    UnknownComponent(String),
    /// A referenced flow does not exist.
    UnknownFlow(String),
    /// A component with this name already exists.
    DuplicateComponent(String),
    /// A flow with this name already exists.
    DuplicateFlow(String),
    /// The component still has flows attached and cannot be removed.
    ComponentInUse {
        /// The component.
        component: String,
        /// One attached flow.
        flow: String,
    },
    /// A flow's source and target must differ.
    SelfLoop {
        /// The flow.
        flow: String,
    },
}

impl DeltaError {
    fn parse(input: &str, message: &str) -> DeltaError {
        DeltaError::Parse {
            input: input.to_owned(),
            message: message.to_owned(),
        }
    }
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Parse { input, message } => write!(f, "cannot parse `{input}`: {message}"),
            DeltaError::UnknownComponent(n) => write!(f, "unknown component `{n}`"),
            DeltaError::UnknownFlow(n) => write!(f, "unknown flow `{n}`"),
            DeltaError::DuplicateComponent(n) => write!(f, "component `{n}` already exists"),
            DeltaError::DuplicateFlow(n) => write!(f, "flow `{n}` already exists"),
            DeltaError::ComponentInUse { component, flow } => {
                write!(f, "component `{component}` is still used by flow `{flow}`")
            }
            DeltaError::SelfLoop { flow } => {
                write!(f, "flow `{flow}` must connect two distinct components")
            }
        }
    }
}

impl Error for DeltaError {}

impl ModelDelta {
    /// Parses one delta line (see [`ModelDelta`] for the grammar).
    pub fn parse(line: &str) -> Result<ModelDelta, DeltaError> {
        fn need(
            tokens: &mut std::str::SplitWhitespace<'_>,
            line: &str,
            what: &str,
        ) -> Result<String, DeltaError> {
            tokens
                .next()
                .map(str::to_owned)
                .ok_or_else(|| DeltaError::parse(line, &format!("missing {what}")))
        }
        let mut tokens = line.split_whitespace();
        let op = tokens
            .next()
            .ok_or_else(|| DeltaError::parse(line, "empty delta"))?;
        let delta = match op {
            "add-component" => ModelDelta::AddComponent {
                name: need(&mut tokens, line, "component name")?,
                initial: tokens.by_ref().map(ValueLit::parse).collect(),
            },
            "remove-component" => ModelDelta::RemoveComponent {
                name: need(&mut tokens, line, "component name")?,
            },
            "set-initial" => ModelDelta::SetInitial {
                name: need(&mut tokens, line, "component name")?,
                initial: tokens.by_ref().map(ValueLit::parse).collect(),
            },
            "add-flow" => ModelDelta::AddFlow {
                flow: Flow {
                    name: need(&mut tokens, line, "flow name")?,
                    kind: FlowKind::parse(&need(&mut tokens, line, "flow kind")?)?,
                    from: need(&mut tokens, line, "source component")?,
                    to: need(&mut tokens, line, "target component")?,
                },
            },
            "remove-flow" => ModelDelta::RemoveFlow {
                name: need(&mut tokens, line, "flow name")?,
            },
            "rewire-flow" => ModelDelta::RewireFlow {
                name: need(&mut tokens, line, "flow name")?,
                from: need(&mut tokens, line, "source component")?,
                to: need(&mut tokens, line, "target component")?,
            },
            "retag-stakeholder" => ModelDelta::RetagStakeholder {
                automaton: need(&mut tokens, line, "automaton name")?,
                agent: need(&mut tokens, line, "agent name")?,
            },
            other => return Err(DeltaError::parse(line, &format!("unknown edit `{other}`"))),
        };
        if let Some(extra) = tokens.next() {
            return Err(DeltaError::parse(
                line,
                &format!("unexpected trailing token `{extra}`"),
            ));
        }
        Ok(delta)
    }
}

impl fmt::Display for ModelDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals = |f: &mut fmt::Formatter<'_>, initial: &BTreeSet<ValueLit>| {
            for v in initial {
                write!(f, " {v}")?;
            }
            Ok(())
        };
        match self {
            ModelDelta::AddComponent { name, initial } => {
                write!(f, "add-component {name}")?;
                vals(f, initial)
            }
            ModelDelta::RemoveComponent { name } => write!(f, "remove-component {name}"),
            ModelDelta::SetInitial { name, initial } => {
                write!(f, "set-initial {name}")?;
                vals(f, initial)
            }
            ModelDelta::AddFlow { flow } => write!(
                f,
                "add-flow {} {} {} {}",
                flow.name, flow.kind, flow.from, flow.to
            ),
            ModelDelta::RemoveFlow { name } => write!(f, "remove-flow {name}"),
            ModelDelta::RewireFlow { name, from, to } => {
                write!(f, "rewire-flow {name} {from} {to}")
            }
            ModelDelta::RetagStakeholder { automaton, agent } => {
                write!(f, "retag-stakeholder {automaton} {agent}")
            }
        }
    }
}

/// One step of an edit script: a delta or an `elicit` checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptStep {
    /// Apply this delta.
    Delta(ModelDelta),
    /// Re-elicit the requirement set and render it.
    Elicit,
}

/// Parses an edit script: one [`ModelDelta`] or the literal `elicit`
/// per line; blank lines and `#` comments are skipped. If the script
/// does not end with an `elicit` step, one is appended, so every
/// script yields at least one report.
pub fn parse_script(text: &str) -> Result<Vec<ScriptStep>, DeltaError> {
    let mut steps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "elicit" {
            steps.push(ScriptStep::Elicit);
        } else {
            steps.push(ScriptStep::Delta(ModelDelta::parse(line)?));
        }
    }
    if !matches!(steps.last(), Some(ScriptStep::Elicit)) {
        steps.push(ScriptStep::Elicit);
    }
    Ok(steps)
}

/// The stakeholder convention of the paper's VANET scenarios: automaton
/// `V<tag>_x` is the responsibility of driver `D_<tag>`; anything else
/// falls back to `D_?`. `fsa-vanet::apa_model::stakeholder_of`
/// delegates here.
pub fn default_stakeholder(automaton: &str) -> Agent {
    let tag = automaton
        .strip_prefix('V')
        .and_then(|rest| rest.split('_').next())
        .unwrap_or("?");
    Agent::new(&format!("D_{tag}"))
}

impl EditModel {
    /// An empty model.
    pub fn new() -> EditModel {
        EditModel::default()
    }

    /// The components in declaration order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The flows in declaration order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// All element names (components and flows) — the dependency
    /// universe for memo invalidation.
    pub fn element_names(&self) -> BTreeSet<String> {
        self.components
            .iter()
            .map(|c| c.name.clone())
            .chain(self.flows.iter().map(|f| f.name.clone()))
            .collect()
    }

    /// The stakeholder agent for an automaton: an explicit
    /// `retag-stakeholder` tag if present, else the
    /// [`default_stakeholder`] convention.
    pub fn stakeholder(&self, automaton: &str) -> Agent {
        match self.stakeholders.get(automaton) {
            Some(agent) => Agent::new(agent),
            None => default_stakeholder(automaton),
        }
    }

    fn component_idx(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }

    fn flow_idx(&self, name: &str) -> Option<usize> {
        self.flows.iter().position(|f| f.name == name)
    }

    /// Applies one delta, returning the set of *touched element names*
    /// (for memo invalidation). Validation happens before any mutation,
    /// so a failed apply leaves the model unchanged.
    pub fn apply(&mut self, delta: &ModelDelta) -> Result<BTreeSet<String>, DeltaError> {
        let mut touched = BTreeSet::new();
        match delta {
            ModelDelta::AddComponent { name, initial } => {
                if self.component_idx(name).is_some() {
                    return Err(DeltaError::DuplicateComponent(name.clone()));
                }
                self.components.push(Component {
                    name: name.clone(),
                    initial: initial.clone(),
                });
                touched.insert(name.clone());
            }
            ModelDelta::RemoveComponent { name } => {
                let idx = self
                    .component_idx(name)
                    .ok_or_else(|| DeltaError::UnknownComponent(name.clone()))?;
                if let Some(f) = self.flows.iter().find(|f| f.from == *name || f.to == *name) {
                    return Err(DeltaError::ComponentInUse {
                        component: name.clone(),
                        flow: f.name.clone(),
                    });
                }
                self.components.remove(idx);
                touched.insert(name.clone());
            }
            ModelDelta::SetInitial { name, initial } => {
                let idx = self
                    .component_idx(name)
                    .ok_or_else(|| DeltaError::UnknownComponent(name.clone()))?;
                self.components[idx].initial = initial.clone();
                touched.insert(name.clone());
            }
            ModelDelta::AddFlow { flow } => {
                if self.flow_idx(&flow.name).is_some() {
                    return Err(DeltaError::DuplicateFlow(flow.name.clone()));
                }
                if self.component_idx(&flow.from).is_none() {
                    return Err(DeltaError::UnknownComponent(flow.from.clone()));
                }
                if self.component_idx(&flow.to).is_none() {
                    return Err(DeltaError::UnknownComponent(flow.to.clone()));
                }
                if flow.from == flow.to {
                    return Err(DeltaError::SelfLoop {
                        flow: flow.name.clone(),
                    });
                }
                touched.insert(flow.name.clone());
                touched.insert(flow.from.clone());
                touched.insert(flow.to.clone());
                self.flows.push(flow.clone());
            }
            ModelDelta::RemoveFlow { name } => {
                let idx = self
                    .flow_idx(name)
                    .ok_or_else(|| DeltaError::UnknownFlow(name.clone()))?;
                let flow = self.flows.remove(idx);
                touched.insert(flow.name);
                touched.insert(flow.from);
                touched.insert(flow.to);
            }
            ModelDelta::RewireFlow { name, from, to } => {
                let idx = self
                    .flow_idx(name)
                    .ok_or_else(|| DeltaError::UnknownFlow(name.clone()))?;
                if self.component_idx(from).is_none() {
                    return Err(DeltaError::UnknownComponent(from.clone()));
                }
                if self.component_idx(to).is_none() {
                    return Err(DeltaError::UnknownComponent(to.clone()));
                }
                if from == to {
                    return Err(DeltaError::SelfLoop { flow: name.clone() });
                }
                let flow = &mut self.flows[idx];
                touched.insert(flow.name.clone());
                touched.insert(flow.from.clone());
                touched.insert(flow.to.clone());
                touched.insert(from.clone());
                touched.insert(to.clone());
                flow.from = from.clone();
                flow.to = to.clone();
            }
            ModelDelta::RetagStakeholder { automaton, agent } => {
                if self.flow_idx(automaton).is_none() {
                    return Err(DeltaError::UnknownFlow(automaton.clone()));
                }
                self.stakeholders.insert(automaton.clone(), agent.clone());
                // Stakeholders only affect requirement attribution,
                // which is recomputed on every elicitation — no memo
                // entry depends on them.
            }
        }
        Ok(touched)
    }

    /// Compiles to an [`apa::Apa`]: components in declaration order,
    /// then one elementary automaton per flow in declaration order.
    pub fn compile(&self) -> Result<Apa, ApaError> {
        let mut builder = ApaBuilder::new();
        let mut ids = BTreeMap::new();
        for c in &self.components {
            let id = builder.component(&c.name, c.initial.iter().map(ValueLit::to_value));
            ids.insert(c.name.clone(), id);
        }
        for f in &self.flows {
            builder.automaton(&f.name, [ids[&f.from], ids[&f.to]], f.kind.rule());
        }
        builder.build()
    }

    /// A canonical text encoding of the model (components sorted by
    /// name with sorted initial values, flows sorted by name): the
    /// content-hash payload for fragment memo keys. Sound because every
    /// output the incremental engine extracts from a fragment is
    /// invariant under declaration order.
    pub fn canonical_encoding(&self) -> String {
        let mut out = String::new();
        let mut comps: Vec<&Component> = self.components.iter().collect();
        comps.sort_by(|a, b| a.name.cmp(&b.name));
        for c in comps {
            out.push_str("c ");
            out.push_str(&c.name);
            for v in &c.initial {
                out.push(' ');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        let mut flows: Vec<&Flow> = self.flows.iter().collect();
        flows.sort_by(|a, b| a.name.cmp(&b.name));
        for f in flows {
            out.push_str(&format!("f {} {} {} {}\n", f.name, f.kind, f.from, f.to));
        }
        out
    }

    /// Partitions the live flows into independent fragments (see module
    /// docs and DESIGN.md §2.11). Flows that can never fire under the
    /// value-footprint over-approximation are dropped entirely: they
    /// contribute no states, edges, minima, maxima, or verdicts.
    pub fn fragments(&self) -> Vec<FragmentModel> {
        let footprint = self.value_footprint();
        // Touched value sets per live flow: (on `from`, on `to`).
        let mut live: Vec<(usize, BTreeSet<Val>, BTreeSet<Val>)> = Vec::new();
        for (i, f) in self.flows.iter().enumerate() {
            if let Some((on_from, on_to)) = self.touched_values(f, &footprint) {
                live.push((i, on_from, on_to));
            }
        }
        // Union-find over live flows: merge two flows when they touch a
        // common value on a shared component.
        let mut parent: Vec<usize> = (0..live.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for a in 0..live.len() {
            for b in (a + 1)..live.len() {
                let fa = &self.flows[live[a].0];
                let fb = &self.flows[live[b].0];
                let mut interacts = false;
                for (ca, va) in [(&fa.from, &live[a].1), (&fa.to, &live[a].2)] {
                    for (cb, vb) in [(&fb.from, &live[b].1), (&fb.to, &live[b].2)] {
                        if ca == cb && va.intersection(vb).next().is_some() {
                            interacts = true;
                        }
                    }
                }
                if interacts {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        // Group live flows by root, in first-flow order.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for idx in 0..live.len() {
            let root = find(&mut parent, idx);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(idx),
                None => groups.push((root, vec![idx])),
            }
        }
        // Build each fragment sub-model: adjacent components in
        // declaration order with share-restricted initials, member
        // flows in declaration order.
        groups
            .into_iter()
            .map(|(_, members)| {
                let mut share: BTreeMap<&str, BTreeSet<Val>> = BTreeMap::new();
                let mut flow_idxs: Vec<usize> = members.iter().map(|&m| live[m].0).collect();
                flow_idxs.sort_unstable();
                for &m in &members {
                    let (i, on_from, on_to) = &live[m];
                    let f = &self.flows[*i];
                    share
                        .entry(&f.from)
                        .or_default()
                        .extend(on_from.iter().cloned());
                    share
                        .entry(&f.to)
                        .or_default()
                        .extend(on_to.iter().cloned());
                }
                let components: Vec<Component> = self
                    .components
                    .iter()
                    .filter_map(|c| {
                        let s = share.get(c.name.as_str())?;
                        let initial = c
                            .initial
                            .iter()
                            .filter(|v| s.contains(&Val::from_lit(v)))
                            .cloned()
                            .collect();
                        Some(Component {
                            name: c.name.clone(),
                            initial,
                        })
                    })
                    .collect();
                let flows: Vec<Flow> = flow_idxs.iter().map(|&i| self.flows[i].clone()).collect();
                let deps = components
                    .iter()
                    .map(|c| c.name.clone())
                    .chain(flows.iter().map(|f| f.name.clone()))
                    .collect();
                FragmentModel {
                    model: EditModel {
                        components,
                        flows,
                        stakeholders: BTreeMap::new(),
                    },
                    deps,
                }
            })
            .collect()
    }

    /// The value-footprint fixpoint: for each component, an
    /// over-approximation of every value it can ever contain.
    fn value_footprint(&self) -> BTreeMap<String, BTreeSet<Val>> {
        let mut v: BTreeMap<String, BTreeSet<Val>> = self
            .components
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    c.initial.iter().map(Val::from_lit).collect(),
                )
            })
            .collect();
        loop {
            let mut changed = false;
            for f in &self.flows {
                let from = v.get(&f.from).cloned().unwrap_or_default();
                let mut add: BTreeSet<Val> = BTreeSet::new();
                match &f.kind {
                    FlowKind::Move => add = from,
                    FlowKind::MoveAtom(a) => {
                        let atom = Val::Atom(a.clone());
                        if from.contains(&atom) {
                            add.insert(atom);
                        }
                    }
                    FlowKind::SendCam { vehicle } => {
                        if from.contains(&Val::Atom("sW".to_owned())) {
                            for val in &from {
                                if let Val::Int(i) = val {
                                    add.insert(Val::Cam {
                                        vehicle: vehicle.clone(),
                                        coord: *i,
                                    });
                                }
                            }
                        }
                    }
                    FlowKind::RecvCam { range, .. } => {
                        let to = v.get(&f.to).cloned().unwrap_or_default();
                        let in_range = from.iter().any(|val| match val {
                            Val::Cam { coord, .. } => to.iter().any(|o| match o {
                                Val::Int(own) => coord.abs_diff(*own) < *range,
                                _ => false,
                            }),
                            _ => false,
                        });
                        if in_range {
                            add.insert(Val::Atom("warn".to_owned()));
                        }
                    }
                }
                if !add.is_empty() {
                    let target = v.entry(f.to.clone()).or_default();
                    for val in add {
                        changed |= target.insert(val);
                    }
                }
            }
            if !changed {
                return v;
            }
        }
    }

    /// The values a flow can read or write on its `from` and `to`
    /// components under the footprint, or `None` when the flow can
    /// never fire (dead flow). The sets quantify over the *full*
    /// footprint of the adjacent components (not a fragment-restricted
    /// view) — this conservatism is what makes values outside a
    /// fragment's share provably inert for its flows.
    fn touched_values(
        &self,
        f: &Flow,
        footprint: &BTreeMap<String, BTreeSet<Val>>,
    ) -> Option<(BTreeSet<Val>, BTreeSet<Val>)> {
        let empty = BTreeSet::new();
        let from = footprint.get(&f.from).unwrap_or(&empty);
        let to = footprint.get(&f.to).unwrap_or(&empty);
        match &f.kind {
            FlowKind::Move => {
                if from.is_empty() {
                    None
                } else {
                    Some((from.clone(), from.clone()))
                }
            }
            FlowKind::MoveAtom(a) => {
                let atom = Val::Atom(a.clone());
                if from.contains(&atom) {
                    Some((BTreeSet::from([atom.clone()]), BTreeSet::from([atom])))
                } else {
                    None
                }
            }
            FlowKind::SendCam { vehicle } => {
                let warn = Val::Atom("sW".to_owned());
                let ints: Vec<i64> = from
                    .iter()
                    .filter_map(|v| match v {
                        Val::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if !from.contains(&warn) || ints.is_empty() {
                    return None;
                }
                let mut on_from: BTreeSet<Val> = ints.iter().map(|&i| Val::Int(i)).collect();
                on_from.insert(warn);
                let on_to = ints
                    .iter()
                    .map(|&i| Val::Cam {
                        vehicle: vehicle.clone(),
                        coord: i,
                    })
                    .collect();
                Some((on_from, on_to))
            }
            FlowKind::RecvCam { range, .. } => {
                let own: Vec<i64> = to
                    .iter()
                    .filter_map(|v| match v {
                        Val::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                let cams: BTreeSet<Val> = from
                    .iter()
                    .filter(|v| match v {
                        Val::Cam { coord, .. } => own.iter().any(|o| coord.abs_diff(*o) < *range),
                        _ => false,
                    })
                    .cloned()
                    .collect();
                if cams.is_empty() {
                    return None;
                }
                let mut on_to: BTreeSet<Val> = to
                    .iter()
                    .filter(|v| match v {
                        Val::Int(own) => cams.iter().any(|c| match c {
                            Val::Cam { coord, .. } => coord.abs_diff(*own) < *range,
                            _ => false,
                        }),
                        _ => false,
                    })
                    .cloned()
                    .collect();
                on_to.insert(Val::Atom("warn".to_owned()));
                Some((cams, on_to))
            }
        }
    }
}

/// One fragment of an [`EditModel`]: an independent sub-model plus the
/// element names it depends on (for memo invalidation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentModel {
    /// The share-restricted sub-model; compiles and analyses on its own.
    pub model: EditModel,
    /// Names of the components and flows this fragment reads.
    pub deps: BTreeSet<String>,
}

/// The abstract value domain of the footprint analysis: atoms,
/// integers, and CAM tuples (the only structured values the
/// [`FlowKind`] vocabulary can produce).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Val {
    Atom(String),
    Int(i64),
    Cam { vehicle: String, coord: i64 },
}

impl Val {
    fn from_lit(lit: &ValueLit) -> Val {
        match lit {
            ValueLit::Atom(a) => Val::Atom(a.clone()),
            ValueLit::Int(i) => Val::Int(*i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_all(model: &mut EditModel, lines: &[&str]) {
        for line in lines {
            let delta = ModelDelta::parse(line).expect(line);
            model.apply(&delta).expect(line);
        }
    }

    /// A single warner/receiver pair, in the same element order as
    /// `fsa-vanet`'s `two_vehicle_apa`.
    fn pair_model() -> EditModel {
        let mut m = EditModel::new();
        apply_all(
            &mut m,
            &[
                "add-component esp1 sW",
                "add-component gps1 0",
                "add-component bus1",
                "add-component hmi1",
                "add-component net",
                "add-flow V1_sense move esp1 bus1",
                "add-flow V1_pos move gps1 bus1",
                "add-flow V1_send send-cam:V1 bus1 net",
                "add-flow V1_rec recv-cam:100 net bus1",
                "add-flow V1_show move-atom:warn bus1 hmi1",
                "add-component esp2",
                "add-component gps2 50",
                "add-component bus2",
                "add-component hmi2",
                "add-flow V2_sense move esp2 bus2",
                "add-flow V2_pos move gps2 bus2",
                "add-flow V2_send send-cam:V2 bus2 net",
                "add-flow V2_rec recv-cam:100 net bus2",
                "add-flow V2_show move-atom:warn bus2 hmi2",
            ],
        );
        m
    }

    #[test]
    fn delta_lines_round_trip_through_display() {
        for line in [
            "add-component esp1 sW 7",
            "remove-component esp1",
            "set-initial gps1 0 50",
            "add-flow V1_send send-cam:V1 bus1 net",
            "add-flow V1_rec recv-cam:100 net bus1",
            "add-flow V1_show move-atom:warn bus1 hmi1",
            "add-flow V1_pos move gps1 bus1",
            "remove-flow V1_pos",
            "rewire-flow V1_pos gps1 bus2",
            "retag-stakeholder V1_show D_1",
        ] {
            let delta = ModelDelta::parse(line).expect(line);
            assert_eq!(delta.to_string(), line);
            assert_eq!(ModelDelta::parse(&delta.to_string()).unwrap(), delta);
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for line in [
            "",
            "frobnicate x",
            "add-flow V1 move esp1",
            "add-flow V1 warp esp1 bus1",
            "add-flow V1 recv-cam:far net bus1",
            "add-flow V1 move esp1 bus1 extra",
            "remove-component",
            "retag-stakeholder V1_show",
        ] {
            assert!(ModelDelta::parse(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn apply_validates_before_mutating() {
        let mut m = pair_model();
        let before = m.clone();
        for line in [
            "add-component esp1",
            "remove-component nosuch",
            "remove-component esp1", // in use by V1_sense
            "set-initial nosuch 1",
            "add-flow V1_sense move esp1 bus1",
            "add-flow X move esp1 esp1",
            "add-flow X move nosuch bus1",
            "remove-flow nosuch",
            "rewire-flow nosuch esp1 bus1",
            "rewire-flow V1_pos gps1 gps1",
            "retag-stakeholder nosuch D_1",
        ] {
            let delta = ModelDelta::parse(line).expect(line);
            assert!(m.apply(&delta).is_err(), "accepted: {line}");
            assert_eq!(m, before, "mutated on failed apply: {line}");
        }
    }

    #[test]
    fn touched_sets_cover_the_edited_elements() {
        let mut m = pair_model();
        let t = m
            .apply(&ModelDelta::parse("set-initial gps1 0 30").unwrap())
            .unwrap();
        assert_eq!(t, BTreeSet::from(["gps1".to_owned()]));
        let t = m
            .apply(&ModelDelta::parse("rewire-flow V1_pos gps1 bus2").unwrap())
            .unwrap();
        for name in ["V1_pos", "gps1", "bus1", "bus2"] {
            assert!(t.contains(name), "missing {name} in {t:?}");
        }
        let t = m
            .apply(&ModelDelta::parse("retag-stakeholder V1_show D_9").unwrap())
            .unwrap();
        assert!(t.is_empty());
        assert_eq!(m.stakeholder("V1_show").to_string(), "D_9");
    }

    #[test]
    fn default_stakeholder_follows_the_vehicle_tag() {
        assert_eq!(default_stakeholder("V2_show").to_string(), "D_2");
        assert_eq!(default_stakeholder("V14_rec").to_string(), "D_14");
        assert_eq!(default_stakeholder("rsu_relay").to_string(), "D_?");
    }

    #[test]
    fn compiled_pair_matches_the_paper_scenario() {
        let apa = pair_model().compile().unwrap();
        let graph = apa.reachability(&apa::ReachOptions::default()).unwrap();
        assert_eq!(graph.state_count(), 12);
        assert_eq!(graph.dead_states().len(), 1);
        assert_eq!(graph.minima(), vec!["V1_pos", "V1_sense", "V2_pos"]);
        assert_eq!(graph.maxima(), vec!["V2_show"]);
    }

    #[test]
    fn script_parsing_appends_a_final_elicit() {
        let steps =
            parse_script("# warm-up\n\nset-initial gps1 0\nelicit\nset-initial gps1 30\n").unwrap();
        assert_eq!(steps.len(), 4);
        assert!(matches!(steps[1], ScriptStep::Elicit));
        assert!(matches!(steps[3], ScriptStep::Elicit));
        assert!(parse_script("not a delta").is_err());
    }

    #[test]
    fn fragments_split_independent_pairs_and_drop_dead_flows() {
        // Two pairs far apart: each pair is one fragment; the
        // receiver-side sense/send flows are dead (no sW) and dropped.
        let mut m = pair_model();
        apply_all(
            &mut m,
            &[
                "add-component esp3 sW",
                "add-component gps3 10000",
                "add-component bus3",
                "add-component hmi3",
                "add-flow V3_sense move esp3 bus3",
                "add-flow V3_pos move gps3 bus3",
                "add-flow V3_send send-cam:V3 bus3 net",
                "add-flow V3_rec recv-cam:100 net bus3",
                "add-flow V3_show move-atom:warn bus3 hmi3",
                "add-component esp4",
                "add-component gps4 10050",
                "add-component bus4",
                "add-component hmi4",
                "add-flow V4_sense move esp4 bus4",
                "add-flow V4_pos move gps4 bus4",
                "add-flow V4_send send-cam:V4 bus4 net",
                "add-flow V4_rec recv-cam:100 net bus4",
                "add-flow V4_show move-atom:warn bus4 hmi4",
            ],
        );
        let frags = m.fragments();
        assert_eq!(frags.len(), 2, "{frags:#?}");
        let names: Vec<BTreeSet<&str>> = frags
            .iter()
            .map(|f| f.model.flows().iter().map(|fl| fl.name.as_str()).collect())
            .collect();
        assert!(names[0].contains("V1_send") && names[0].contains("V2_show"));
        assert!(names[1].contains("V3_send") && names[1].contains("V4_show"));
        // Dead flows appear in no fragment.
        for dead in ["V2_sense", "V2_send", "V4_sense", "V4_send"] {
            assert!(names.iter().all(|n| !n.contains(dead)), "{dead} survived");
        }
        // Each fragment analyses to the familiar 12-state pair graph.
        for frag in &frags {
            let g = frag
                .model
                .compile()
                .unwrap()
                .reachability(&apa::ReachOptions::default())
                .unwrap();
            assert_eq!(g.state_count(), 12);
        }
        // Deps name the fragment's own elements only.
        assert!(frags[0].deps.contains("bus1") && !frags[0].deps.contains("bus3"));
    }

    #[test]
    fn in_range_pairs_share_the_net_and_merge() {
        // Both receivers in range of both senders: one fragment.
        let mut m = pair_model();
        apply_all(
            &mut m,
            &[
                "add-component esp3 sW",
                "add-component gps3 30",
                "add-component bus3",
                "add-component hmi3",
                "add-flow V3_sense move esp3 bus3",
                "add-flow V3_pos move gps3 bus3",
                "add-flow V3_send send-cam:V3 bus3 net",
                "add-flow V3_rec recv-cam:100 net bus3",
                "add-flow V3_show move-atom:warn bus3 hmi3",
            ],
        );
        assert_eq!(m.fragments().len(), 1);
    }

    #[test]
    fn canonical_encoding_ignores_declaration_order() {
        let mut a = EditModel::new();
        apply_all(
            &mut a,
            &[
                "add-component x 1 2",
                "add-component y",
                "add-flow f move x y",
                "add-flow g move y x",
            ],
        );
        let mut b = EditModel::new();
        apply_all(
            &mut b,
            &[
                "add-component y",
                "add-component x 2 1",
                "add-flow g move y x",
                "add-flow f move x y",
            ],
        );
        assert_eq!(a.canonical_encoding(), b.canonical_encoding());
        let mut c = b.clone();
        apply_all(&mut c, &["set-initial x 1"]);
        assert_ne!(a.canonical_encoding(), c.canonical_encoding());
    }
}
