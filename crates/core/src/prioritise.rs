//! Requirement categorisation and prioritisation.
//!
//! §1 of the paper places elicitation inside a larger process:
//! "a requirements categorisation and prioritisation, followed by
//! requirements inspection"; §4.3 adds that "once an exhaustive list of
//! security requirements is identified, a requirements categorisation
//! and prioritisation process can evaluate them according to a maximum
//! acceptable risk strategy."
//!
//! This module implements a transparent, flow-derived prioritisation:
//!
//! * **category** — the safety classification ([`Relevance`]) computed
//!   during elicitation;
//! * **influence** — how many safety-critical outputs (maximal
//!   elements) transitively depend on the requirement's antecedent: a
//!   forged input with influence 5 corrupts five outputs;
//! * **rank** — safety before availability, higher influence first,
//!   then canonical term order for determinism.

use crate::error::FsaError;
use crate::instance::SosInstance;
use crate::manual::ElicitationReport;
use crate::requirements::{AuthRequirement, Relevance};
use fsa_graph::closure::reflexive_transitive_closure;
use std::fmt;

/// A requirement with its priority metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrioritisedRequirement {
    /// The requirement.
    pub requirement: AuthRequirement,
    /// Safety vs. availability.
    pub relevance: Relevance,
    /// Number of outputs transitively depending on the antecedent.
    pub influence: usize,
    /// 1-based rank after sorting (1 = most critical).
    pub rank: usize,
}

impl fmt::Display for PrioritisedRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{} / influences {} output(s)] {}",
            self.rank, self.relevance, self.influence, self.requirement
        )
    }
}

/// Prioritises the requirements of an elicitation report.
///
/// # Errors
///
/// Returns [`FsaError::UnknownAction`] if the report does not belong to
/// `instance`.
pub fn prioritise(
    instance: &SosInstance,
    report: &ElicitationReport,
) -> Result<Vec<PrioritisedRequirement>, FsaError> {
    let g = instance.graph();
    let closure = reflexive_transitive_closure(g);
    let sinks = g.sinks();
    let mut items: Vec<PrioritisedRequirement> = report
        .classified_requirements()
        .iter()
        .map(|c| {
            let a = instance
                .find(&c.requirement.antecedent)
                .ok_or_else(|| FsaError::UnknownAction(c.requirement.antecedent.to_string()))?;
            let influence = sinks
                .iter()
                .filter(|&&s| s != a && closure.contains(a, s))
                .count();
            Ok(PrioritisedRequirement {
                requirement: c.requirement.clone(),
                relevance: c.relevance,
                influence,
                rank: 0,
            })
        })
        .collect::<Result<_, FsaError>>()?;
    items.sort_by(|x, y| {
        x.relevance
            .cmp(&y.relevance) // Safety < Availability in derive order
            .then(y.influence.cmp(&x.influence))
            .then(x.requirement.cmp(&y.requirement))
    });
    for (i, item) in items.iter_mut().enumerate() {
        item.rank = i + 1;
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::elicit;

    #[test]
    fn safety_ranks_before_availability() {
        // A Fig. 4-like model with one availability requirement.
        let inst = test_support::evita_like();
        let report = elicit(&inst).unwrap();
        let ranked = prioritise(&inst, &report).unwrap();
        assert_eq!(ranked.len(), report.requirements().len());
        // Ranks are 1..=n and sorted.
        for (i, item) in ranked.iter().enumerate() {
            assert_eq!(item.rank, i + 1);
        }
        // All availability entries come after every safety entry.
        let first_avail = ranked
            .iter()
            .position(|r| r.relevance == Relevance::Availability);
        if let Some(p) = first_avail {
            assert!(ranked[p..]
                .iter()
                .all(|r| r.relevance == Relevance::Availability));
        }
    }

    #[test]
    fn influence_counts_dependent_outputs() {
        use crate::action::Action;
        use crate::instance::SosInstanceBuilder;
        // One origin feeding two outputs, another feeding one.
        let mut b = SosInstanceBuilder::new("t");
        let wide = b.action(Action::parse("wide"), "P");
        let narrow = b.action(Action::parse("narrow"), "P");
        let out1 = b.action(Action::parse("out1"), "P");
        let out2 = b.action(Action::parse("out2"), "P");
        b.flow(wide, out1);
        b.flow(wide, out2);
        b.flow(narrow, out2);
        let inst = b.build();
        let ranked = prioritise(&inst, &elicit(&inst).unwrap()).unwrap();
        assert_eq!(ranked[0].requirement.antecedent, Action::parse("wide"));
        assert_eq!(ranked[0].influence, 2);
        let narrow_entry = ranked
            .iter()
            .find(|r| r.requirement.antecedent == Action::parse("narrow"))
            .unwrap();
        assert_eq!(narrow_entry.influence, 1);
        assert!(ranked[0].rank < narrow_entry.rank);
    }

    #[test]
    fn display_mentions_rank_and_influence() {
        use crate::action::Action;
        use crate::instance::SosInstanceBuilder;
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action(Action::parse("a"), "P");
        let z = b.action(Action::parse("z"), "P");
        b.flow(a, z);
        let inst = b.build();
        let ranked = prioritise(&inst, &elicit(&inst).unwrap()).unwrap();
        let s = ranked[0].to_string();
        assert!(s.starts_with("#1 [safety / influences 1 output(s)]"));
    }
}

#[cfg(test)]
mod test_support {
    use crate::action::Action;
    use crate::instance::{SosInstance, SosInstanceBuilder};

    /// A small model with one policy-only dependency, for prioritisation
    /// tests (mirrors the Fig. 4 structure).
    pub(crate) fn evita_like() -> SosInstance {
        let mut b = SosInstanceBuilder::new("evita-like");
        let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let rec = b.action(Action::parse("rec(CU_w,cam(pos))"), "D_w");
        let pos2 = b.action(Action::parse("pos(GPS_2,pos)"), "D_2");
        let fwd = b.action(Action::parse("fwd(CU_2,cam(pos))"), "D_2");
        let show = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
        b.flow(sense, send);
        b.flow(send, rec);
        b.flow(rec, fwd);
        b.policy_flow(pos2, fwd);
        b.flow(fwd, show);
        b.build()
    }
}
