//! Safety evaluation of elicited requirements.
//!
//! §4.4: "the resulting requirements have to be evaluated regarding
//! their meaning for the functional safety of the system." The paper's
//! requirement (4) — authenticity of a *forwarding* vehicle's position —
//! originates from the position-based forwarding policy, which "is
//! introduced for performance reasons"; breaking it "cannot cause the
//! warning of a driver that should not be warned", so it is an
//! availability rather than a safety requirement.
//!
//! The mechanisation: a requirement `auth(a, b, P)` is **safety
//! relevant** iff `b` still depends on `a` when all policy-motivated
//! flows are removed, i.e. iff a path from `a` to `b` exists in the
//! functional (non-policy) subgraph. Otherwise the dependency exists
//! only through a policy and the requirement is classified
//! [`Relevance::Availability`].

use crate::error::FsaError;
use crate::instance::SosInstance;
use crate::requirements::{AuthRequirement, Relevance};
use fsa_graph::closure::reflexive_transitive_closure;

/// Classifies one requirement against its instance.
///
/// For many requirements over the same instance prefer [`Classifier`],
/// which computes the functional closure once.
///
/// # Errors
///
/// Returns [`FsaError::UnknownAction`] if the requirement's actions are
/// not part of `instance`.
pub fn classify(instance: &SosInstance, req: &AuthRequirement) -> Result<Relevance, FsaError> {
    Classifier::new(instance).classify(instance, req)
}

/// A reusable classifier holding the precomputed reflexive transitive
/// closure of the instance's functional (non-policy) subgraph.
#[derive(Debug, Clone)]
pub struct Classifier {
    closure: fsa_graph::closure::Relation,
}

impl Classifier {
    /// Precomputes the functional closure of `instance`.
    pub fn new(instance: &SosInstance) -> Self {
        Classifier {
            closure: reflexive_transitive_closure(&instance.functional_subgraph()),
        }
    }

    /// Classifies `req`; `instance` must be the one passed to
    /// [`Classifier::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FsaError::UnknownAction`] if the requirement's actions
    /// are not part of `instance`.
    pub fn classify(
        &self,
        instance: &SosInstance,
        req: &AuthRequirement,
    ) -> Result<Relevance, FsaError> {
        let a = instance
            .find(&req.antecedent)
            .ok_or_else(|| FsaError::UnknownAction(req.antecedent.to_string()))?;
        let b = instance
            .find(&req.consequent)
            .ok_or_else(|| FsaError::UnknownAction(req.consequent.to_string()))?;
        Ok(self.classify_nodes(a, b))
    }

    /// Classifies a dependency given directly by node ids.
    pub fn classify_nodes(&self, a: fsa_graph::NodeId, b: fsa_graph::NodeId) -> Relevance {
        if self.closure.contains(a, b) {
            Relevance::Safety
        } else {
            Relevance::Availability
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Agent};
    use crate::instance::SosInstanceBuilder;

    fn req(a: &str, b: &str) -> AuthRequirement {
        AuthRequirement::new(Action::parse(a), Action::parse(b), Agent::new("D_w"))
    }

    /// A miniature of Fig. 4: V2 forwards V1's warning to Vw. The flow
    /// pos(GPS_2) → fwd(CU_2) exists only because of the forwarding
    /// policy.
    fn forwarding_instance() -> SosInstance {
        let mut b = SosInstanceBuilder::new("fig4-mini");
        let sense1 = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        let send1 = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let rec2 = b.action(Action::parse("rec(CU_2,cam(pos))"), "D_2");
        let pos2 = b.action(Action::parse("pos(GPS_2,pos)"), "D_2");
        let fwd2 = b.action(Action::parse("fwd(CU_2,cam(pos))"), "D_2");
        let recw = b.action(Action::parse("rec(CU_w,cam(pos))"), "D_w");
        let show = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
        b.flow(sense1, send1);
        b.flow(send1, rec2);
        b.flow(rec2, fwd2);
        b.policy_flow(pos2, fwd2); // the position-based forwarding policy
        b.flow(fwd2, recw);
        b.flow(recw, show);
        b.build()
    }

    #[test]
    fn functional_dependency_is_safety() {
        let inst = forwarding_instance();
        let r = req("sense(ESP_1,sW)", "show(HMI_w,warn)");
        assert_eq!(classify(&inst, &r).unwrap(), Relevance::Safety);
    }

    #[test]
    fn policy_only_dependency_is_availability() {
        // This is requirement (4) of the paper.
        let inst = forwarding_instance();
        let r = req("pos(GPS_2,pos)", "show(HMI_w,warn)");
        assert_eq!(classify(&inst, &r).unwrap(), Relevance::Availability);
    }

    #[test]
    fn unknown_action_reported() {
        let inst = forwarding_instance();
        let r = req("nope", "show(HMI_w,warn)");
        assert!(matches!(
            classify(&inst, &r),
            Err(FsaError::UnknownAction(_))
        ));
    }

    #[test]
    fn mixed_paths_count_as_safety() {
        // If a functional path exists besides a policy path, it is safety.
        let mut b = SosInstanceBuilder::new("t");
        let a = b.action(Action::parse("a"), "P");
        let m = b.action(Action::parse("m"), "P");
        let z = b.action(Action::parse("z"), "P");
        b.policy_flow(a, z);
        b.flow(a, m);
        b.flow(m, z);
        let inst = b.build();
        let r = req("a", "z");
        assert_eq!(classify(&inst, &r).unwrap(), Relevance::Safety);
    }
}
