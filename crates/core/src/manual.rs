//! The manual elicitation pipeline (§4 of the paper).
//!
//! From an [`SosInstance`]:
//!
//! 1. interpret the functional flow as the relation `ζ` on actions,
//! 2. construct the reflexive transitive closure `ζ*` (a partial order
//!    for loop-free flows),
//! 3. identify the minimal elements (incoming boundary actions) and the
//!    maximal elements (outgoing boundary actions),
//! 4. restrict `ζ*` to (minimal, maximal) pairs: the relation `χ`,
//! 5. emit `auth(x, y, stakeholder(y))` for every `(x, y) ∈ χ`, and
//! 6. evaluate every requirement's safety relevance (§4.4 /
//!    [`crate::classify`]).

use crate::action::Action;
use crate::boundary::{boundary_stats, BoundaryStats};
use crate::classify::Classifier;
use crate::error::FsaError;
use crate::instance::SosInstance;
use crate::requirements::{AuthRequirement, Relevance, RequirementSet};
use fsa_graph::closure::reflexive_transitive_closure;
use fsa_graph::{GraphError, PartialOrder};

/// A requirement together with its safety evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedRequirement {
    /// The requirement.
    pub requirement: AuthRequirement,
    /// Its relevance (safety vs. availability).
    pub relevance: Relevance,
}

/// The result of one manual elicitation run.
#[derive(Debug, Clone)]
pub struct ElicitationReport {
    instance_name: String,
    zeta: Vec<(Action, Action)>,
    closure_size: usize,
    minima: Vec<Action>,
    maxima: Vec<Action>,
    chi: Vec<(Action, Action)>,
    requirements: Vec<ClassifiedRequirement>,
    boundary: BoundaryStats,
}

impl ElicitationReport {
    /// Name of the analysed instance.
    pub fn instance_name(&self) -> &str {
        &self.instance_name
    }

    /// The direct functional-flow relation `ζ`.
    pub fn zeta(&self) -> &[(Action, Action)] {
        &self.zeta
    }

    /// `|ζ*|` — the number of pairs in the reflexive transitive closure.
    pub fn closure_size(&self) -> usize {
        self.closure_size
    }

    /// The minimal elements (incoming boundary actions).
    pub fn minima(&self) -> &[Action] {
        &self.minima
    }

    /// The maximal elements (outgoing boundary actions).
    pub fn maxima(&self) -> &[Action] {
        &self.maxima
    }

    /// The restriction `χ` of `ζ*` to (minimal, maximal) pairs.
    pub fn chi(&self) -> &[(Action, Action)] {
        &self.chi
    }

    /// The elicited requirements with their classification, in χ order.
    pub fn classified_requirements(&self) -> &[ClassifiedRequirement] {
        &self.requirements
    }

    /// The elicited requirements as a canonical [`RequirementSet`].
    pub fn requirement_set(&self) -> RequirementSet {
        self.requirements
            .iter()
            .map(|c| c.requirement.clone())
            .collect()
    }

    /// The elicited requirements, in χ order (antecedents grouped by
    /// consequent).
    pub fn requirements(&self) -> Vec<AuthRequirement> {
        self.requirements
            .iter()
            .map(|c| c.requirement.clone())
            .collect()
    }

    /// Only the safety-relevant requirements.
    pub fn safety_requirements(&self) -> Vec<AuthRequirement> {
        self.requirements
            .iter()
            .filter(|c| c.relevance == Relevance::Safety)
            .map(|c| c.requirement.clone())
            .collect()
    }

    /// Boundary statistics of the instance.
    pub fn boundary(&self) -> &BoundaryStats {
        &self.boundary
    }
}

/// Runs the manual pipeline on one instance.
///
/// # Errors
///
/// * [`FsaError::CircularDependency`] if the functional flow has a
///   cycle (the paper's loop-freedom assumption is violated).
pub fn elicit(instance: &SosInstance) -> Result<ElicitationReport, FsaError> {
    let g = instance.graph();
    let closure = reflexive_transitive_closure(g);
    let order = PartialOrder::try_new(closure).map_err(|e| match e {
        GraphError::NotAntisymmetric(a, b) => FsaError::CircularDependency {
            first: instance.action(a).clone(),
            second: instance.action(b).clone(),
        },
        other => FsaError::InvalidComponentModel {
            reason: other.to_string(),
        },
    })?;

    // χ ordered by maximal element first (requirements grouped per
    // output action, as the paper lists them), then by antecedent node.
    let mut chi_nodes = order.min_max_restriction();
    chi_nodes.sort_by_key(|&(x, y)| (y, x));

    let classifier = Classifier::new(instance);
    let mut requirements = Vec::with_capacity(chi_nodes.len());
    for &(x, y) in &chi_nodes {
        let req = AuthRequirement::new(
            instance.action(x).clone(),
            instance.action(y).clone(),
            instance.stakeholder(y).clone(),
        );
        let relevance = classifier.classify_nodes(x, y);
        requirements.push(ClassifiedRequirement {
            requirement: req,
            relevance,
        });
    }

    Ok(ElicitationReport {
        instance_name: instance.name().to_owned(),
        zeta: g
            .edges()
            .map(|(a, b)| (instance.action(a).clone(), instance.action(b).clone()))
            .collect(),
        closure_size: order.relation().len(),
        minima: order
            .minimal_elements()
            .into_iter()
            .map(|n| instance.action(n).clone())
            .collect(),
        maxima: order
            .maximal_elements()
            .into_iter()
            .map(|n| instance.action(n).clone())
            .collect(),
        chi: chi_nodes
            .iter()
            .map(|&(x, y)| (instance.action(x).clone(), instance.action(y).clone()))
            .collect(),
        requirements,
        boundary: boundary_stats(instance),
    })
}

/// Explains a requirement by a shortest functional-flow path from its
/// antecedent to its consequent — the dependency chain an architect
/// reviews when judging the requirement (as §4.4 does for requirement
/// (4)). Returns `None` if either action is missing or no path exists.
pub fn explain(instance: &SosInstance, req: &AuthRequirement) -> Option<Vec<Action>> {
    let a = instance.find(&req.antecedent)?;
    let b = instance.find(&req.consequent)?;
    let path = fsa_graph::path::shortest_path(instance.graph(), a, b)?;
    Some(
        path.into_iter()
            .map(|n| instance.action(n).clone())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::SosInstanceBuilder;

    /// The paper's Fig. 3 instance (Example 3).
    fn fig3() -> SosInstance {
        let mut b = SosInstanceBuilder::new("fig3");
        let sense = b.action_owned(Action::parse("sense(ESP_1,sW)"), "D_1", "V1");
        let pos1 = b.action_owned(Action::parse("pos(GPS_1,pos)"), "D_1", "V1");
        let send = b.action_owned(Action::parse("send(CU_1,cam(pos))"), "D_1", "V1");
        let rec = b.action_owned(Action::parse("rec(CU_w,cam(pos))"), "D_w", "Vw");
        let posw = b.action_owned(Action::parse("pos(GPS_w,pos)"), "D_w", "Vw");
        let show = b.action_owned(Action::parse("show(HMI_w,warn)"), "D_w", "Vw");
        b.flow(sense, send);
        b.flow(pos1, send);
        b.flow(send, rec);
        b.flow(rec, show);
        b.flow(posw, show);
        b.build()
    }

    #[test]
    fn example3_zeta_star_has_16_pairs() {
        // ζ₁ (5) ∪ reflexive (6) ∪ derived (5).
        let report = elicit(&fig3()).unwrap();
        assert_eq!(report.zeta().len(), 5);
        assert_eq!(report.closure_size(), 16);
    }

    #[test]
    fn example3_chi_gives_requirements_1_to_3() {
        let report = elicit(&fig3()).unwrap();
        assert_eq!(report.minima().len(), 3);
        assert_eq!(report.maxima(), &[Action::parse("show(HMI_w,warn)")]);
        let reqs: Vec<String> = report
            .requirements()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            reqs,
            vec![
                "auth(sense(ESP_1,sW), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_1,pos), show(HMI_w,warn), D_w)",
                "auth(pos(GPS_w,pos), show(HMI_w,warn), D_w)",
            ]
        );
    }

    #[test]
    fn example3_all_safety_relevant() {
        let report = elicit(&fig3()).unwrap();
        assert!(report
            .classified_requirements()
            .iter()
            .all(|c| c.relevance == Relevance::Safety));
        assert_eq!(report.safety_requirements().len(), 3);
    }

    #[test]
    fn stakeholder_is_of_the_consequent() {
        let report = elicit(&fig3()).unwrap();
        assert!(report
            .requirements()
            .iter()
            .all(|r| r.stakeholder.name() == "D_w"));
    }

    #[test]
    fn cycle_reported_with_actions() {
        let mut b = SosInstanceBuilder::new("cyclic");
        let a = b.action(Action::parse("a"), "P");
        let c = b.action(Action::parse("c"), "P");
        b.flow(a, c);
        b.flow(c, a);
        match elicit(&b.build()) {
            Err(FsaError::CircularDependency { first, second }) => {
                assert_ne!(first, second);
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn empty_instance() {
        let report = elicit(&SosInstanceBuilder::new("empty").build()).unwrap();
        assert!(report.requirements().is_empty());
        assert_eq!(report.closure_size(), 0);
    }

    #[test]
    fn explain_gives_dependency_chain() {
        let inst = fig3();
        let report = elicit(&inst).unwrap();
        let req = &report.requirements()[0]; // sense → show
        let chain = explain(&inst, req).unwrap();
        let labels: Vec<String> = chain.iter().map(ToString::to_string).collect();
        assert_eq!(
            labels,
            vec![
                "sense(ESP_1,sW)",
                "send(CU_1,cam(pos))",
                "rec(CU_w,cam(pos))",
                "show(HMI_w,warn)",
            ]
        );
    }

    #[test]
    fn explain_none_for_unrelated_actions() {
        let inst = fig3();
        let bogus = crate::requirements::AuthRequirement::new(
            Action::parse("show(HMI_w,warn)"),
            Action::parse("sense(ESP_1,sW)"),
            crate::action::Agent::new("D_w"),
        );
        assert_eq!(explain(&inst, &bogus), None);
        let missing = crate::requirements::AuthRequirement::new(
            Action::parse("ghost"),
            Action::parse("show(HMI_w,warn)"),
            crate::action::Agent::new("D_w"),
        );
        assert_eq!(explain(&inst, &missing), None);
    }

    #[test]
    fn requirement_set_dedups() {
        let report = elicit(&fig3()).unwrap();
        assert_eq!(report.requirement_set().len(), 3);
    }
}
