//! Verification of parameterised instance families.
//!
//! §4.4 derives the recurrence
//! `χᵢ = χᵢ₋₁ ∪ {(pos(GPS_i, pos), show(HMI_w, warn))}` and §6 points to
//! self-similarity-based verification of "families of systems that are
//! usually parameterised by a number of replicated identical
//! components". This module provides the bounded check that justifies
//! the first-order requirement form: it computes the per-step increment
//! `Δᵢ = χᵢ \ χᵢ₋₁` for a family generator, abstracts the step index,
//! and reports whether the family is *self-similar* — every step adds
//! the same requirement template, so
//! `χ_k = χ_base ∪ {template(x) | x ∈ domain}` for all explored `k`.

use crate::instance::SosInstance;
use crate::manual::elicit;
use crate::param::VARIABLE;
use crate::requirements::{AuthRequirement, RequirementSet};
use crate::FsaError;
use std::collections::BTreeSet;

/// The result of a bounded family verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyResult {
    /// The requirement set of the smallest family member (the stable
    /// core, e.g. the paper's requirements (1)–(3)).
    pub base: RequirementSet,
    /// `true` if every explored step added exactly the abstracted
    /// templates in [`FamilyResult::templates`].
    pub self_similar: bool,
    /// The per-step requirement templates with the step index replaced
    /// by [`VARIABLE`] (e.g.
    /// `auth(pos(GPS_x,pos), show(HMI_w,warn), D_w)`).
    pub templates: Vec<AuthRequirement>,
    /// The index values encountered (the paper's `V_forward` set for
    /// the explored bound).
    pub domain: Vec<String>,
    /// Number of family members explored (sizes `0..=bound`).
    pub explored: usize,
}

/// Explores the family `generator(0), …, generator(bound)` and checks
/// self-similarity of the requirement increments.
///
/// The `step_index` function names the index introduced at step `i`
/// (e.g. forwarder `i` has vehicle tag `i + 1` in the Fig. 4 chain).
///
/// # Errors
///
/// Propagates elicitation errors from any family member.
pub fn verify_recurrence(
    generator: impl Fn(usize) -> SosInstance,
    step_index: impl Fn(usize) -> String,
    bound: usize,
) -> Result<FamilyResult, FsaError> {
    let base = elicit(&generator(0))?.requirement_set();
    let mut previous = base.clone();
    let mut templates: Option<BTreeSet<AuthRequirement>> = None;
    let mut self_similar = true;
    let mut domain = Vec::new();

    for step in 1..=bound {
        let current = elicit(&generator(step))?.requirement_set();
        let idx = step_index(step);
        // Abstract the step index out of the increment.
        let delta: BTreeSet<AuthRequirement> = current
            .difference(&previous)
            .iter()
            .map(|r| abstract_index(r, &idx))
            .collect();
        // The previous set must be preserved (monotone growth).
        if !previous.is_subset(&current) {
            self_similar = false;
        }
        match &templates {
            None => templates = Some(delta),
            Some(t) => {
                if *t != delta {
                    self_similar = false;
                }
            }
        }
        domain.push(idx);
        previous = current;
    }

    Ok(FamilyResult {
        base,
        self_similar,
        templates: templates.unwrap_or_default().into_iter().collect(),
        domain,
        explored: bound + 1,
    })
}

fn abstract_index(req: &AuthRequirement, idx: &str) -> AuthRequirement {
    AuthRequirement::new(
        req.antecedent.rename_index(idx, VARIABLE),
        req.consequent.rename_index(idx, VARIABLE),
        req.stakeholder.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::instance::SosInstanceBuilder;

    /// A miniature self-similar family: k producers feeding one sink.
    fn star(k: usize) -> SosInstance {
        let mut b = SosInstanceBuilder::new(&format!("star{k}"));
        let sink = b.action(Action::parse("consume(SNK_0,all)"), "U");
        for i in 1..=k {
            let p = b.action(Action::parse(&format!("produce(SRC_{i},v)")), "U");
            b.flow(p, sink);
        }
        b.build()
    }

    #[test]
    fn star_family_is_self_similar() {
        let result = verify_recurrence(star, |i| i.to_string(), 5).unwrap();
        assert!(result.self_similar);
        assert_eq!(result.explored, 6);
        assert_eq!(result.domain, vec!["1", "2", "3", "4", "5"]);
        assert_eq!(result.templates.len(), 1);
        assert_eq!(
            result.templates[0].to_string(),
            "auth(produce(SRC_x,v), consume(SNK_0,all), U)"
        );
        assert!(result.base.is_empty(), "star(0) has no dependencies");
    }

    /// A family whose second step adds something different.
    fn irregular(k: usize) -> SosInstance {
        let mut b = SosInstanceBuilder::new(&format!("irr{k}"));
        let sink = b.action(Action::parse("consume(SNK_0,all)"), "U");
        for i in 1..=k {
            let name = if i == 2 {
                format!("oddball(SRC_{i},v)")
            } else {
                format!("produce(SRC_{i},v)")
            };
            let p = b.action(Action::parse(&name), "U");
            b.flow(p, sink);
        }
        b.build()
    }

    #[test]
    fn irregular_family_detected() {
        let result = verify_recurrence(irregular, |i| i.to_string(), 3).unwrap();
        assert!(!result.self_similar);
    }

    #[test]
    fn single_step_family_trivially_self_similar() {
        let result = verify_recurrence(star, |i| i.to_string(), 1).unwrap();
        assert!(result.self_similar);
        assert_eq!(result.domain, vec!["1"]);
    }

    #[test]
    fn zero_bound_explores_base_only() {
        let result = verify_recurrence(star, |i| i.to_string(), 0).unwrap();
        assert!(result.self_similar, "vacuously");
        assert!(result.templates.is_empty());
        assert_eq!(result.explored, 1);
    }
}
