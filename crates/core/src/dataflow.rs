//! Deriving an operational APA from a functional model.
//!
//! The manual method (§4) analyses the functional flow graph directly;
//! the tool-assisted method (§5) analyses an operational APA model. This
//! module connects the two: [`dataflow_apa`] builds an APA whose
//! behaviour realises exactly the functional dependencies of an
//! [`SosInstance`] —
//!
//! * every action becomes a one-shot elementary automaton,
//! * every flow `a → b` becomes a token buffer filled by `a` and
//!   required (and consumed) by `b`,
//! * source actions are enabled initially.
//!
//! The reachability graph of the result enumerates the linear
//! extensions (prefixes) of the dependency partial order, so:
//! its minima are the instance's sources, its maxima its sinks, and an
//! action `y` can occur before `x` iff `x` does not reach `y` in the
//! flow graph. Consequently the tool-assisted pipeline on
//! `dataflow_apa(inst)` elicits exactly the requirements of the manual
//! pipeline on `inst` — the cross-validation property tested in the
//! integration suite.

use crate::error::FsaError;
use crate::instance::SosInstance;
use apa::rule::{FnRule, LocalState};
use apa::{Apa, ApaBuilder, Value};

/// Builds the dataflow APA of an instance (see module docs).
///
/// Automaton names are the rendered action terms, so reports from
/// [`crate::assisted`] can be compared against [`crate::manual`] output
/// directly.
///
/// # Errors
///
/// Returns [`FsaError::Apa`] if the instance contains duplicate action
/// terms (APA automaton names must be unique).
#[allow(clippy::needless_range_loop)] // neighbourhood slots are parallel index ranges
pub fn dataflow_apa(instance: &SosInstance) -> Result<Apa, FsaError> {
    let g = instance.graph();
    let mut b = ApaBuilder::new();

    // One "ready" component per action (one-shot guard), one buffer per
    // flow edge.
    let ready: Vec<_> = g
        .node_ids()
        .map(|id| b.component(&format!("ready_{}", id.index()), [Value::atom("go")]))
        .collect();
    let mut in_buffers: Vec<Vec<apa::ComponentId>> = vec![Vec::new(); g.node_count()];
    let mut out_buffers: Vec<Vec<apa::ComponentId>> = vec![Vec::new(); g.node_count()];
    for (from, to) in g.edges() {
        let buf = b.component(&format!("flow_{}_{}", from.index(), to.index()), []);
        out_buffers[from.index()].push(buf);
        in_buffers[to.index()].push(buf);
    }

    for id in g.node_ids() {
        // Neighbourhood: [ready, in-buffers…, out-buffers…].
        let ins = in_buffers[id.index()].clone();
        let outs = out_buffers[id.index()].clone();
        let n_in = ins.len();
        let n_out = outs.len();
        let neighbourhood: Vec<apa::ComponentId> = std::iter::once(ready[id.index()])
            .chain(ins)
            .chain(outs)
            .collect();
        b.automaton(
            &instance.action(id).to_string(),
            neighbourhood,
            Box::new(FnRule::new(move |local: &LocalState| {
                let go = Value::atom("go");
                if !local[0].contains(&go) {
                    return vec![]; // already fired
                }
                let token = Value::atom("tok");
                if !(1..=n_in).all(|slot| local[slot].contains(&token)) {
                    return vec![]; // an input is missing
                }
                let mut next = local.clone();
                next[0].remove(&go);
                for slot in 1..=n_in {
                    next[slot].remove(&token);
                }
                for slot in (1 + n_in)..(1 + n_in + n_out) {
                    next[slot].insert(token.clone());
                }
                vec![(String::new(), next)]
            })),
        );
    }
    b.build().map_err(FsaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::assisted::{elicit_from_graph, DependenceMethod};
    use crate::instance::SosInstanceBuilder;
    use crate::manual::elicit;
    use apa::ReachOptions;

    fn fig3() -> SosInstance {
        let mut b = SosInstanceBuilder::new("fig3");
        let sense = b.action(Action::parse("sense(ESP_1,sW)"), "D_1");
        let pos1 = b.action(Action::parse("pos(GPS_1,pos)"), "D_1");
        let send = b.action(Action::parse("send(CU_1,cam(pos))"), "D_1");
        let rec = b.action(Action::parse("rec(CU_w,cam(pos))"), "D_w");
        let posw = b.action(Action::parse("pos(GPS_w,pos)"), "D_w");
        let show = b.action(Action::parse("show(HMI_w,warn)"), "D_w");
        b.flow(sense, send);
        b.flow(pos1, send);
        b.flow(send, rec);
        b.flow(rec, show);
        b.flow(posw, show);
        b.build()
    }

    #[test]
    fn dataflow_apa_shape() {
        let inst = fig3();
        let apa = dataflow_apa(&inst).unwrap();
        assert_eq!(apa.automaton_count(), 6);
        assert_eq!(
            apa.component_count(),
            6 + 5,
            "ready per action + buffer per flow"
        );
    }

    #[test]
    fn reachability_enumerates_linear_extensions() {
        let apa = dataflow_apa(&fig3()).unwrap();
        let g = apa.reachability(&ReachOptions::default()).unwrap();
        // Minima = sources, maxima = sinks of the flow graph.
        assert_eq!(
            g.minima(),
            vec!["pos(GPS_1,pos)", "pos(GPS_w,pos)", "sense(ESP_1,sW)"]
        );
        assert_eq!(g.maxima(), vec!["show(HMI_w,warn)"]);
        assert_eq!(g.dead_states().len(), 1);
    }

    #[test]
    fn assisted_on_dataflow_equals_manual() {
        let inst = fig3();
        let manual = elicit(&inst).unwrap().requirement_set();
        let apa = dataflow_apa(&inst).unwrap();
        let graph = apa.reachability(&ReachOptions::default()).unwrap();
        let assisted = elicit_from_graph(&graph, DependenceMethod::Precedence, |name| {
            let action = Action::parse(name);
            let node = inst.find(&action).expect("known action");
            inst.stakeholder(node).clone()
        });
        assert_eq!(assisted.requirements, manual);
    }

    #[test]
    fn duplicate_actions_rejected() {
        let mut b = SosInstanceBuilder::new("dup");
        b.action(Action::parse("same"), "P");
        b.action(Action::parse("same"), "P");
        assert!(matches!(
            dataflow_apa(&b.build()),
            Err(FsaError::Apa(apa::ApaError::DuplicateAutomaton { .. }))
        ));
    }

    #[test]
    fn empty_instance_gives_empty_behaviour() {
        let inst = SosInstanceBuilder::new("empty").build();
        let apa = dataflow_apa(&inst).unwrap();
        let g = apa.reachability(&ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1);
        assert!(g.minima().is_empty());
    }
}
