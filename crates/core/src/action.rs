//! Actions, parameters and agents.
//!
//! Actions are the atomic units of the functional model (Table 1 of the
//! paper): terms like `sense(ESP_1, sW)` or `show(HMI_w, warn)`. A
//! parameter may carry an *instance index* (`ESP_1`, `GPS_w`), which the
//! parameterisation step ([`crate::param`]) abstracts into first-order
//! variables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An agent / stakeholder, e.g. the driver `D_w` of vehicle `w`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Agent(String);

impl Agent {
    /// Creates an agent from its name.
    pub fn new(name: &str) -> Self {
        Agent(name.to_owned())
    }

    /// The agent's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Agent {
    fn from(s: &str) -> Self {
        Agent::new(s)
    }
}

/// One action parameter: a base name with an optional instance index,
/// e.g. `GPS_1` = base `GPS`, index `1`; plain `warn` has no index.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Param {
    base: String,
    index: Option<String>,
}

impl Param {
    /// A parameter without an index.
    pub fn plain(base: &str) -> Self {
        Param {
            base: base.to_owned(),
            index: None,
        }
    }

    /// A parameter with an instance index.
    pub fn indexed(base: &str, index: &str) -> Self {
        Param {
            base: base.to_owned(),
            index: Some(index.to_owned()),
        }
    }

    /// Parses `GPS_1` into base `GPS` / index `1`; a trailing
    /// `_<suffix>` after the *last* underscore is taken as the index.
    /// Without an underscore the whole string is the base.
    pub fn parse(s: &str) -> Self {
        match s.rsplit_once('_') {
            Some((base, index)) if !base.is_empty() && !index.is_empty() => {
                Param::indexed(base, index)
            }
            _ => Param::plain(s),
        }
    }

    /// The base name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The instance index, if any.
    pub fn index(&self) -> Option<&str> {
        self.index.as_deref()
    }

    /// The same parameter with its index replaced (used when
    /// instantiating component templates and when abstracting indices
    /// into variables).
    pub fn with_index(&self, index: &str) -> Self {
        Param::indexed(&self.base, index)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.index {
            Some(i) => write!(f, "{}_{}", self.base, i),
            None => write!(f, "{}", self.base),
        }
    }
}

/// An atomic action of the functional model, e.g. `sense(ESP_1,sW)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action {
    name: String,
    params: Vec<Param>,
}

impl Action {
    /// Creates an action from its name and parameters.
    pub fn new(name: &str, params: impl IntoIterator<Item = Param>) -> Self {
        Action {
            name: name.to_owned(),
            params: params.into_iter().collect(),
        }
    }

    /// Parses the `name(p1,p2,…)` notation of Table 1, e.g.
    /// `"sense(ESP_1,sW)"`. Nested parentheses in a parameter (such as
    /// `cam(pos)`) are kept as part of that parameter's base name.
    /// Without parentheses the whole string is the name.
    pub fn parse(s: &str) -> Self {
        let s = s.trim();
        let Some(open) = s.find('(') else {
            return Action::new(s, []);
        };
        if !s.ends_with(')') {
            return Action::new(s, []);
        }
        let name = &s[..open];
        let inner = &s[open + 1..s.len() - 1];
        let mut params = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    params.push(Param::parse(inner[start..i].trim()));
                    start = i + 1;
                }
                _ => {}
            }
        }
        if start < inner.len() {
            params.push(Param::parse(inner[start..].trim()));
        }
        Action::new(name, params)
    }

    /// The action's name (e.g. `sense`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The action's parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The instance indices occurring in the parameters, in order,
    /// de-duplicated.
    pub fn indices(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.params {
            if let Some(i) = p.index() {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
        }
        out
    }

    /// The action with every occurrence of index `from` replaced by
    /// `to` — used to instantiate component templates (`i ↦ 1`) and to
    /// abstract indices into first-order variables (`2 ↦ x`).
    pub fn rename_index(&self, from: &str, to: &str) -> Action {
        Action {
            name: self.name.clone(),
            params: self
                .params
                .iter()
                .map(|p| {
                    if p.index() == Some(from) {
                        p.with_index(to)
                    } else {
                        p.clone()
                    }
                })
                .collect(),
        }
    }

    /// A canonical identifier usable as an APA automaton name or graph
    /// label, e.g. `V1_sense` for `sense(ESP_1, sW)` would instead be
    /// rendered as `sense(ESP_1,sW)`; this method just formats the term.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The action with all indices erased — its *shape*, used when
    /// de-duplicating isomorphic SoS instances.
    pub fn shape(&self) -> Action {
        Action {
            name: self.name.clone(),
            params: self.params.iter().map(|p| Param::plain(p.base())).collect(),
        }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_parse() {
        let p = Param::parse("GPS_1");
        assert_eq!(p.base(), "GPS");
        assert_eq!(p.index(), Some("1"));
        let p = Param::parse("warn");
        assert_eq!(p.base(), "warn");
        assert_eq!(p.index(), None);
        let p = Param::parse("HMI_w");
        assert_eq!(p.index(), Some("w"));
        assert_eq!(
            Param::parse("_x"),
            Param::plain("_x"),
            "empty base kept plain"
        );
    }

    #[test]
    fn action_parse_table1() {
        let a = Action::parse("sense(ESP_1,sW)");
        assert_eq!(a.name(), "sense");
        assert_eq!(a.params().len(), 2);
        assert_eq!(a.params()[0], Param::indexed("ESP", "1"));
        assert_eq!(a.params()[1], Param::plain("sW"));
        assert_eq!(a.to_string(), "sense(ESP_1,sW)");
    }

    #[test]
    fn action_parse_nested() {
        let a = Action::parse("send(CU_i,cam(pos))");
        assert_eq!(a.params().len(), 2);
        assert_eq!(a.params()[1], Param::plain("cam(pos)"));
        assert_eq!(a.to_string(), "send(CU_i,cam(pos))");
    }

    #[test]
    fn action_parse_no_params() {
        let a = Action::parse("tick");
        assert_eq!(a.name(), "tick");
        assert!(a.params().is_empty());
        assert_eq!(a.to_string(), "tick");
    }

    #[test]
    fn rename_index_instantiates_template() {
        let template = Action::parse("pos(GPS_i,pos)");
        let inst = template.rename_index("i", "2");
        assert_eq!(inst.to_string(), "pos(GPS_2,pos)");
        // other indices untouched
        let a = Action::parse("rec(CU_w,cam(pos))").rename_index("i", "9");
        assert_eq!(a.to_string(), "rec(CU_w,cam(pos))");
    }

    #[test]
    fn indices_and_shape() {
        let a = Action::parse("fwd(CU_2,cam_1)");
        assert_eq!(a.indices(), vec!["2", "1"]);
        assert_eq!(a.shape().to_string(), "fwd(CU,cam)");
    }

    #[test]
    fn round_trip_display_parse() {
        for s in [
            "send(cam(pos))",
            "sense(ESP_1,sW)",
            "show(HMI_w,warn)",
            "rec(CU_i,cam(pos))",
        ] {
            assert_eq!(Action::parse(s).to_string(), s);
        }
    }

    #[test]
    fn agent_display() {
        let a = Agent::new("D_w");
        assert_eq!(a.to_string(), "D_w");
        assert_eq!(a.name(), "D_w");
        let b: Agent = "D_1".into();
        assert_ne!(a, b);
    }
}
