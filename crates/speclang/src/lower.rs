//! Lowering the AST to [`fsa_core::SosInstance`] values.

use crate::ast::{File, InstanceDecl, ModelDecl, Term};
use crate::error::ParseError;
use fsa_core::action::Action;
use fsa_core::component_model::ComponentModel;
use fsa_core::instance::{SosInstance, SosInstanceBuilder};
use std::collections::HashMap;

/// Lowers a parsed file to SoS instances.
///
/// # Errors
///
/// Returns [`ParseError`] on duplicate action identifiers, flows
/// referencing undeclared actions, `use` of unknown models, or
/// `connect` endpoints that do not resolve.
pub fn lower(file: &File) -> Result<Vec<SosInstance>, ParseError> {
    let mut models: HashMap<&str, (ComponentModel, HashMap<&str, usize>)> = HashMap::new();
    for m in &file.models {
        if models.contains_key(m.name.as_str()) {
            return Err(ParseError::new(
                m.span,
                format!("duplicate model `{}`", m.name),
            ));
        }
        models.insert(m.name.as_str(), lower_model(m)?);
    }
    file.instances
        .iter()
        .map(|inst| lower_instance(inst, &models))
        .collect()
}

/// Builds a [`ComponentModel`] plus the action-id lookup table.
fn lower_model(decl: &ModelDecl) -> Result<(ComponentModel, HashMap<&str, usize>), ParseError> {
    let mut model = ComponentModel::new(&decl.name, &decl.stakeholder);
    let mut ids: HashMap<&str, usize> = HashMap::new();
    for a in &decl.actions {
        if ids.contains_key(a.id.as_str()) {
            return Err(ParseError::new(
                a.span,
                format!(
                    "duplicate action identifier `{}` in model `{}`",
                    a.id, decl.name
                ),
            ));
        }
        let template = model.action(&a.term.to_string());
        ids.insert(a.id.as_str(), template);
    }
    for f in &decl.flows {
        let from = *ids.get(f.from.as_str()).ok_or_else(|| {
            ParseError::new(
                f.span,
                format!("flow references undeclared action `{}`", f.from),
            )
        })?;
        let to = *ids.get(f.to.as_str()).ok_or_else(|| {
            ParseError::new(
                f.span,
                format!("flow references undeclared action `{}`", f.to),
            )
        })?;
        if f.policy {
            model.policy_flow(from, to);
        } else {
            model.flow(from, to);
        }
    }
    Ok((model, ids))
}

fn lower_instance(
    decl: &InstanceDecl,
    models: &HashMap<&str, (ComponentModel, HashMap<&str, usize>)>,
) -> Result<SosInstance, ParseError> {
    let mut builder = SosInstanceBuilder::new(&decl.name);
    let mut by_id = HashMap::new();
    for a in &decl.actions {
        if by_id.contains_key(a.id.as_str()) {
            return Err(ParseError::new(
                a.span,
                format!("duplicate action identifier `{}`", a.id),
            ));
        }
        let stakeholder = a.stakeholder.as_deref().unwrap_or("env");
        let owner = a.owner.as_deref().unwrap_or(stakeholder);
        let node = builder.action_owned(term_to_action(&a.term), stakeholder, owner);
        by_id.insert(a.id.as_str(), node);
    }

    // Instantiate used component models.
    let mut components: HashMap<
        &str,
        (
            fsa_core::component_model::ComponentInstance,
            &HashMap<&str, usize>,
        ),
    > = HashMap::new();
    for u in &decl.uses {
        let (model, ids) = models.get(u.model.as_str()).ok_or_else(|| {
            ParseError::new(u.span, format!("use of unknown model `{}`", u.model))
        })?;
        if components.contains_key(u.alias.as_str()) {
            return Err(ParseError::new(
                u.span,
                format!("duplicate component alias `{}`", u.alias),
            ));
        }
        let handle = model
            .instantiate(&u.index, &mut builder)
            .map_err(|e| ParseError::new(u.span, e.to_string()))?;
        components.insert(u.alias.as_str(), (handle, ids));
    }

    for f in &decl.flows {
        let from = *by_id.get(f.from.as_str()).ok_or_else(|| {
            ParseError::new(
                f.span,
                format!("flow references undeclared action `{}`", f.from),
            )
        })?;
        let to = *by_id.get(f.to.as_str()).ok_or_else(|| {
            ParseError::new(
                f.span,
                format!("flow references undeclared action `{}`", f.to),
            )
        })?;
        if f.policy {
            builder.policy_flow(from, to);
        } else {
            builder.flow(from, to);
        }
    }

    for c in &decl.connects {
        let resolve = |alias: &str, action: &str| -> Result<fsa_graph::NodeId, ParseError> {
            let (handle, ids) = components.get(alias).ok_or_else(|| {
                ParseError::new(
                    c.span,
                    format!("connect references unknown component `{alias}`"),
                )
            })?;
            let template = *ids.get(action).ok_or_else(|| {
                ParseError::new(
                    c.span,
                    format!("component `{alias}` has no action `{action}`"),
                )
            })?;
            Ok(handle.node(template))
        };
        let from = resolve(&c.from_alias, &c.from_action)?;
        let to = resolve(&c.to_alias, &c.to_action)?;
        if c.policy {
            builder.policy_flow(from, to);
        } else {
            builder.flow(from, to);
        }
    }
    Ok(builder.build())
}

/// Converts a parsed term into an [`Action`] (head = action name,
/// arguments rendered as parameters).
fn term_to_action(term: &Term) -> Action {
    Action::parse(&term.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use fsa_core::instance::FlowKind;

    fn lower_src(src: &str) -> Result<Vec<SosInstance>, ParseError> {
        lower(&parse_file(src).unwrap())
    }

    #[test]
    fn lowers_actions_flows_and_metadata() {
        let src = r#"
        instance "t" {
            action a = sense(ESP_1, sW) owner V1 stakeholder D_1;
            action b = show(HMI_1, warn) stakeholder D_1;
            action c = tick;
            flow a -> b;
            policy flow c -> b;
        }
        "#;
        let instances = lower_src(src).unwrap();
        assert_eq!(instances.len(), 1);
        let inst = &instances[0];
        assert_eq!(inst.action_count(), 3);
        let a = inst.find(&Action::parse("sense(ESP_1,sW)")).unwrap();
        let b = inst.find(&Action::parse("show(HMI_1,warn)")).unwrap();
        let c = inst.find(&Action::parse("tick")).unwrap();
        assert_eq!(inst.owner(a), "V1");
        assert_eq!(inst.stakeholder(b).name(), "D_1");
        assert_eq!(inst.owner(b), "D_1", "owner defaults to stakeholder");
        assert_eq!(inst.stakeholder(c).name(), "env");
        assert_eq!(inst.flow_kind(a, b), Some(FlowKind::Functional));
        assert_eq!(inst.flow_kind(c, b), Some(FlowKind::Policy));
    }

    #[test]
    fn duplicate_action_id_rejected() {
        let src = r#"instance "t" { action a = x; action a = y; }"#;
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn undeclared_flow_endpoint_rejected() {
        let src = r#"instance "t" { action a = x; flow a -> ghost; }"#;
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn end_to_end_elicitation_from_source() {
        let src = r#"
        instance "fig3" {
            action sense_1 = sense(ESP_1, sW) owner V1 stakeholder D_1;
            action pos_1 = pos(GPS_1, pos) owner V1 stakeholder D_1;
            action send_1 = send(CU_1, cam(pos)) owner V1 stakeholder D_1;
            action rec_w = rec(CU_w, cam(pos)) owner Vw stakeholder D_w;
            action pos_w = pos(GPS_w, pos) owner Vw stakeholder D_w;
            action show_w = show(HMI_w, warn) owner Vw stakeholder D_w;
            flow sense_1 -> send_1;
            flow pos_1 -> send_1;
            flow send_1 -> rec_w;
            flow rec_w -> show_w;
            flow pos_w -> show_w;
        }
        "#;
        let instances = lower_src(src).unwrap();
        let report = fsa_core::manual::elicit(&instances[0]).unwrap();
        assert_eq!(report.requirements().len(), 3);
        assert_eq!(report.closure_size(), 16);
    }

    #[test]
    fn empty_instance_lowers() {
        let instances = lower_src(r#"instance "empty" { }"#).unwrap();
        assert_eq!(instances[0].action_count(), 0);
    }

    const VEHICLE_MODEL: &str = r#"
    model V stakeholder D_i {
        action sense = sense(ESP_i, sW);
        action pos = pos(GPS_i, pos);
        action send = send(CU_i, cam(pos));
        action rec = rec(CU_i, cam(pos));
        action show = show(HMI_i, warn);
        flow sense -> send;
        flow pos -> send;
        flow rec -> show;
        flow pos -> show;
    }
    "#;

    #[test]
    fn model_use_connect_lowers_fig3() {
        let src = format!(
            "{VEHICLE_MODEL}
            instance \"fig3 via models\" {{
                use V as v1 index 1;
                use V as vw index w;
                connect v1.send -> vw.rec;
            }}"
        );
        let instances = lower_src(&src).unwrap();
        let inst = &instances[0];
        assert_eq!(inst.action_count(), 10);
        let report = fsa_core::manual::elicit(inst).unwrap();
        // The two unused actions of each full vehicle (rec of v1, sense/
        // send of vw …) add extra boundary pairs; check the key
        // dependency is present with the right stakeholder.
        let wanted = "auth(sense(ESP_1,sW), show(HMI_w,warn), D_w)";
        assert!(
            report
                .requirements()
                .iter()
                .any(|r| r.to_string() == wanted),
            "missing {wanted}; got {:?}",
            report.requirements()
        );
    }

    #[test]
    fn policy_connect_lowers_as_policy() {
        let src = format!(
            "{VEHICLE_MODEL}
            instance \"p\" {{
                use V as a index 1;
                use V as b index 2;
                policy connect a.send -> b.rec;
            }}"
        );
        let inst = &lower_src(&src).unwrap()[0];
        let from = inst.find(&Action::parse("send(CU_1,cam(pos))")).unwrap();
        let to = inst.find(&Action::parse("rec(CU_2,cam(pos))")).unwrap();
        assert_eq!(inst.flow_kind(from, to), Some(FlowKind::Policy));
    }

    #[test]
    fn unknown_model_rejected() {
        let src = r#"instance "x" { use GHOST as g index 1; }"#;
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("unknown model"), "{err}");
    }

    #[test]
    fn duplicate_alias_rejected() {
        let src = format!(
            "{VEHICLE_MODEL}
            instance \"x\" {{ use V as a index 1; use V as a index 2; }}"
        );
        let err = lower_src(&src).unwrap_err();
        assert!(err.message.contains("duplicate component alias"), "{err}");
    }

    #[test]
    fn bad_connect_endpoints_rejected() {
        let src = format!(
            "{VEHICLE_MODEL}
            instance \"x\" {{ use V as a index 1; connect a.nope -> a.show; }}"
        );
        let err = lower_src(&src).unwrap_err();
        assert!(err.message.contains("no action `nope`"), "{err}");
        let src = format!(
            "{VEHICLE_MODEL}
            instance \"x\" {{ use V as a index 1; connect ghost.send -> a.rec; }}"
        );
        let err = lower_src(&src).unwrap_err();
        assert!(err.message.contains("unknown component"), "{err}");
    }

    #[test]
    fn duplicate_model_rejected() {
        let src = "model A stakeholder P { } model A stakeholder P { } ";
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("duplicate model"), "{err}");
    }
}
