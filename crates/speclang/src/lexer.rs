//! Hand-written lexer.

use crate::error::ParseError;
use crate::token::{Span, Token, TokenKind};

/// Lexes `source` into tokens (ending with [`TokenKind::Eof`]).
///
/// Supports `//` line comments; identifiers may contain letters, digits
/// and `_`.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings or unexpected
/// characters.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut column = 1u32;

    let span_at = |start: usize, end: usize, line: u32, column: u32| Span {
        start,
        end,
        line,
        column,
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (start, start_line, start_col) = (i, line, column);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                column += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' | '}' | '(' | ')' | ',' | ';' | '=' | '.' => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    '.' => TokenKind::Dot,
                    _ => TokenKind::Eq,
                };
                tokens.push(Token {
                    kind,
                    span: span_at(start, i + 1, start_line, start_col),
                });
                i += 1;
                column += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    span: span_at(start, i + 2, start_line, start_col),
                });
                i += 2;
                column += 2;
            }
            '"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    return Err(ParseError::new(
                        span_at(start, j, start_line, start_col),
                        "unterminated string literal",
                    ));
                }
                let text = source[i + 1..j].to_owned();
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    span: span_at(start, j + 1, start_line, start_col),
                });
                column += (j + 1 - i) as u32;
                i = j + 1;
            }
            // Identifiers may start with a digit (`index 1`, `pos2`):
            // the grammar has no numeric literals, so digit-initial
            // words are plain identifiers.
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &source[i..j];
                let kind = match word {
                    "instance" => TokenKind::KwInstance,
                    "action" => TokenKind::KwAction,
                    "flow" => TokenKind::KwFlow,
                    "policy" => TokenKind::KwPolicy,
                    "owner" => TokenKind::KwOwner,
                    "stakeholder" => TokenKind::KwStakeholder,
                    "model" => TokenKind::KwModel,
                    "use" => TokenKind::KwUse,
                    "as" => TokenKind::KwAs,
                    "index" => TokenKind::KwIndex,
                    "connect" => TokenKind::KwConnect,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    span: span_at(start, j, start_line, start_col),
                });
                column += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    span_at(start, start + other.len_utf8(), start_line, start_col),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: span_at(bytes.len(), bytes.len(), line, column),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_keywords() {
        let k = kinds("instance \"x\" { action a = f(b, c); flow a -> a; }");
        assert_eq!(
            k,
            vec![
                TokenKind::KwInstance,
                TokenKind::Str("x".into()),
                TokenKind::LBrace,
                TokenKind::KwAction,
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Ident("b".into()),
                TokenKind::Comma,
                TokenKind::Ident("c".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::KwFlow,
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("a".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("// a comment\naction // trailing\n");
        assert_eq!(k, vec![TokenKind::KwAction, TokenKind::Eof]);
    }

    #[test]
    fn line_and_column_tracked() {
        let toks = lex("a\n  bb").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.column, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.column, 3);
    }

    #[test]
    fn unterminated_string() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span.column, 3);
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        let k = kinds("GPS_1 pos_w x2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("GPS_1".into()),
                TokenKind::Ident("pos_w".into()),
                TokenKind::Ident("x2".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
