//! Rendering SoS instances back to specification source.
//!
//! `parse(render(inst))` reproduces the instance — the round-trip
//! property tested in the integration suite.

use fsa_core::instance::{FlowKind, SosInstance};
use std::fmt::Write as _;

/// Renders `instance` as specification source accepted by
/// [`crate::parse`].
///
/// Action identifiers are generated as `a0, a1, …` in node order.
pub fn render(instance: &SosInstance) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "instance \"{}\" {{", instance.name().replace('"', "'"));
    for (id, action) in instance.graph().nodes() {
        let _ = writeln!(
            s,
            "    action a{} = {} owner {} stakeholder {};",
            id.index(),
            action,
            sanitize(instance.owner(id)),
            sanitize(instance.stakeholder(id).name()),
        );
    }
    for (from, to) in instance.graph().edges() {
        let policy = match instance.flow_kind(from, to) {
            Some(FlowKind::Policy) => "policy ",
            _ => "",
        };
        let _ = writeln!(s, "    {policy}flow a{} -> a{};", from.index(), to.index());
    }
    s.push_str("}\n");
    s
}

/// Keeps only identifier-safe characters (the spec grammar requires
/// identifiers for owners and stakeholders).
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("x{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsa_core::action::Action;
    use fsa_core::instance::SosInstanceBuilder;

    fn sample() -> SosInstance {
        let mut b = SosInstanceBuilder::new("round trip");
        let x = b.action_owned(Action::parse("sense(ESP_1,sW)"), "D_1", "V1");
        let y = b.action_owned(Action::parse("send(CU_1,cam(pos))"), "D_1", "V1");
        let z = b.action_owned(Action::parse("show(HMI_1,warn)"), "D_1", "V1");
        b.flow(x, y);
        b.policy_flow(x, z);
        b.build()
    }

    #[test]
    fn render_produces_parsable_source() {
        let src = render(&sample());
        let parsed = crate::parse(&src).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].action_count(), 3);
    }

    #[test]
    fn round_trip_preserves_structure_and_kinds() {
        let original = sample();
        let parsed = &crate::parse(&render(&original)).unwrap()[0];
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.action_count(), original.action_count());
        assert_eq!(parsed.graph().edge_count(), original.graph().edge_count());
        for (from, to) in original.graph().edges() {
            let pf = parsed.find(original.action(from)).unwrap();
            let pt = parsed.find(original.action(to)).unwrap();
            assert_eq!(parsed.flow_kind(pf, pt), original.flow_kind(from, to));
        }
    }

    #[test]
    fn sanitize_handles_awkward_names() {
        assert_eq!(sanitize("D_1"), "D_1");
        assert_eq!(sanitize("a b"), "a_b");
        assert_eq!(sanitize("1st"), "x1st");
        assert_eq!(sanitize(""), "x");
    }

    #[test]
    fn quotes_in_names_escaped() {
        let mut b = SosInstanceBuilder::new("has \" quote");
        b.action(Action::parse("x"), "P");
        let src = render(&b.build());
        assert!(crate::parse(&src).is_ok());
    }
}
