//! Recursive-descent parser.

use crate::ast::{ActionDecl, ConnectDecl, File, FlowDecl, InstanceDecl, ModelDecl, Term, UseDecl};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a specification source into its AST.
///
/// # Errors
///
/// Returns [`ParseError`] with the position of the first syntax error.
pub fn parse_file(source: &str) -> Result<File, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut models = Vec::new();
    let mut instances = Vec::new();
    while !p.at(&TokenKind::Eof) {
        if p.at(&TokenKind::KwModel) {
            models.push(p.model()?);
        } else {
            instances.push(p.instance()?);
        }
    }
    Ok(File { models, instances })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let found = self.peek();
            Err(ParseError::new(
                found.span,
                format!("expected {kind}, found {}", found.kind),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, crate::token::Span), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn model(&mut self) -> Result<ModelDecl, ParseError> {
        let kw = self.expect(TokenKind::KwModel)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::KwStakeholder)?;
        let (stakeholder, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut actions = Vec::new();
        let mut flows = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::KwAction => actions.push(self.action_decl()?),
                TokenKind::KwFlow | TokenKind::KwPolicy => flows.push(self.flow_decl()?),
                other => {
                    return Err(ParseError::new(
                        self.peek().span,
                        format!("expected `action`, `flow`, `policy` or `}}`, found {other}"),
                    ))
                }
            }
        }
        Ok(ModelDecl {
            name,
            stakeholder,
            actions,
            flows,
            span: kw.span,
        })
    }

    fn instance(&mut self) -> Result<InstanceDecl, ParseError> {
        let kw = self.expect(TokenKind::KwInstance)?;
        let name = match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.bump();
                s
            }
            other => {
                return Err(ParseError::new(
                    self.peek().span,
                    format!("expected instance name string, found {other}"),
                ))
            }
        };
        self.expect(TokenKind::LBrace)?;
        let mut actions = Vec::new();
        let mut flows = Vec::new();
        let mut uses = Vec::new();
        let mut connects = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::KwAction => actions.push(self.action_decl()?),
                TokenKind::KwFlow => flows.push(self.flow_decl()?),
                TokenKind::KwConnect => connects.push(self.connect_decl(false)?),
                TokenKind::KwUse => uses.push(self.use_decl()?),
                TokenKind::KwPolicy => {
                    let span = self.bump().span;
                    match &self.peek().kind {
                        TokenKind::KwFlow => {
                            let mut f = self.flow_decl()?;
                            f.policy = true;
                            f.span = span;
                            flows.push(f);
                        }
                        TokenKind::KwConnect => {
                            let mut cd = self.connect_decl(true)?;
                            cd.span = span;
                            connects.push(cd);
                        }
                        other => {
                            return Err(ParseError::new(
                                self.peek().span,
                                format!("expected `flow` or `connect` after `policy`, found {other}"),
                            ))
                        }
                    }
                }
                other => {
                    return Err(ParseError::new(
                        self.peek().span,
                        format!(
                            "expected `action`, `flow`, `use`, `connect`, `policy` or `}}`, found {other}"
                        ),
                    ))
                }
            }
        }
        Ok(InstanceDecl {
            name,
            actions,
            flows,
            uses,
            connects,
            span: kw.span,
        })
    }

    fn use_decl(&mut self) -> Result<UseDecl, ParseError> {
        let kw = self.expect(TokenKind::KwUse)?;
        let (model, _) = self.ident()?;
        self.expect(TokenKind::KwAs)?;
        let (alias, _) = self.ident()?;
        let index = if self.at(&TokenKind::KwIndex) {
            self.bump();
            self.ident()?.0
        } else {
            String::new()
        };
        self.expect(TokenKind::Semi)?;
        Ok(UseDecl {
            model,
            alias,
            index,
            span: kw.span,
        })
    }

    fn connect_decl(&mut self, policy: bool) -> Result<ConnectDecl, ParseError> {
        let kw = self.expect(TokenKind::KwConnect)?;
        let (from_alias, _) = self.ident()?;
        self.expect(TokenKind::Dot)?;
        let (from_action, _) = self.ident()?;
        self.expect(TokenKind::Arrow)?;
        let (to_alias, _) = self.ident()?;
        self.expect(TokenKind::Dot)?;
        let (to_action, _) = self.ident()?;
        self.expect(TokenKind::Semi)?;
        Ok(ConnectDecl {
            from_alias,
            from_action,
            to_alias,
            to_action,
            policy,
            span: kw.span,
        })
    }

    fn action_decl(&mut self) -> Result<ActionDecl, ParseError> {
        let kw = self.expect(TokenKind::KwAction)?;
        let (id, _) = self.ident()?;
        self.expect(TokenKind::Eq)?;
        let term = self.term()?;
        let mut owner = None;
        let mut stakeholder = None;
        loop {
            match &self.peek().kind {
                TokenKind::KwOwner => {
                    self.bump();
                    owner = Some(self.ident()?.0);
                }
                TokenKind::KwStakeholder => {
                    self.bump();
                    stakeholder = Some(self.ident()?.0);
                }
                _ => break,
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(ActionDecl {
            id,
            term,
            owner,
            stakeholder,
            span: kw.span,
        })
    }

    fn flow_decl(&mut self) -> Result<FlowDecl, ParseError> {
        let policy = if self.at(&TokenKind::KwPolicy) {
            self.bump();
            true
        } else {
            false
        };
        let kw = self.expect(TokenKind::KwFlow)?;
        let (from, _) = self.ident()?;
        self.expect(TokenKind::Arrow)?;
        let (to, _) = self.ident()?;
        self.expect(TokenKind::Semi)?;
        Ok(FlowDecl {
            from,
            to,
            policy,
            span: kw.span,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let (head, _) = self.ident()?;
        let mut args = Vec::new();
        if self.at(&TokenKind::LParen) {
            self.bump();
            if !self.at(&TokenKind::RParen) {
                args.push(self.term()?);
                while self.at(&TokenKind::Comma) {
                    self.bump();
                    args.push(self.term()?);
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(Term { head, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
    // Fig. 3 of the paper.
    instance "fig3" {
        action sense_1 = sense(ESP_1, sW) owner V1 stakeholder D_1;
        action send_1 = send(CU_1, cam(pos)) owner V1 stakeholder D_1;
        action rec_w = rec(CU_w, cam(pos)) owner Vw stakeholder D_w;
        action show_w = show(HMI_w, warn) owner Vw stakeholder D_w;
        flow sense_1 -> send_1;
        flow send_1 -> rec_w;
        flow rec_w -> show_w;
        policy flow sense_1 -> show_w;
    }
    "#;

    #[test]
    fn parses_fig3() {
        let file = parse_file(FIG3).unwrap();
        assert_eq!(file.instances.len(), 1);
        let inst = &file.instances[0];
        assert_eq!(inst.name, "fig3");
        assert_eq!(inst.actions.len(), 4);
        assert_eq!(inst.flows.len(), 4);
        assert_eq!(inst.actions[1].term.to_string(), "send(CU_1,cam(pos))");
        assert_eq!(inst.actions[0].owner.as_deref(), Some("V1"));
        assert_eq!(inst.actions[0].stakeholder.as_deref(), Some("D_1"));
        assert!(inst.flows[3].policy);
        assert!(!inst.flows[0].policy);
    }

    #[test]
    fn multiple_instances() {
        let src = r#"instance "a" { } instance "b" { }"#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.instances.len(), 2);
    }

    #[test]
    fn action_without_owner_or_stakeholder() {
        let src = r#"instance "a" { action x = tick; }"#;
        let file = parse_file(src).unwrap();
        let a = &file.instances[0].actions[0];
        assert_eq!(a.owner, None);
        assert_eq!(a.stakeholder, None);
        assert_eq!(a.term.to_string(), "tick");
    }

    #[test]
    fn error_on_missing_semi() {
        let src = r#"instance "a" { action x = tick }"#;
        let err = parse_file(src).unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn error_on_bad_item() {
        let src = r#"instance "a" { owner x; }"#;
        let err = parse_file(src).unwrap_err();
        assert!(err.message.contains("expected `action`"), "{err}");
    }

    #[test]
    fn error_on_missing_instance_name() {
        let err = parse_file("instance { }").unwrap_err();
        assert!(err.message.contains("instance name"), "{err}");
    }

    #[test]
    fn error_position_reported() {
        let src = "instance \"a\" {\n  action = x;\n}";
        let err = parse_file(src).unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn parses_model_use_connect() {
        let src = r#"
        model V stakeholder D_i {
            action send = send(CU_i, cam(pos));
            action rec = rec(CU_i, cam(pos));
        }
        instance "composed" {
            use V as v1 index 1;
            use V as vw index w;
            connect v1.send -> vw.rec;
            policy connect vw.send -> v1.rec;
        }
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.models.len(), 1);
        let m = &file.models[0];
        assert_eq!(m.name, "V");
        assert_eq!(m.stakeholder, "D_i");
        assert_eq!(m.actions.len(), 2);
        let inst = &file.instances[0];
        assert_eq!(inst.uses.len(), 2);
        assert_eq!(inst.uses[0].alias, "v1");
        assert_eq!(inst.uses[0].index, "1");
        assert_eq!(inst.connects.len(), 2);
        assert!(!inst.connects[0].policy);
        assert!(inst.connects[1].policy);
        assert_eq!(inst.connects[0].from_action, "send");
    }

    #[test]
    fn use_without_index() {
        let src = r#"
        model RSU stakeholder Operator { action send = send(cam(pos)); }
        instance "r" { use RSU as rsu; }
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.instances[0].uses[0].index, "");
    }

    #[test]
    fn policy_must_prefix_flow_or_connect() {
        let src = r#"instance "x" { policy action a = t; }"#;
        let err = parse_file(src).unwrap_err();
        assert!(err.message.contains("after `policy`"), "{err}");
    }

    #[test]
    fn nested_term_args() {
        let src = r#"instance "a" { action x = f(g(h(i)), j); }"#;
        let file = parse_file(src).unwrap();
        assert_eq!(
            file.instances[0].actions[0].term.to_string(),
            "f(g(h(i)),j)"
        );
    }

    #[test]
    fn empty_parens() {
        let src = r#"instance "a" { action x = f(); }"#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.instances[0].actions[0].term.args.len(), 0);
    }
}
