//! Abstract syntax of specification files.

use crate::token::Span;
use std::fmt;

/// A whole specification file: component-model declarations followed by
/// instance declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct File {
    /// The declared component models.
    pub models: Vec<ModelDecl>,
    /// The declared instances.
    pub instances: Vec<InstanceDecl>,
}

/// `model <name> stakeholder <agent> { action…; flow…; }` — a
/// functional component model template (Fig. 1 style); the index `i` in
/// action parameters is substituted at `use` time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelDecl {
    /// The model name (referenced by `use`).
    pub name: String,
    /// The stakeholder template, e.g. `D_i`.
    pub stakeholder: String,
    /// Template actions.
    pub actions: Vec<ActionDecl>,
    /// Internal flows.
    pub flows: Vec<FlowDecl>,
    /// Where the declaration starts.
    pub span: Span,
}

/// `use <model> as <alias> index <idx>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The model to instantiate.
    pub model: String,
    /// The local alias for `connect` references.
    pub alias: String,
    /// The instance index substituted for `i` (may be empty).
    pub index: String,
    /// Where the declaration starts.
    pub span: Span,
}

/// `[policy] connect <alias>.<action> -> <alias>.<action>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectDecl {
    /// Source component alias.
    pub from_alias: String,
    /// Source action identifier within the model.
    pub from_action: String,
    /// Target component alias.
    pub to_alias: String,
    /// Target action identifier within the model.
    pub to_action: String,
    /// `true` for `policy connect`.
    pub policy: bool,
    /// Where the declaration starts.
    pub span: Span,
}

/// `instance "name" { … }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDecl {
    /// The quoted instance name.
    pub name: String,
    /// Declared (free-standing) actions.
    pub actions: Vec<ActionDecl>,
    /// Declared flows between free-standing actions.
    pub flows: Vec<FlowDecl>,
    /// Component-model instantiations.
    pub uses: Vec<UseDecl>,
    /// External flows between instantiated components.
    pub connects: Vec<ConnectDecl>,
    /// Where the declaration starts.
    pub span: Span,
}

/// `action <id> = <term> [owner <id>] [stakeholder <id>];`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// The local identifier used by flows.
    pub id: String,
    /// The action term.
    pub term: Term,
    /// Optional owning component instance (defaults to the stakeholder).
    pub owner: Option<String>,
    /// Optional stakeholder (defaults to `"env"`).
    pub stakeholder: Option<String>,
    /// Where the declaration starts.
    pub span: Span,
}

/// `[policy] flow <id> -> <id>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDecl {
    /// Source action identifier.
    pub from: String,
    /// Target action identifier.
    pub to: String,
    /// `true` for `policy flow`.
    pub policy: bool,
    /// Where the declaration starts.
    pub span: Span,
}

/// A term: `name` or `name(arg, …)` with nested terms as arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// The head identifier.
    pub head: String,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Term {
    /// A bare identifier term.
    pub fn leaf(head: &str) -> Term {
        Term {
            head: head.to_owned(),
            args: Vec::new(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_display() {
        let t = Term {
            head: "send".into(),
            args: vec![
                Term::leaf("CU_1"),
                Term {
                    head: "cam".into(),
                    args: vec![Term::leaf("pos")],
                },
            ],
        };
        assert_eq!(t.to_string(), "send(CU_1,cam(pos))");
        assert_eq!(Term::leaf("x").to_string(), "x");
    }
}
