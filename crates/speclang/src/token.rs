//! Tokens and source spans.

use std::fmt;

/// A half-open byte range in the source, with line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl Span {
    /// A span for testing / synthetic tokens.
    pub fn dummy() -> Span {
        Span {
            start: 0,
            end: 0,
            line: 1,
            column: 1,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The kinds of token the lexer produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `instance`
    KwInstance,
    /// `action`
    KwAction,
    /// `flow`
    KwFlow,
    /// `policy`
    KwPolicy,
    /// `owner`
    KwOwner,
    /// `stakeholder`
    KwStakeholder,
    /// `model`
    KwModel,
    /// `use`
    KwUse,
    /// `as`
    KwAs,
    /// `index`
    KwIndex,
    /// `connect`
    KwConnect,
    /// `.`
    Dot,
    /// An identifier (action names, owners, term heads).
    Ident(String),
    /// A double-quoted string literal (instance names).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::KwInstance => write!(f, "`instance`"),
            TokenKind::KwAction => write!(f, "`action`"),
            TokenKind::KwFlow => write!(f, "`flow`"),
            TokenKind::KwPolicy => write!(f, "`policy`"),
            TokenKind::KwOwner => write!(f, "`owner`"),
            TokenKind::KwStakeholder => write!(f, "`stakeholder`"),
            TokenKind::KwModel => write!(f, "`model`"),
            TokenKind::KwUse => write!(f, "`use`"),
            TokenKind::KwAs => write!(f, "`as`"),
            TokenKind::KwIndex => write!(f, "`index`"),
            TokenKind::KwConnect => write!(f, "`connect`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_kinds() {
        assert_eq!(TokenKind::Arrow.to_string(), "`->`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Str("s".into()).to_string(), "string \"s\"");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }

    #[test]
    fn span_display() {
        let s = Span {
            start: 0,
            end: 3,
            line: 2,
            column: 7,
        };
        assert_eq!(s.to_string(), "2:7");
        assert_eq!(Span::dummy().to_string(), "1:1");
    }
}
