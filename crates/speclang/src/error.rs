//! Parse and lowering errors.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// An error produced while parsing or lowering a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the source the error occurred.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(
            Span {
                start: 5,
                end: 6,
                line: 3,
                column: 9,
            },
            "unexpected `;`",
        );
        assert_eq!(e.to_string(), "3:9: unexpected `;`");
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ParseError::new(Span::dummy(), "x"));
    }
}
