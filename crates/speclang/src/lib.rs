//! A specification language for SoS functional models.
//!
//! The SH verification tool consumes models written in a *preamble
//! language*; this crate provides the analogue for functional security
//! analysis: a small text format describing SoS instances (actions,
//! owners, stakeholders, functional and policy flows) that lowers
//! directly to [`fsa_core::SosInstance`] values ready for elicitation.
//!
//! # Syntax
//!
//! Flat instances list their actions and flows directly:
//!
//! ```text
//! // Vw receives a warning from V1 (Fig. 3).
//! instance "fig3" {
//!     action sense_1 = sense(ESP_1, sW)       owner V1 stakeholder D_1;
//!     action send_1  = send(CU_1, cam(pos))   owner V1 stakeholder D_1;
//!     action rec_w   = rec(CU_w, cam(pos))    owner Vw stakeholder D_w;
//!     action show_w  = show(HMI_w, warn)      owner Vw stakeholder D_w;
//!
//!     flow sense_1 -> send_1;
//!     flow send_1 -> rec_w;
//!     flow rec_w -> show_w;
//!     policy flow sense_1 -> show_w;   // marked policy-motivated
//! }
//! ```
//!
//! Component models (Fig. 1 style) can be declared once and composed
//! (`i` in parameters and in the stakeholder is the instance index):
//!
//! ```text
//! model V stakeholder D_i {
//!     action sense = sense(ESP_i, sW);
//!     action send  = send(CU_i, cam(pos));
//!     action rec   = rec(CU_i, cam(pos));
//!     action show  = show(HMI_i, warn);
//!     flow sense -> send;
//!     flow rec -> show;
//! }
//!
//! instance "fig3 composed" {
//!     use V as v1 index 1;
//!     use V as vw index w;
//!     connect v1.send -> vw.rec;
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! instance "demo" {
//!     action a = sense(ESP_1, sW) stakeholder D_1;
//!     action b = show(HMI_1, warn) stakeholder D_1;
//!     flow a -> b;
//! }
//! "#;
//! let instances = speclang::parse(src)?;
//! assert_eq!(instances.len(), 1);
//! let report = fsa_core::manual::elicit(&instances[0])?;
//! assert_eq!(report.requirements().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod token;

pub use error::ParseError;

/// Parses a specification source into SoS instances (parse + lower).
///
/// # Errors
///
/// Returns [`ParseError`] with line/column information on syntax or
/// semantic errors (duplicate action names, unknown flow endpoints).
pub fn parse(source: &str) -> Result<Vec<fsa_core::SosInstance>, ParseError> {
    let file = parser::parse_file(source)?;
    lower::lower(&file)
}
