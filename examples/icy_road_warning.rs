//! The full §4 walkthrough: RSU warning, two-vehicle warning, multi-hop
//! forwarding, first-order parameterisation and the safety evaluation of
//! requirement (4).
//!
//! Run with `cargo run --example icy_road_warning`.

use fsa::core::manual::elicit;
use fsa::core::param::parameterise_over;
use fsa::core::report::{render_manual, render_parameterised};
use fsa::core::requirements::Relevance;
use fsa::vanet::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 2: a roadside unit warns vehicle w (use cases 1 + 3). ---
    let fig2 = instances::rsu_warns_vehicle();
    println!("{}", render_manual(&elicit(&fig2)?));

    // --- Fig. 3: vehicle 1 warns vehicle w (use cases 2 + 3). ---------
    let fig3 = elicit(&instances::two_vehicle_warning())?;
    println!("{}", render_manual(&fig3));

    // --- Fig. 4: growing forwarding chains (use case 4). --------------
    // χ_i = χ_{i-1} ∪ {(pos(GPS_i, pos), show(HMI_w, warn))}
    let mut previous = fig3.requirement_set();
    for forwarders in 1..=4 {
        let report = elicit(&instances::forwarding_chain(forwarders))?;
        let current = report.requirement_set();
        let delta = current.difference(&previous);
        println!(
            "chi_{forwarders} adds {} requirement(s): {}",
            delta.len(),
            delta
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        previous = current;

        // §4.4: the forwarder-position requirements are availability,
        // not safety — breaking them "cannot cause the warning of a
        // driver that should not be warned".
        for c in report.classified_requirements() {
            if c.relevance == Relevance::Availability {
                println!("  availability only: {}", c.requirement);
            }
        }

        if forwarders == 4 {
            // First-order parameterisation over the forwarder set
            // V_forward = {2, 3, 4, 5} (the paper's requirement (4)).
            println!("\n{}", render_parameterised(&report, 2));
            let forms =
                parameterise_over(&report.requirement_set(), 2, Some(&["2", "3", "4", "5"]));
            for form in &forms {
                println!("  {form}");
            }
            assert!(forms
                .iter()
                .any(|f| f.to_string().starts_with("forall x in {2,3,4,5}")));
        }
    }
    Ok(())
}
