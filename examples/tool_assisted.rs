//! The §5 walkthrough: APA models, reachability graphs, minima/maxima
//! read-off, and homomorphism-based dependence analysis (Figs. 5–11).
//!
//! Run with `cargo run --example tool_assisted`.

use fsa::apa::ReachOptions;
use fsa::automata::{ops, Homomorphism};
use fsa::core::assisted::{dependence_by_abstraction, elicit_from_graph, DependenceMethod};
use fsa::core::report::render_assisted;
use fsa::vanet::apa_model::{four_vehicle_apa, stakeholder_of, two_vehicle_apa};
use fsa::vanet::semantics::ApaSemantics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = ReachOptions::default();

    // --- Fig. 6/7: the two-vehicle instance. --------------------------
    let apa2 = two_vehicle_apa(ApaSemantics::PAPER)?;
    let graph2 = apa2.reachability(&options)?;
    println!("== two-vehicle instance (Figs. 6, 7) ==");
    print!("{}", graph2.min_max_listing());
    let report2 = elicit_from_graph(&graph2, DependenceMethod::Abstraction, stakeholder_of);
    print!("{}", render_assisted(&report2));

    // Example 6's requirement set.
    let reqs: Vec<String> = report2
        .requirements
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        reqs,
        vec![
            "auth(V1_pos, V2_show, D_2)",
            "auth(V1_sense, V2_show, D_2)",
            "auth(V2_pos, V2_show, D_2)",
        ]
    );

    // --- Fig. 8/9: four vehicles, two independent pairs. ---------------
    let apa4 = four_vehicle_apa(ApaSemantics::PAPER)?;
    let graph4 = apa4.reachability(&options)?;
    println!("\n== four-vehicle instance (Figs. 8, 9) ==");
    println!(
        "reachability graph: {} states ({}^2 = product of independent pairs)",
        graph4.state_count(),
        graph2.state_count()
    );
    assert_eq!(graph4.state_count(), graph2.state_count().pow(2));

    // --- Figs. 10/11: abstraction onto one (max, min) pair. ------------
    let behaviour = graph4.to_nfa();
    let (dep, chain) = dependence_by_abstraction(&behaviour, "V1_sense", "V2_show");
    println!(
        "abstraction to (V1_sense, V2_show): {} ({} states — the chain of Fig. 10)",
        if dep { "dependent" } else { "independent" },
        chain.state_count()
    );
    let (dep, diamond) = dependence_by_abstraction(&behaviour, "V1_sense", "V4_show");
    println!(
        "abstraction to (V1_sense, V4_show): {} ({} states — the diamond of Fig. 11)",
        if dep { "dependent" } else { "independent" },
        diamond.state_count()
    );

    // The DOT of the minimal automata, for the figure analogues.
    let h = Homomorphism::erase_all_except(["V1_sense", "V2_show"]);
    let minimal = ops::minimize(&ops::determinize(&h.apply(&behaviour)));
    println!(
        "\nminimal automaton (Fig. 10 analogue): {} states, {} transitions",
        minimal.state_count(),
        minimal.transition_count()
    );

    // --- Example 7: the full requirement set for four vehicles. --------
    let report4 = elicit_from_graph(&graph4, DependenceMethod::Abstraction, stakeholder_of);
    print!("\n{}", render_assisted(&report4));
    assert_eq!(report4.requirements.len(), 6);
    Ok(())
}
