//! Closing the loop: elicit authenticity requirements, then *verify*
//! them against an attacked behaviour and extract concrete attack
//! traces — the runs the requirements are there to exclude.
//!
//! Run with `cargo run --example attack_trace`.

use fsa::apa::ReachOptions;
use fsa::core::assisted::{elicit_from_graph, DependenceMethod};
use fsa::core::verify::{verify_requirements, Checker};
use fsa::runtime::{MonitorBank, VIOLATED};
use fsa::vanet::apa_model::stakeholder_of;
use fsa::vanet::forwarding::{forwarding_chain_apa, forwarding_chain_apa_with, RangeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Elicit requirements from the honest forwarding chain
    //    V1 (warner) → V2 (forwarder) → V3 (receiver).
    let honest = forwarding_chain_apa()?.reachability(&ReachOptions::default())?;
    println!(
        "honest behaviour: {} states, minima {:?}, maxima {:?}",
        honest.state_count(),
        honest.minima(),
        honest.maxima()
    );
    let report = elicit_from_graph(&honest, DependenceMethod::Precedence, stakeholder_of);
    println!("\nelicited requirements:");
    for r in &report.requirements {
        println!("  {r}");
    }

    // 2. The honest behaviour satisfies every elicited requirement.
    let honest_nfa = honest.to_nfa();
    for checker in [Checker::Precedence, Checker::Monitor] {
        assert!(fsa::core::verify::all_hold(
            &honest_nfa,
            &report.requirements,
            checker
        ));
    }
    println!("\nall requirements hold on the honest behaviour (both checkers)");

    // 3. Add an attacker that forges a cam message near V3 and verify
    //    again: the requirements that protect the drivers are violated,
    //    and the checker returns the shortest attack trace.
    let attacked = forwarding_chain_apa_with(RangeConfig::default(), true)?
        .reachability(&ReachOptions::default())?;
    println!(
        "\nattacked behaviour: {} states (attacker: ATK_inject)",
        attacked.state_count()
    );
    let verdicts = verify_requirements(
        &attacked.to_nfa(),
        &report.requirements,
        Checker::Precedence,
    );
    let mut violated = 0;
    for v in &verdicts {
        println!("  {v}");
        if !v.holds() {
            violated += 1;
            let trace = v.violation.as_ref().expect("violated");
            assert!(trace.iter().any(|step| step == "ATK_inject"));
        }
    }
    println!(
        "\n{violated}/{} requirements violated by the forged-message attacker",
        verdicts.len()
    );
    assert!(violated > 0);

    // 4. The same requirements, compiled into a fused runtime monitor
    //    bank, latch on the spoofed trace *as it streams in* — this is
    //    the paper's requirement (4) `auth(pos(GPS_2,pos),
    //    show(HMI_w,warn), D_w)` catching a forged `send` before any
    //    `sense`, one event at a time.
    let honest_apa = forwarding_chain_apa()?;
    let bank = MonitorBank::for_apa(&report.requirements, &honest_apa)?;
    let spoofed = ["ATK_inject", "V3_pos", "V3_rec", "V3_show"];
    let run = bank.check_names(spoofed);
    println!(
        "\nruntime monitor bank ({} monitors) on the spoofed trace {}:",
        bank.len(),
        spoofed.join(" → ")
    );
    let mut tripped = Vec::new();
    for (m, meta) in bank.monitors().iter().enumerate() {
        if run.states[m] == VIOLATED {
            let at = run.first_violation[m].expect("latched");
            println!(
                "  VIOLATED {}  (latched at event {at}, prefix {})",
                meta.requirement,
                spoofed[..=at as usize].join(" → ")
            );
            tripped.push(meta.requirement.to_string());
        }
    }
    assert!(
        tripped.contains(&"auth(V2_pos, V3_show, D_3)".to_owned()),
        "requirement (4) must trip on the spoofed trace"
    );
    println!(
        "\n{}/{} monitors latched — requirement (4) rejects the forged message at runtime",
        tripped.len(),
        bank.len()
    );
    Ok(())
}
