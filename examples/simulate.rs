//! Step-wise simulation of the two-vehicle APA model, plus exhaustive
//! invariant checking on its reachability graph.
//!
//! Run with `cargo run --example simulate`.

use fsa::apa::sim::Simulator;
use fsa::apa::{ReachOptions, Value};
use fsa::vanet::apa_model::two_vehicle_apa;
use fsa::vanet::semantics::ApaSemantics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apa = two_vehicle_apa(ApaSemantics::PAPER)?;

    // --- A few concrete runs. ------------------------------------------
    for seed in [1u64, 7, 23] {
        let mut sim = Simulator::new(&apa, seed);
        let steps = sim.run(100)?;
        let trace = sim.trace_names();
        println!("seed {seed:>2}: {steps} steps — {}", trace.join(" → "));
    }

    // --- Exhaustive validation (SH-tool style). -------------------------
    let graph = apa.reachability(&ReachOptions::default())?;
    println!(
        "\nreachability graph: {} states, {} transitions",
        graph.state_count(),
        graph.edge_count()
    );

    // Invariant 1: the wireless medium never holds more than one message.
    let verdict = graph.check_invariant(|state| {
        state.iter().all(|component| component.len() <= 2)
            && state.last().map(|net| net.len() <= 1).unwrap_or(true)
    });
    println!(
        "invariant `at most one message in flight`: {}",
        if verdict.is_none() {
            "holds"
        } else {
            "violated"
        }
    );

    // Invariant 2 (deliberately false): "no warning is ever shown" —
    // the checker returns the shortest trace to the violation.
    let net_warn = graph.check_invariant(|state| {
        !state
            .iter()
            .any(|component| component.contains(&Value::atom("warn")))
    });
    match net_warn {
        Some((state, trace)) => {
            let rendered = graph.trace_names(&trace);
            println!(
                "invariant `no warning ever` violated in {} via [{}]",
                graph.state_label(state),
                rendered.join(", ")
            );
        }
        None => println!("unexpected: warning never appears"),
    }
    Ok(())
}
