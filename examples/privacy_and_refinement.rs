//! The §6 outlook, implemented: confidentiality requirements derived
//! "in a similar way", hop refinement of the elicited end-to-end
//! requirements, and self-similarity verification of the parameterised
//! forwarding family.
//!
//! Run with `cargo run --example privacy_and_refinement`.

use fsa::core::action::Action;
use fsa::core::confidential::{elicit_confidentiality, ConfidentialityPolicy, Level};
use fsa::core::family::verify_recurrence;
use fsa::core::manual::{elicit, explain};
use fsa::core::refine::refine;
use fsa::vanet::instances::{forwarding_chain, two_vehicle_warning};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = two_vehicle_warning();

    // --- Hop refinement (§6: "requirements have to be refined"). ------
    let report = elicit(&instance)?;
    println!("hop refinement of the Fig. 3 requirements:");
    for req in report.requirements() {
        let refinement = refine(&instance, &req)?;
        println!("  {req}");
        if refinement.is_decomposed() {
            for hop in &refinement.hops {
                println!("    -> {hop}");
            }
        } else {
            println!("    (atomic: no unavoidable intermediate)");
        }
        if let Some(chain) = explain(&instance, &req) {
            let rendered: Vec<String> = chain.iter().map(ToString::to_string).collect();
            println!("    via {}", rendered.join(" -> "));
        }
    }

    // --- Confidentiality (§6 future work). -----------------------------
    // V2V position broadcasts are privacy-sensitive (the paper defers to
    // Schaub et al. [26]); classify V1's GPS and see where it flows.
    println!("\nconfidentiality analysis (GPS restricted, display public):");
    let policy = ConfidentialityPolicy::new()
        .classify(Action::parse("pos(GPS_1,pos)"), Level::RESTRICTED)
        .classify(Action::parse("sense(ESP_1,sW)"), Level::PUBLIC)
        .clear(Action::parse("show(HMI_w,warn)"), Level::PUBLIC);
    for req in elicit_confidentiality(&instance, &policy) {
        println!("  {req}");
    }

    // --- Family verification (§6: parameterised replication). ----------
    println!("\nself-similarity of the forwarding family (χ recurrence):");
    let family = verify_recurrence(forwarding_chain, |step| (step + 1).to_string(), 6)?;
    println!(
        "  explored {} family members: self-similar = {}",
        family.explored, family.self_similar
    );
    println!("  stable core ({} requirements):", family.base.len());
    for r in &family.base {
        println!("    {r}");
    }
    for template in &family.templates {
        println!(
            "  per-step template: forall x in {{{}}}: {template}",
            family.domain.join(",")
        );
    }
    assert!(family.self_similar);
    Ok(())
}
