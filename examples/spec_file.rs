//! File-driven elicitation: describe an SoS instance in the
//! specification language, parse it, and run the pipeline — the workflow
//! of the original SH verification tool's preamble files.
//!
//! Run with `cargo run --example spec_file`.

use fsa::core::manual::elicit;
use fsa::core::report::render_manual;
use fsa::speclang;

const SPEC: &str = r#"
// Fig. 4 of the paper: V2 forwards V1's icy-road warning to Vw.
instance "fig4 from spec" {
    action sense_1 = sense(ESP_1, sW)     owner V1 stakeholder D_1;
    action pos_1   = pos(GPS_1, pos)      owner V1 stakeholder D_1;
    action send_1  = send(CU_1, cam(pos)) owner V1 stakeholder D_1;

    action rec_2   = rec(CU_2, cam(pos))  owner V2 stakeholder D_2;
    action pos_2   = pos(GPS_2, pos)      owner V2 stakeholder D_2;
    action fwd_2   = fwd(CU_2, cam(pos))  owner V2 stakeholder D_2;

    action rec_w   = rec(CU_w, cam(pos))  owner Vw stakeholder D_w;
    action pos_w   = pos(GPS_w, pos)      owner Vw stakeholder D_w;
    action show_w  = show(HMI_w, warn)    owner Vw stakeholder D_w;

    flow sense_1 -> send_1;
    flow pos_1 -> send_1;
    flow send_1 -> rec_2;
    flow rec_2 -> fwd_2;
    policy flow pos_2 -> fwd_2;   // position-based forwarding policy
    flow fwd_2 -> rec_w;
    flow rec_w -> show_w;
    flow pos_w -> show_w;
}
"#;

/// The same scenario written with reusable component models.
const SPEC_WITH_MODELS: &str = r#"
model V stakeholder D_i {
    action sense = sense(ESP_i, sW);
    action pos   = pos(GPS_i, pos);
    action send  = send(CU_i, cam(pos));
    action rec   = rec(CU_i, cam(pos));
    action fwd   = fwd(CU_i, cam(pos));
    action show  = show(HMI_i, warn);
    flow sense -> send;
    flow pos -> send;
    flow rec -> show;
    flow pos -> show;
    flow rec -> fwd;
    policy flow pos -> fwd;
}

instance "fig4 composed from models" {
    use V as v1 index 1;
    use V as v2 index 2;
    use V as vw index w;
    connect v1.send -> v2.rec;
    connect v2.fwd -> vw.rec;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Component-model syntax: declare the vehicle once, compose thrice.
    let composed = speclang::parse(SPEC_WITH_MODELS)?;
    let report = elicit(&composed[0])?;
    println!(
        "composed instance `{}`: {} actions, {} requirements\n",
        composed[0].name(),
        composed[0].action_count(),
        report.requirements().len()
    );

    let instances = speclang::parse(SPEC)?;
    for instance in &instances {
        let report = elicit(instance)?;
        print!("{}", render_manual(&report));

        // Round-trip: render back to spec text and re-parse.
        let rendered = speclang::pretty::render(instance);
        let reparsed = speclang::parse(&rendered)?;
        let report2 = elicit(&reparsed[0])?;
        assert_eq!(report.requirement_set(), report2.requirement_set());
        println!("round-trip through the spec language preserved all requirements\n");
    }
    Ok(())
}
