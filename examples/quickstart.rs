//! Quickstart: elicit authenticity requirements for the paper's
//! two-vehicle scenario (Fig. 3 / Example 3).
//!
//! Run with `cargo run --example quickstart`.

use fsa::core::manual::elicit;
use fsa::core::report::render_manual;
use fsa::vanet::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Vehicle 1 senses an icy road (use case 2) and warns vehicle w,
    // which shows the warning to its driver (use case 3).
    let instance = instances::two_vehicle_warning();
    println!("{instance}");

    // The manual method of §4: ζ → ζ* → minima/maxima → χ → auth(…).
    let report = elicit(&instance)?;
    print!("{}", render_manual(&report));

    // The three requirements of the paper's Example 3:
    assert_eq!(report.requirements().len(), 3);
    for requirement in report.requirements() {
        println!("elicited: {requirement}");
    }
    Ok(())
}
