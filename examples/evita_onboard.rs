//! Elicitation at EVITA scale: the synthetic on-board architecture that
//! reproduces the statistics quoted at the end of §4.4 (38 component
//! boundary actions, 16 system boundary actions = 9 maximal + 7 minimal,
//! 29 authenticity requirements).
//!
//! Run with `cargo run --example evita_onboard`.

use fsa::core::boundary::boundary_stats;
use fsa::core::manual::elicit;
use fsa::core::report::render_manual;
use fsa::core::requirements::Relevance;
use fsa::vanet::evita::{onboard_instance, EVITA_EXPECTED};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = onboard_instance();
    let report = elicit(&instance)?;
    print!("{}", render_manual(&report));

    let stats = boundary_stats(&instance);
    println!("\npaper-reported vs measured:");
    println!(
        "  component boundary actions: {} vs {}",
        EVITA_EXPECTED.component_boundary,
        stats.component_boundary_count()
    );
    println!(
        "  system boundary actions:    {} vs {}",
        EVITA_EXPECTED.system_boundary,
        stats.system_boundary_count()
    );
    println!(
        "  maximal elements:           {} vs {}",
        EVITA_EXPECTED.maximal,
        report.maxima().len()
    );
    println!(
        "  minimal elements:           {} vs {}",
        EVITA_EXPECTED.minimal,
        report.minima().len()
    );
    println!(
        "  authenticity requirements:  {} vs {}",
        EVITA_EXPECTED.requirements,
        report.requirements().len()
    );

    let availability = report
        .classified_requirements()
        .iter()
        .filter(|c| c.relevance == Relevance::Availability)
        .count();
    println!("  availability-only requirements: {availability} (the forwarding policy)");

    assert_eq!(report.requirements().len(), EVITA_EXPECTED.requirements);
    Ok(())
}
