//! Instance-space exploration (§4.2): enumerate all structurally
//! different SoS compositions of the scenario's component models,
//! neglect isomorphic combinations, and union the elicited requirements
//! across instances (§4.4).
//!
//! Run with `cargo run --example sos_exploration`.

use fsa::core::explore::{union_requirements_loop_free, ExploreOptions};
use fsa::core::manual::elicit;
use fsa::vanet::exploration::enumerate_scenario_instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for max_vehicles in 1..=2 {
        let instances = enumerate_scenario_instances(max_vehicles, &ExploreOptions::default())?;
        println!(
            "universe with 1 RSU and up to {max_vehicles} vehicle(s): {} structurally \
             different connected instances",
            instances.len()
        );
        for inst in &instances {
            let summary = match elicit(inst) {
                Ok(report) => format!(
                    "{} actions, {} requirements",
                    inst.action_count(),
                    report.requirements().len()
                ),
                Err(e) => format!("skipped ({e})"),
            };
            println!("  {:24} {summary}", inst.name());
        }
        let (union, skipped) = union_requirements_loop_free(&instances)?;
        println!(
            "union over the universe: {} requirements ({} cyclic compositions skipped)\n",
            union.len(),
            skipped
        );
        if max_vehicles == 2 {
            for r in union.iter().take(10) {
                println!("  {r}");
            }
            assert!(union
                .iter()
                .any(|r| r.antecedent.name() == "sense" && r.consequent.name() == "show"));
        }
    }
    Ok(())
}
